//! The secure-storage trusted application.
//!
//! Keys live inside the TEE; the normal world gets opaque handles and
//! *operations* (MAC, seal/unseal), never key bytes. The only paths that
//! return raw key material are (a) the secure world itself and (b) the
//! side-channel extraction modelled in [`crate::tee::Tee`] — which is the
//! point of experiment E7.

use cres_crypto::aead::Aead;
use cres_crypto::ct::zeroize;
use cres_crypto::hmac::HmacSha256;
use cres_crypto::CryptoError;
use std::collections::HashMap;

/// The keystore TA state.
#[derive(Debug, Clone, Default)]
pub struct Keystore {
    keys: HashMap<String, Vec<u8>>,
    zeroized: bool,
}

impl Keystore {
    /// Creates an empty keystore.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores (or replaces) a key.
    pub fn store(&mut self, name: &str, key: &[u8]) {
        self.zeroized = false;
        self.keys.insert(name.to_string(), key.to_vec());
    }

    /// True when a key with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.keys.contains_key(name)
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// MACs `data` under the named key without exposing it.
    ///
    /// Returns `None` for unknown keys.
    pub fn mac(&self, name: &str, data: &[u8]) -> Option<[u8; 32]> {
        self.keys.get(name).map(|k| HmacSha256::mac(k, data))
    }

    /// Seals `data` under the named key (AEAD).
    ///
    /// Returns `None` for unknown keys.
    pub fn seal(&self, name: &str, nonce: &[u8; 12], data: &[u8]) -> Option<Vec<u8>> {
        self.keys
            .get(name)
            .map(|k| Aead::new(k).seal(nonce, b"keystore-seal", data))
    }

    /// Unseals data sealed by [`Keystore::seal`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::VerificationFailed`] on tamper or wrong key;
    /// unknown names yield the same error (no key-existence oracle).
    pub fn unseal(
        &self,
        name: &str,
        nonce: &[u8; 12],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        match self.keys.get(name) {
            Some(k) => Aead::new(k).open(nonce, b"keystore-seal", sealed),
            None => Err(CryptoError::VerificationFailed),
        }
    }

    /// Raw key export — callable only by the secure world / SSM (enforced
    /// by [`crate::tee::Tee`], which does not route this to normal-world
    /// sessions).
    pub(crate) fn export(&self, name: &str) -> Option<&[u8]> {
        self.keys.get(name).map(Vec::as_slice)
    }

    /// Zeroises every key (the key-zeroisation countermeasure).
    pub fn zeroize_all(&mut self) {
        for (_, key) in self.keys.iter_mut() {
            zeroize(key);
        }
        self.keys.clear();
        self.zeroized = true;
    }

    /// True when the keystore was zeroised and not since repopulated.
    pub fn was_zeroized(&self) -> bool {
        self.zeroized
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_without_exposure() {
        let mut ks = Keystore::new();
        ks.store("evidence", b"secret-key");
        let tag = ks.mac("evidence", b"record").unwrap();
        assert_eq!(tag, HmacSha256::mac(b"secret-key", b"record"));
        assert!(ks.mac("unknown", b"record").is_none());
    }

    #[test]
    fn seal_unseal_round_trip() {
        let mut ks = Keystore::new();
        ks.store("storage", b"k");
        let nonce = [7u8; 12];
        let sealed = ks.seal("storage", &nonce, b"config blob").unwrap();
        assert_eq!(
            ks.unseal("storage", &nonce, &sealed).unwrap(),
            b"config blob"
        );
    }

    #[test]
    fn unseal_wrong_key_or_name_fails_identically() {
        let mut ks = Keystore::new();
        ks.store("a", b"key-a");
        ks.store("b", b"key-b");
        let nonce = [0u8; 12];
        let sealed = ks.seal("a", &nonce, b"data").unwrap();
        assert_eq!(
            ks.unseal("b", &nonce, &sealed),
            Err(CryptoError::VerificationFailed)
        );
        assert_eq!(
            ks.unseal("missing", &nonce, &sealed),
            Err(CryptoError::VerificationFailed)
        );
    }

    #[test]
    fn zeroize_destroys_keys() {
        let mut ks = Keystore::new();
        ks.store("k1", b"a");
        ks.store("k2", b"b");
        assert_eq!(ks.len(), 2);
        ks.zeroize_all();
        assert!(ks.is_empty());
        assert!(ks.was_zeroized());
        assert!(ks.mac("k1", b"x").is_none());
        // storing again clears the flag
        ks.store("k3", b"c");
        assert!(!ks.was_zeroized());
    }

    #[test]
    fn export_is_crate_private_and_correct() {
        let mut ks = Keystore::new();
        ks.store("root", b"device-root");
        assert_eq!(ks.export("root"), Some(b"device-root".as_slice()));
        assert_eq!(ks.export("nope"), None);
    }
}
