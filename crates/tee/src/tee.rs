//! The TEE proper: worlds, sessions and the shared-resource weakness.
//!
//! Two deployment shapes matter to the paper:
//!
//! * [`TeeDeployment::SharedResources`] — the commercial norm: secure world
//!   time-shares the application cores and physical memory. Authentic to
//!   TrustZone, and authentically vulnerable: [`Tee::side_channel_extract`]
//!   succeeds (Spectre/Meltdown-class leakage across the shared
//!   microarchitecture) and TA downgrade is possible when rollback
//!   protection is absent.
//! * [`TeeDeployment::IsolatedCoprocessor`] — the paper's prescription: the
//!   secure world runs on its own core and memory. Side-channel extraction
//!   has no shared substrate to leak through and returns nothing.

use crate::keystore::Keystore;
use crate::ta::TaManifest;
use cres_crypto::hmac::HmacSha256;
use cres_crypto::rsa::RsaPublicKey;
use std::collections::HashMap;
use std::fmt;

/// Which world a caller executes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum World {
    /// The rich OS / application world.
    Normal,
    /// The trusted world (or the SSM, in the isolated deployment).
    Secure,
}

/// Physical deployment of the secure world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TeeDeployment {
    /// Secure world shares cores, caches and DRAM with the normal world.
    SharedResources,
    /// Secure world runs on a physically separate coprocessor and memory.
    IsolatedCoprocessor,
}

/// An open SMC session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub u32);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sess#{}", self.0)
    }
}

/// TEE operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeeError {
    /// No such trusted application is installed.
    UnknownTa(String),
    /// Manifest signature failed.
    BadManifest,
    /// Rollback protection rejected an older TA version.
    Downgrade {
        /// Installed version.
        installed: u32,
        /// Offered (older) version.
        offered: u32,
    },
    /// The session id is not open.
    BadSession,
    /// The operation requires the secure world.
    SecureWorldOnly,
    /// The named key does not exist.
    UnknownKey(String),
}

impl fmt::Display for TeeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TeeError::UnknownTa(n) => write!(f, "unknown trusted application {n:?}"),
            TeeError::BadManifest => write!(f, "trusted application manifest rejected"),
            TeeError::Downgrade { installed, offered } => {
                write!(f, "ta downgrade rejected: {offered} < {installed}")
            }
            TeeError::BadSession => write!(f, "invalid session"),
            TeeError::SecureWorldOnly => write!(f, "operation requires the secure world"),
            TeeError::UnknownKey(n) => write!(f, "unknown key {n:?}"),
        }
    }
}

impl std::error::Error for TeeError {}

/// The trusted execution environment.
#[derive(Debug, Clone)]
pub struct Tee {
    deployment: TeeDeployment,
    vendor_key: RsaPublicKey,
    rollback_protection: bool,
    installed: HashMap<String, TaManifest>,
    keystore: Keystore,
    sessions: HashMap<SessionId, String>,
    next_session: u32,
    attestation_key: Vec<u8>,
    side_channel_leaks: u64,
}

impl Tee {
    /// Creates a TEE trusting `vendor_key` for TA manifests.
    pub fn new(
        deployment: TeeDeployment,
        vendor_key: RsaPublicKey,
        rollback_protection: bool,
    ) -> Self {
        Tee {
            deployment,
            vendor_key,
            rollback_protection,
            installed: HashMap::new(),
            keystore: Keystore::new(),
            sessions: HashMap::new(),
            next_session: 0,
            attestation_key: b"tee-attestation-key".to_vec(),
            side_channel_leaks: 0,
        }
    }

    /// The physical deployment shape.
    pub fn deployment(&self) -> TeeDeployment {
        self.deployment
    }

    /// Installs (or updates) a trusted application.
    ///
    /// # Errors
    ///
    /// Rejects bad signatures always, and older versions only when rollback
    /// protection is on — the gap is the TrustZone downgrade attack.
    pub fn install_ta(&mut self, manifest: TaManifest) -> Result<(), TeeError> {
        manifest
            .verify(&self.vendor_key)
            .map_err(|_| TeeError::BadManifest)?;
        if let Some(existing) = self.installed.get(&manifest.name) {
            if self.rollback_protection && manifest.version < existing.version {
                return Err(TeeError::Downgrade {
                    installed: existing.version,
                    offered: manifest.version,
                });
            }
        }
        self.installed.insert(manifest.name.clone(), manifest);
        Ok(())
    }

    /// The installed version of a TA.
    pub fn installed_version(&self, name: &str) -> Option<u32> {
        self.installed.get(name).map(|m| m.version)
    }

    /// Opens a session to an installed TA.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::UnknownTa`] when the TA is not installed.
    pub fn open_session(&mut self, ta: &str) -> Result<SessionId, TeeError> {
        if !self.installed.contains_key(ta) {
            return Err(TeeError::UnknownTa(ta.to_string()));
        }
        let id = SessionId(self.next_session);
        self.next_session += 1;
        self.sessions.insert(id, ta.to_string());
        Ok(id)
    }

    /// Closes a session (idempotent).
    pub fn close_session(&mut self, id: SessionId) {
        self.sessions.remove(&id);
    }

    /// Number of open sessions.
    pub fn open_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Stores a key via an open keystore session.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::BadSession`] for unknown/foreign sessions.
    pub fn store_key(
        &mut self,
        session: SessionId,
        name: &str,
        key: &[u8],
    ) -> Result<(), TeeError> {
        self.require_session(session, "keystore")?;
        self.keystore.store(name, key);
        Ok(())
    }

    /// MACs data under a stored key via a session.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::BadSession`] or [`TeeError::UnknownKey`].
    pub fn mac_with_key(
        &self,
        session: SessionId,
        name: &str,
        data: &[u8],
    ) -> Result<[u8; 32], TeeError> {
        self.require_session(session, "keystore")?;
        self.keystore
            .mac(name, data)
            .ok_or_else(|| TeeError::UnknownKey(name.to_string()))
    }

    /// Direct keystore access for the secure world (SSM wiring).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::SecureWorldOnly`] for normal-world callers.
    pub fn keystore_mut(&mut self, world: World) -> Result<&mut Keystore, TeeError> {
        match world {
            World::Secure => Ok(&mut self.keystore),
            World::Normal => Err(TeeError::SecureWorldOnly),
        }
    }

    /// Raw key export for the secure world only.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::SecureWorldOnly`] or [`TeeError::UnknownKey`].
    pub fn export_key(&self, world: World, name: &str) -> Result<Vec<u8>, TeeError> {
        if world != World::Secure {
            return Err(TeeError::SecureWorldOnly);
        }
        self.keystore
            .export(name)
            .map(<[u8]>::to_vec)
            .ok_or_else(|| TeeError::UnknownKey(name.to_string()))
    }

    /// Produces an attestation report: HMAC over the supplied measurement
    /// under the TEE attestation key.
    pub fn attest(&self, measurement: &[u8]) -> [u8; 32] {
        HmacSha256::mac(&self.attestation_key, measurement)
    }

    /// Verifies an attestation report.
    #[must_use]
    pub fn verify_attestation(&self, measurement: &[u8], report: &[u8; 32]) -> bool {
        cres_crypto::ct::ct_eq(&self.attest(measurement), report)
    }

    /// **The shared-resource leak.** Models a cache-timing extraction of a
    /// stored key by normal-world code. Succeeds — returns the key bytes —
    /// only in the [`TeeDeployment::SharedResources`] deployment; against an
    /// isolated coprocessor there is no shared microarchitecture to probe
    /// and the result is `None`.
    pub fn side_channel_extract(&mut self, name: &str) -> Option<Vec<u8>> {
        match self.deployment {
            TeeDeployment::SharedResources => {
                let leaked = self.keystore.export(name).map(<[u8]>::to_vec);
                if leaked.is_some() {
                    self.side_channel_leaks += 1;
                }
                leaked
            }
            TeeDeployment::IsolatedCoprocessor => None,
        }
    }

    /// How many side-channel extractions have succeeded (ground truth for
    /// experiment scoring; a real system would not know).
    pub fn side_channel_leaks(&self) -> u64 {
        self.side_channel_leaks
    }

    /// Zeroises all keys (countermeasure).
    pub fn zeroize_keys(&mut self) {
        self.keystore.zeroize_all();
    }

    fn require_session(&self, session: SessionId, ta: &str) -> Result<(), TeeError> {
        match self.sessions.get(&session) {
            Some(name) if name == ta => Ok(()),
            _ => Err(TeeError::BadSession),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ta::TaSigner;
    use cres_crypto::drbg::HmacDrbg;
    use cres_crypto::rsa::{generate_keypair, RsaKeypair};

    fn vendor() -> RsaKeypair {
        let mut d = HmacDrbg::new(b"tee-vendor", b"");
        generate_keypair(512, &mut d).unwrap()
    }

    fn tee_with_keystore(deployment: TeeDeployment, rollback: bool) -> (Tee, TaSigner) {
        let kp = vendor();
        let signer = TaSigner::new(&kp);
        let mut tee = Tee::new(deployment, kp.public.clone(), rollback);
        tee.install_ta(signer.sign("keystore", 2, b"keystore-code"))
            .unwrap();
        (tee, signer)
    }

    #[test]
    fn session_lifecycle_and_key_ops() {
        let (mut tee, _) = tee_with_keystore(TeeDeployment::SharedResources, true);
        let s = tee.open_session("keystore").unwrap();
        tee.store_key(s, "device", b"root-key").unwrap();
        let tag = tee.mac_with_key(s, "device", b"msg").unwrap();
        assert_eq!(tag, HmacSha256::mac(b"root-key", b"msg"));
        tee.close_session(s);
        assert!(tee.mac_with_key(s, "device", b"msg").is_err());
        assert_eq!(tee.open_sessions(), 0);
    }

    #[test]
    fn unknown_ta_session_fails() {
        let (mut tee, _) = tee_with_keystore(TeeDeployment::SharedResources, true);
        assert_eq!(
            tee.open_session("payments"),
            Err(TeeError::UnknownTa("payments".into()))
        );
    }

    #[test]
    fn normal_world_cannot_export_keys() {
        let (mut tee, _) = tee_with_keystore(TeeDeployment::IsolatedCoprocessor, true);
        let s = tee.open_session("keystore").unwrap();
        tee.store_key(s, "k", b"secret").unwrap();
        assert_eq!(
            tee.export_key(World::Normal, "k"),
            Err(TeeError::SecureWorldOnly)
        );
        assert_eq!(tee.export_key(World::Secure, "k").unwrap(), b"secret");
    }

    #[test]
    fn downgrade_blocked_with_rollback_protection() {
        let (mut tee, signer) = tee_with_keystore(TeeDeployment::SharedResources, true);
        let old = signer.sign("keystore", 1, b"vulnerable-keystore");
        assert_eq!(
            tee.install_ta(old),
            Err(TeeError::Downgrade {
                installed: 2,
                offered: 1
            })
        );
        assert_eq!(tee.installed_version("keystore"), Some(2));
    }

    #[test]
    fn downgrade_succeeds_without_rollback_protection() {
        // The Project Zero / downgrade-attack scenario.
        let (mut tee, signer) = tee_with_keystore(TeeDeployment::SharedResources, false);
        let old = signer.sign("keystore", 1, b"vulnerable-keystore");
        assert!(tee.install_ta(old).is_ok());
        assert_eq!(tee.installed_version("keystore"), Some(1));
    }

    #[test]
    fn forged_manifest_rejected_regardless() {
        let (mut tee, _) = tee_with_keystore(TeeDeployment::SharedResources, false);
        let mut evil = HmacDrbg::new(b"evil", b"");
        let evil_kp = generate_keypair(512, &mut evil).unwrap();
        let forged = TaSigner::new(&evil_kp).sign("keystore", 99, b"backdoor");
        assert_eq!(tee.install_ta(forged), Err(TeeError::BadManifest));
    }

    #[test]
    fn side_channel_leaks_only_when_shared() {
        let (mut shared, _) = tee_with_keystore(TeeDeployment::SharedResources, true);
        let s = shared.open_session("keystore").unwrap();
        shared.store_key(s, "k", b"secret").unwrap();
        assert_eq!(shared.side_channel_extract("k").unwrap(), b"secret");
        assert_eq!(shared.side_channel_leaks(), 1);

        let (mut isolated, _) = tee_with_keystore(TeeDeployment::IsolatedCoprocessor, true);
        let s = isolated.open_session("keystore").unwrap();
        isolated.store_key(s, "k", b"secret").unwrap();
        assert_eq!(isolated.side_channel_extract("k"), None);
        assert_eq!(isolated.side_channel_leaks(), 0);
    }

    #[test]
    fn zeroize_defeats_subsequent_extraction() {
        let (mut tee, _) = tee_with_keystore(TeeDeployment::SharedResources, true);
        let s = tee.open_session("keystore").unwrap();
        tee.store_key(s, "k", b"secret").unwrap();
        tee.zeroize_keys();
        assert_eq!(tee.side_channel_extract("k"), None);
    }

    #[test]
    fn attestation_round_trip() {
        let (tee, _) = tee_with_keystore(TeeDeployment::IsolatedCoprocessor, true);
        let report = tee.attest(b"pcr-snapshot");
        assert!(tee.verify_attestation(b"pcr-snapshot", &report));
        assert!(!tee.verify_attestation(b"different", &report));
    }
}
