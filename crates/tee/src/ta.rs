//! Signed trusted-application manifests.
//!
//! A TA ships as a manifest (name, version, payload hash) signed by the TEE
//! vendor. The *downgrade* weakness of commercial TEEs is that the
//! signature proves authenticity but not freshness: an old, vulnerable TA
//! verifies forever. [`crate::tee::Tee`] enforces version monotonicity only
//! when rollback protection is enabled.

use cres_crypto::rsa::{RsaKeypair, RsaPrivateKey, RsaPublicKey};
use cres_crypto::sha2::Sha256;
use cres_crypto::CryptoError;

/// A trusted-application manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaManifest {
    /// TA name, e.g. `"keystore"`.
    pub name: String,
    /// TA version; higher fixes vulnerabilities in lower.
    pub version: u32,
    /// SHA-256 of the TA payload.
    pub payload_hash: [u8; 32],
    /// Vendor signature over the fields above.
    pub signature: Vec<u8>,
}

impl TaManifest {
    /// The byte string the vendor signs.
    pub fn signed_bytes(name: &str, version: u32, payload_hash: &[u8; 32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(name.len() + 40);
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(payload_hash);
        out
    }

    /// Verifies the vendor signature.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::VerificationFailed`] on mismatch.
    pub fn verify(&self, key: &RsaPublicKey) -> Result<(), CryptoError> {
        key.verify(
            &Self::signed_bytes(&self.name, self.version, &self.payload_hash),
            &self.signature,
        )
    }
}

/// The vendor-side TA signing tool.
#[derive(Debug, Clone)]
pub struct TaSigner {
    key: RsaPrivateKey,
}

impl TaSigner {
    /// Creates a signer from the vendor keypair.
    pub fn new(keypair: &RsaKeypair) -> Self {
        TaSigner {
            key: keypair.private.clone(),
        }
    }

    /// Builds and signs a manifest for `payload`.
    pub fn sign(&self, name: &str, version: u32, payload: &[u8]) -> TaManifest {
        let payload_hash = Sha256::digest(payload);
        let signature = self
            .key
            .sign(&TaManifest::signed_bytes(name, version, &payload_hash));
        TaManifest {
            name: name.to_string(),
            version,
            payload_hash,
            signature,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cres_crypto::drbg::HmacDrbg;
    use cres_crypto::rsa::generate_keypair;

    fn keypair(seed: &[u8]) -> RsaKeypair {
        let mut d = HmacDrbg::new(seed, b"ta");
        generate_keypair(512, &mut d).unwrap()
    }

    #[test]
    fn signed_manifest_verifies() {
        let kp = keypair(b"vendor");
        let m = TaSigner::new(&kp).sign("keystore", 2, b"ta code");
        assert!(m.verify(&kp.public).is_ok());
        assert_eq!(m.name, "keystore");
        assert_eq!(m.version, 2);
    }

    #[test]
    fn tampered_fields_fail() {
        let kp = keypair(b"vendor");
        let m = TaSigner::new(&kp).sign("keystore", 2, b"ta code");
        let mut newer = m.clone();
        newer.version = 3;
        assert!(newer.verify(&kp.public).is_err());
        let mut renamed = m.clone();
        renamed.name = "attest".into();
        assert!(renamed.verify(&kp.public).is_err());
    }

    #[test]
    fn wrong_vendor_fails() {
        let kp = keypair(b"vendor");
        let evil = keypair(b"evil");
        let m = TaSigner::new(&evil).sign("keystore", 9, b"backdoor");
        assert!(m.verify(&kp.public).is_err());
    }

    #[test]
    fn old_version_still_verifies() {
        // This IS the vulnerability: signatures do not expire.
        let kp = keypair(b"vendor");
        let signer = TaSigner::new(&kp);
        let v1 = signer.sign("keystore", 1, b"vulnerable");
        let _v2 = signer.sign("keystore", 2, b"fixed");
        assert!(v1.verify(&kp.public).is_ok());
    }
}
