#![warn(missing_docs)]

//! A trusted execution environment model.
//!
//! The paper's §IV argues that a TEE *sharing the physical processor and
//! memory with the general-purpose processor* is structurally attackable —
//! microarchitectural side channels (Spectre/Meltdown-class) and trusted-app
//! downgrade (\[16\], Project Zero \[32\]) both exploit that sharing. This crate
//! models a GlobalPlatform-style TEE precisely enough to reproduce those two
//! attack classes and contrast them with the physically isolated SSM:
//!
//! * [`ta`] — signed trusted-application manifests with optional rollback
//!   protection (off = the downgrade vulnerability),
//! * [`keystore`] — the secure-storage TA: handles out, secrets never
//!   returned to the normal world,
//! * [`tee`] — worlds, SMC sessions and the deployment flag that makes
//!   side-channel extraction possible ([`tee::TeeDeployment::SharedResources`]).

pub mod keystore;
pub mod ta;
pub mod tee;

pub use keystore::Keystore;
pub use ta::{TaManifest, TaSigner};
pub use tee::{SessionId, Tee, TeeDeployment, TeeError, World};
