//! Property tests for the boot substrate: the image parser is fed
//! adversarial bytes (it guards the first link of the chain of trust), and
//! the update engine's slot invariants are fuzzed.

use cres_boot::{
    ArbCounters, BootPolicy, BootRom, FirmwareImage, ImageSigner, MemArbCounters, Slot, SlotStore,
    UpdateEngine,
};
use cres_crypto::drbg::HmacDrbg;
use cres_crypto::rsa::{generate_keypair, RsaKeypair};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One keypair for the whole suite — keygen is the expensive part.
fn keypair() -> &'static RsaKeypair {
    static KP: OnceLock<RsaKeypair> = OnceLock::new();
    KP.get_or_init(|| {
        let mut d = HmacDrbg::new(b"boot-proptest", b"");
        generate_keypair(512, &mut d).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn image_round_trips_for_any_payload(
        stage in "[a-z]{1,16}",
        version: u32,
        sv: u64,
        payload in proptest::collection::vec(any::<u8>(), 0..2048)
    ) {
        let kp = keypair();
        let img = ImageSigner::new(kp).sign(&stage, version, sv, &payload);
        let parsed = FirmwareImage::from_bytes(&img.to_bytes(), kp.public.modulus_len()).unwrap();
        prop_assert_eq!(&parsed, &img);
        prop_assert!(parsed.verify(&kp.public).is_ok());
    }

    #[test]
    fn parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // any result is fine; panicking is not
        let _ = FirmwareImage::from_bytes(&bytes, 64);
    }

    #[test]
    fn parser_rejects_any_truncation(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        cut in any::<prop::sample::Index>()
    ) {
        let kp = keypair();
        let bytes = ImageSigner::new(kp).sign("app", 1, 1, &payload).to_bytes();
        let keep = cut.index(bytes.len()); // strictly shorter
        prop_assert!(FirmwareImage::from_bytes(&bytes[..keep], kp.public.modulus_len()).is_err());
    }

    #[test]
    fn any_flip_in_image_bytes_fails_parse_or_verify(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        pos in any::<prop::sample::Index>(),
        bit in 0u8..8
    ) {
        let kp = keypair();
        let mut bytes = ImageSigner::new(kp).sign("app", 1, 1, &payload).to_bytes();
        let i = pos.index(bytes.len());
        bytes[i] ^= 1 << bit;
        let ok = FirmwareImage::from_bytes(&bytes, kp.public.modulus_len())
            .is_ok_and(|img| img.verify(&kp.public).is_ok());
        prop_assert!(!ok, "flipped bit at byte {i} went unnoticed");
    }

    #[test]
    fn rom_accepts_iff_signed_and_fresh(image_sv in 0u64..20, fused in 0u64..20) {
        let kp = keypair();
        let rom = BootRom::new(kp.public.fingerprint(), BootPolicy::default());
        let img = ImageSigner::new(kp).sign("app", 1, image_sv, b"fw");
        let mut arb = MemArbCounters::new();
        arb.advance("app", fused);
        let result = rom.verify_stage(&img, &kp.public, &mut arb);
        prop_assert_eq!(result.is_ok(), image_sv >= fused);
        if image_sv >= fused {
            // counter advanced to the image's sv
            prop_assert_eq!(arb.current("app"), image_sv.max(fused));
        } else {
            prop_assert_eq!(arb.current("app"), fused);
        }
    }

    #[test]
    fn update_commit_switches_iff_valid(
        good: bool,
        payload in proptest::collection::vec(any::<u8>(), 1..128)
    ) {
        let kp = keypair();
        let signer = ImageSigner::new(kp);
        let golden = signer.sign("app", 1, 1, b"golden").to_bytes();
        let mut store = SlotStore::new(golden);
        let mut engine = UpdateEngine::new(kp.public.modulus_len(), 3);
        let rom = BootRom::new(kp.public.fingerprint(), BootPolicy::default());
        let mut arb = MemArbCounters::new();
        let staged = if good {
            signer.sign("app", 2, 2, &payload).to_bytes()
        } else {
            payload.clone()
        };
        engine.stage(&mut store, staged);
        let before = store.active();
        let result = engine.commit(&mut store, &rom, &kp.public, &mut arb);
        prop_assert_eq!(result.is_ok(), good);
        if good {
            prop_assert_eq!(store.active(), before.other());
        } else {
            prop_assert_eq!(store.active(), before);
        }
    }

    #[test]
    fn boot_failure_budget_is_exact(budget in 1u32..8) {
        let kp = keypair();
        let golden = ImageSigner::new(kp).sign("app", 1, 1, b"g").to_bytes();
        let mut store = SlotStore::new(golden.clone());
        store.write_slot(Slot::B, golden);
        store.set_active(Slot::B);
        let mut engine = UpdateEngine::new(kp.public.modulus_len(), budget);
        for i in 1..=budget {
            let rolled = engine.record_boot_failure(&mut store).unwrap();
            prop_assert_eq!(rolled, i == budget, "attempt {}", i);
        }
        prop_assert_eq!(store.active(), Slot::A);
    }
}
