//! Platform configuration registers for measured boot.
//!
//! A TPM-style PCR bank: registers start at zero and can only be *extended*
//! (`pcr ← SHA-256(pcr ‖ measurement)`), never written. A boot stage's
//! measurement is folded in before control transfers to it, so the final
//! PCR values commit to the exact boot path. Attestation quotes are
//! HMAC-keyed over the PCR values plus a caller nonce.

use cres_crypto::hmac::HmacSha256;
use cres_crypto::sha2::Sha256;

/// Number of registers in the bank.
pub const PCR_COUNT: usize = 8;

/// Conventional register assignments.
pub mod index {
    /// Boot ROM self-measurement.
    pub const ROM: usize = 0;
    /// Bootloader stage.
    pub const BOOTLOADER: usize = 1;
    /// Application firmware stage.
    pub const APP: usize = 2;
    /// Configuration data.
    pub const CONFIG: usize = 3;
}

/// A bank of platform configuration registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcrBank {
    regs: [[u8; 32]; PCR_COUNT],
    extend_log: Vec<(usize, [u8; 32])>,
}

impl Default for PcrBank {
    fn default() -> Self {
        Self::new()
    }
}

impl PcrBank {
    /// Creates a zeroed bank.
    pub fn new() -> Self {
        PcrBank {
            regs: [[0u8; 32]; PCR_COUNT],
            extend_log: Vec::new(),
        }
    }

    /// Extends register `idx` with `measurement`.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range indices.
    pub fn extend(&mut self, idx: usize, measurement: &[u8; 32]) {
        assert!(idx < PCR_COUNT, "no PCR {idx}");
        let mut h = Sha256::new();
        h.update(&self.regs[idx]);
        h.update(measurement);
        self.regs[idx] = h.finalize();
        self.extend_log.push((idx, *measurement));
    }

    /// Reads register `idx`.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range indices.
    pub fn read(&self, idx: usize) -> [u8; 32] {
        assert!(idx < PCR_COUNT, "no PCR {idx}");
        self.regs[idx]
    }

    /// The ordered log of extensions (measured-boot event log).
    pub fn event_log(&self) -> &[(usize, [u8; 32])] {
        &self.extend_log
    }

    /// Produces an attestation quote: HMAC over `nonce ‖ all PCR values`
    /// under `key` (the attestation key held by the TEE/SSM).
    pub fn quote(&self, key: &[u8], nonce: &[u8]) -> [u8; 32] {
        let mut mac = HmacSha256::new(key);
        mac.update(nonce);
        for r in &self.regs {
            mac.update(r);
        }
        mac.finalize()
    }

    /// Verifies a quote against expected PCR values.
    #[must_use]
    pub fn verify_quote(
        expected: &[[u8; 32]; PCR_COUNT],
        key: &[u8],
        nonce: &[u8],
        quote: &[u8; 32],
    ) -> bool {
        let mut mac = HmacSha256::new(key);
        mac.update(nonce);
        for r in expected {
            mac.update(r);
        }
        cres_crypto::ct::ct_eq(&mac.finalize(), quote)
    }

    /// Snapshot of all registers (for golden-value comparison).
    pub fn snapshot(&self) -> [[u8; 32]; PCR_COUNT] {
        self.regs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_bank_is_zero() {
        let b = PcrBank::new();
        assert_eq!(b.read(0), [0u8; 32]);
        assert!(b.event_log().is_empty());
    }

    #[test]
    fn extend_changes_register_and_is_order_sensitive() {
        let mut a = PcrBank::new();
        let mut b = PcrBank::new();
        let m1 = [1u8; 32];
        let m2 = [2u8; 32];
        a.extend(0, &m1);
        a.extend(0, &m2);
        b.extend(0, &m2);
        b.extend(0, &m1);
        assert_ne!(
            a.read(0),
            b.read(0),
            "PCR extension must be order sensitive"
        );
        assert_ne!(a.read(0), [0u8; 32]);
    }

    #[test]
    fn extend_is_deterministic() {
        let mut a = PcrBank::new();
        let mut b = PcrBank::new();
        a.extend(2, &[7u8; 32]);
        b.extend(2, &[7u8; 32]);
        assert_eq!(a.read(2), b.read(2));
    }

    #[test]
    fn registers_are_independent() {
        let mut b = PcrBank::new();
        b.extend(1, &[1u8; 32]);
        assert_eq!(b.read(0), [0u8; 32]);
        assert_ne!(b.read(1), [0u8; 32]);
    }

    #[test]
    #[should_panic(expected = "no PCR")]
    fn out_of_range_panics() {
        PcrBank::new().read(PCR_COUNT);
    }

    #[test]
    fn quote_round_trip() {
        let mut b = PcrBank::new();
        b.extend(index::APP, &[9u8; 32]);
        let q = b.quote(b"attest-key", b"nonce-1");
        assert!(PcrBank::verify_quote(
            &b.snapshot(),
            b"attest-key",
            b"nonce-1",
            &q
        ));
        assert!(!PcrBank::verify_quote(
            &b.snapshot(),
            b"attest-key",
            b"nonce-2",
            &q
        ));
        assert!(!PcrBank::verify_quote(
            &b.snapshot(),
            b"wrong-key",
            b"nonce-1",
            &q
        ));
        // different PCR state → quote mismatch
        let fresh = PcrBank::new();
        assert!(!PcrBank::verify_quote(
            &fresh.snapshot(),
            b"attest-key",
            b"nonce-1",
            &q
        ));
    }

    #[test]
    fn event_log_records_extensions() {
        let mut b = PcrBank::new();
        b.extend(0, &[1u8; 32]);
        b.extend(2, &[2u8; 32]);
        assert_eq!(b.event_log().len(), 2);
        assert_eq!(b.event_log()[0].0, 0);
        assert_eq!(b.event_log()[1].0, 2);
    }
}
