//! The multi-stage chain of trust.
//!
//! `ROM → bootloader → app` — each stage's image is verified by the ROM
//! policy and measured into the PCR bank *before* control would transfer to
//! it. The chain stops at the first failure: exactly the "series of nested
//! assumptions, as vulnerable as its weakest link" the paper describes.

use crate::image::FirmwareImage;
use crate::pcr::{index, PcrBank};
use crate::rom::{BootRom, VerifyError};
use crate::ArbCounters;
use cres_crypto::rsa::RsaPublicKey;

/// Result of verifying one stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageResult {
    /// Stage name from the image header.
    pub stage: String,
    /// Image version.
    pub version: u32,
    /// Security version.
    pub security_version: u64,
    /// `Ok` or the verification error.
    pub result: Result<(), VerifyError>,
}

/// Overall boot outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BootOutcome {
    /// Every stage verified; the system is up.
    Booted,
    /// Verification failed at stage `index` of the chain.
    FailedAt(usize),
}

/// Full report of one boot attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootReport {
    /// Per-stage results in chain order.
    pub stages: Vec<StageResult>,
    /// Overall outcome.
    pub outcome: BootOutcome,
    /// Final PCR snapshot.
    pub pcrs: [[u8; 32]; crate::pcr::PCR_COUNT],
}

impl BootReport {
    /// True when the boot completed.
    pub fn booted(&self) -> bool {
        self.outcome == BootOutcome::Booted
    }
}

/// The boot chain: a ROM plus the vendor verification key.
#[derive(Debug, Clone)]
pub struct BootChain {
    rom: BootRom,
    key: RsaPublicKey,
    rom_measurement: [u8; 32],
}

impl BootChain {
    /// Creates a chain. `rom_measurement` is the ROM's own self-measurement
    /// extended into PCR0 first.
    pub fn new(rom: BootRom, key: RsaPublicKey, rom_measurement: [u8; 32]) -> Self {
        BootChain {
            rom,
            key,
            rom_measurement,
        }
    }

    /// Immutable access to the ROM (for policy inspection).
    pub fn rom(&self) -> &BootRom {
        &self.rom
    }

    /// Mutable ROM access (key revocation manifests).
    pub fn rom_mut(&mut self) -> &mut BootRom {
        &mut self.rom
    }

    /// Attempts to boot through `images` in chain order (bootloader first).
    /// Measures each *verified* stage into the PCR bank; a failed stage is
    /// not measured and aborts the chain.
    pub fn boot(&self, images: &[&FirmwareImage], arb: &mut dyn ArbCounters) -> BootReport {
        let mut pcrs = PcrBank::new();
        pcrs.extend(index::ROM, &self.rom_measurement);
        let mut stages = Vec::with_capacity(images.len());
        let mut outcome = BootOutcome::Booted;
        for (i, image) in images.iter().enumerate() {
            let result = self.rom.verify_stage(image, &self.key, arb);
            let ok = result.is_ok();
            stages.push(StageResult {
                stage: image.header.stage.clone(),
                version: image.header.version,
                security_version: image.header.security_version,
                result,
            });
            if ok {
                let pcr_idx = match image.header.stage.as_str() {
                    "bootloader" => index::BOOTLOADER,
                    "app" => index::APP,
                    _ => index::CONFIG,
                };
                pcrs.extend(pcr_idx, &image.measurement());
            } else {
                outcome = BootOutcome::FailedAt(i);
                break;
            }
        }
        BootReport {
            stages,
            outcome,
            pcrs: pcrs.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageSigner;
    use crate::rom::BootPolicy;
    use crate::MemArbCounters;
    use cres_crypto::drbg::HmacDrbg;
    use cres_crypto::rsa::{generate_keypair, RsaKeypair};

    fn keypair() -> RsaKeypair {
        let mut drbg = HmacDrbg::new(b"chain-test", b"");
        generate_keypair(512, &mut drbg).unwrap()
    }

    fn chain(kp: &RsaKeypair, policy: BootPolicy) -> BootChain {
        BootChain::new(
            BootRom::new(kp.public.fingerprint(), policy),
            kp.public.clone(),
            [0xAA; 32],
        )
    }

    #[test]
    fn full_chain_boots_and_measures() {
        let kp = keypair();
        let signer = ImageSigner::new(&kp);
        let bl = signer.sign("bootloader", 1, 1, b"bl code");
        let app = signer.sign("app", 1, 1, b"app code");
        let mut arb = MemArbCounters::new();
        let report = chain(&kp, BootPolicy::default()).boot(&[&bl, &app], &mut arb);
        assert!(report.booted());
        assert_eq!(report.stages.len(), 2);
        assert_ne!(report.pcrs[index::ROM], [0u8; 32]);
        assert_ne!(report.pcrs[index::BOOTLOADER], [0u8; 32]);
        assert_ne!(report.pcrs[index::APP], [0u8; 32]);
    }

    #[test]
    fn failure_aborts_chain_and_skips_measurement() {
        let kp = keypair();
        let attacker = {
            let mut d = HmacDrbg::new(b"evil", b"");
            generate_keypair(512, &mut d).unwrap()
        };
        let bl = ImageSigner::new(&kp).sign("bootloader", 1, 1, b"bl");
        let evil_app = ImageSigner::new(&attacker).sign("app", 9, 9, b"evil");
        let mut arb = MemArbCounters::new();
        let report = chain(&kp, BootPolicy::default()).boot(&[&bl, &evil_app], &mut arb);
        assert_eq!(report.outcome, BootOutcome::FailedAt(1));
        assert!(report.stages[0].result.is_ok());
        assert!(report.stages[1].result.is_err());
        // app PCR untouched
        assert_eq!(report.pcrs[index::APP], [0u8; 32]);
        // bootloader PCR extended
        assert_ne!(report.pcrs[index::BOOTLOADER], [0u8; 32]);
    }

    #[test]
    fn pcrs_commit_to_exact_boot_path() {
        let kp = keypair();
        let signer = ImageSigner::new(&kp);
        let mut arb1 = MemArbCounters::new();
        let mut arb2 = MemArbCounters::new();
        let c = chain(&kp, BootPolicy::signature_only());
        let app1 = signer.sign("app", 1, 1, b"v1");
        let app2 = signer.sign("app", 2, 1, b"v2");
        let r1 = c.boot(&[&app1], &mut arb1);
        let r2 = c.boot(&[&app2], &mut arb2);
        assert_ne!(r1.pcrs[index::APP], r2.pcrs[index::APP]);
        // same image → same PCRs (reproducible measured boot)
        let mut arb3 = MemArbCounters::new();
        let r3 = c.boot(&[&app1], &mut arb3);
        assert_eq!(r1.pcrs, r3.pcrs);
    }

    #[test]
    fn downgrade_across_boots_detected() {
        let kp = keypair();
        let signer = ImageSigner::new(&kp);
        let c = chain(&kp, BootPolicy::default());
        let mut arb = MemArbCounters::new();
        let v2 = signer.sign("app", 2, 2, b"v2");
        assert!(c.boot(&[&v2], &mut arb).booted());
        let v1 = signer.sign("app", 1, 1, b"v1");
        let report = c.boot(&[&v1], &mut arb);
        assert_eq!(report.outcome, BootOutcome::FailedAt(0));
        assert!(matches!(
            report.stages[0].result,
            Err(VerifyError::Rollback { .. })
        ));
    }
}
