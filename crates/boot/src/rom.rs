//! The immutable boot ROM: first-stage verification policy.
//!
//! The ROM is the root of the chain of trust. Its verification policy is
//! deliberately configurable because experiment E10 compares three
//! hardenings of the same chain: signature-only (the vulnerable commercial
//! baseline of §IV), signature + anti-rollback, and signature +
//! anti-rollback + key revocation.

use crate::image::{FirmwareImage, ImageError};
use crate::ArbCounters;
use cres_crypto::rsa::RsaPublicKey;
use std::fmt;

/// Verification policy flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootPolicy {
    /// Enforce `security_version >=` the OTP counter (anti-rollback).
    pub anti_rollback: bool,
    /// After a successful verify, advance the OTP counter to the image's
    /// security version (locks out older images for the future).
    pub advance_counters: bool,
}

impl Default for BootPolicy {
    fn default() -> Self {
        BootPolicy {
            anti_rollback: true,
            advance_counters: true,
        }
    }
}

impl BootPolicy {
    /// The vulnerable commercial baseline: signature check only.
    pub fn signature_only() -> Self {
        BootPolicy {
            anti_rollback: false,
            advance_counters: false,
        }
    }
}

/// Why the ROM rejected an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Structural or signature failure.
    Image(ImageError),
    /// The trusted key's fingerprint does not match the OTP fuse.
    UntrustedKey,
    /// The key has been revoked (its fingerprint is on the revocation
    /// list).
    RevokedKey,
    /// Anti-rollback: image security version below the OTP counter.
    Rollback {
        /// Image's security version.
        image: u64,
        /// Minimum acceptable version.
        minimum: u64,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Image(e) => write!(f, "image error: {e}"),
            VerifyError::UntrustedKey => write!(f, "verification key not trusted by OTP"),
            VerifyError::RevokedKey => write!(f, "verification key revoked"),
            VerifyError::Rollback { image, minimum } => {
                write!(f, "rollback: image sv {image} below minimum {minimum}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<ImageError> for VerifyError {
    fn from(e: ImageError) -> Self {
        VerifyError::Image(e)
    }
}

/// The immutable first-stage verifier.
#[derive(Debug, Clone)]
pub struct BootRom {
    trusted_fingerprint: [u8; 8],
    revoked: Vec<[u8; 8]>,
    policy: BootPolicy,
}

impl BootRom {
    /// Creates a ROM trusting the key whose fingerprint was fused at
    /// provisioning time.
    pub fn new(trusted_fingerprint: [u8; 8], policy: BootPolicy) -> Self {
        BootRom {
            trusted_fingerprint,
            revoked: Vec::new(),
            policy,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> BootPolicy {
        self.policy
    }

    /// Adds a key fingerprint to the revocation list (field update via a
    /// signed revocation manifest, modelled as a direct call).
    pub fn revoke_key(&mut self, fingerprint: [u8; 8]) {
        if !self.revoked.contains(&fingerprint) {
            self.revoked.push(fingerprint);
        }
    }

    /// Verifies `image` against `key` under the ROM policy, advancing
    /// anti-rollback counters when configured.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] describing the first failed check.
    pub fn verify_stage(
        &self,
        image: &FirmwareImage,
        key: &RsaPublicKey,
        arb: &mut dyn ArbCounters,
    ) -> Result<(), VerifyError> {
        let fp = key.fingerprint();
        if fp != self.trusted_fingerprint {
            return Err(VerifyError::UntrustedKey);
        }
        if self.revoked.contains(&fp) {
            return Err(VerifyError::RevokedKey);
        }
        image.verify(key)?;
        if self.policy.anti_rollback {
            let minimum = arb.current(&image.header.stage);
            if image.header.security_version < minimum {
                return Err(VerifyError::Rollback {
                    image: image.header.security_version,
                    minimum,
                });
            }
        }
        if self.policy.advance_counters {
            arb.advance(&image.header.stage, image.header.security_version);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageSigner;
    use crate::MemArbCounters;
    use cres_crypto::drbg::HmacDrbg;
    use cres_crypto::rsa::{generate_keypair, RsaKeypair};

    fn keypair(seed: &[u8]) -> RsaKeypair {
        let mut drbg = HmacDrbg::new(seed, b"rom-test");
        generate_keypair(512, &mut drbg).unwrap()
    }

    #[test]
    fn valid_image_passes_and_advances_counter() {
        let kp = keypair(b"vendor");
        let rom = BootRom::new(kp.public.fingerprint(), BootPolicy::default());
        let img = ImageSigner::new(&kp).sign("app", 3, 5, b"fw");
        let mut arb = MemArbCounters::new();
        rom.verify_stage(&img, &kp.public, &mut arb).unwrap();
        assert_eq!(arb.current("app"), 5);
    }

    #[test]
    fn untrusted_key_rejected() {
        let vendor = keypair(b"vendor");
        let attacker = keypair(b"attacker");
        let rom = BootRom::new(vendor.public.fingerprint(), BootPolicy::default());
        let img = ImageSigner::new(&attacker).sign("app", 1, 1, b"evil");
        let mut arb = MemArbCounters::new();
        assert_eq!(
            rom.verify_stage(&img, &attacker.public, &mut arb),
            Err(VerifyError::UntrustedKey)
        );
    }

    #[test]
    fn downgrade_blocked_with_anti_rollback() {
        let kp = keypair(b"vendor");
        let rom = BootRom::new(kp.public.fingerprint(), BootPolicy::default());
        let signer = ImageSigner::new(&kp);
        let mut arb = MemArbCounters::new();
        // boot v2 (sv=2) first
        let v2 = signer.sign("app", 2, 2, b"fw-v2");
        rom.verify_stage(&v2, &kp.public, &mut arb).unwrap();
        // replay genuinely-signed v1 (sv=1): must be rejected
        let v1 = signer.sign("app", 1, 1, b"fw-v1-vulnerable");
        assert_eq!(
            rom.verify_stage(&v1, &kp.public, &mut arb),
            Err(VerifyError::Rollback {
                image: 1,
                minimum: 2
            })
        );
    }

    #[test]
    fn downgrade_succeeds_without_anti_rollback() {
        // The §IV vulnerability: signature-only policy accepts the replay.
        let kp = keypair(b"vendor");
        let rom = BootRom::new(kp.public.fingerprint(), BootPolicy::signature_only());
        let signer = ImageSigner::new(&kp);
        let mut arb = MemArbCounters::new();
        let v2 = signer.sign("app", 2, 2, b"fw-v2");
        rom.verify_stage(&v2, &kp.public, &mut arb).unwrap();
        let v1 = signer.sign("app", 1, 1, b"fw-v1-vulnerable");
        assert!(rom.verify_stage(&v1, &kp.public, &mut arb).is_ok());
    }

    #[test]
    fn equal_security_version_is_allowed() {
        let kp = keypair(b"vendor");
        let rom = BootRom::new(kp.public.fingerprint(), BootPolicy::default());
        let signer = ImageSigner::new(&kp);
        let mut arb = MemArbCounters::new();
        let img = signer.sign("app", 2, 2, b"fw");
        rom.verify_stage(&img, &kp.public, &mut arb).unwrap();
        // A/B slot with same sv must still boot
        rom.verify_stage(&img, &kp.public, &mut arb).unwrap();
    }

    #[test]
    fn revoked_key_rejected() {
        let kp = keypair(b"vendor");
        let mut rom = BootRom::new(kp.public.fingerprint(), BootPolicy::default());
        rom.revoke_key(kp.public.fingerprint());
        let img = ImageSigner::new(&kp).sign("app", 1, 1, b"fw");
        let mut arb = MemArbCounters::new();
        assert_eq!(
            rom.verify_stage(&img, &kp.public, &mut arb),
            Err(VerifyError::RevokedKey)
        );
    }

    #[test]
    fn tampered_image_rejected() {
        let kp = keypair(b"vendor");
        let rom = BootRom::new(kp.public.fingerprint(), BootPolicy::default());
        let mut img = ImageSigner::new(&kp).sign("app", 1, 1, b"fw");
        img.payload = b"patched".to_vec();
        img.header.payload_hash = cres_crypto::sha2::Sha256::digest(&img.payload);
        let mut arb = MemArbCounters::new();
        assert!(matches!(
            rom.verify_stage(&img, &kp.public, &mut arb),
            Err(VerifyError::Image(ImageError::BadSignature))
        ));
    }
}
