#![warn(missing_docs)]

//! Secure and measured boot for the CRES platform.
//!
//! Implements the commercial secure-boot pattern the paper's §IV analyses —
//! and whose weaknesses (no anti-rollback ⇒ downgrade, single trust chain ⇒
//! total compromise) experiment E10 reproduces:
//!
//! * [`image`] — the signed firmware image format and signing tool,
//! * [`pcr`] — a TPM-style platform configuration register bank for
//!   measured boot and attestation quotes,
//! * [`rom`] — the immutable first-stage verifier (signature, hash,
//!   anti-rollback policy),
//! * [`chain`] — the multi-stage chain of trust over A/B/golden slots,
//! * [`update`] — the firmware update engine: staged A/B updates,
//!   roll-back, roll-forward and golden-image recovery.
//!
//! The crate is independent of the SoC model: it operates on byte buffers
//! (a [`update::SlotStore`]) and the OTP-like [`ArbCounters`] trait, so it
//! can be unit-tested standalone and wired to simulated flash by the
//! platform crate.

pub mod chain;
pub mod image;
pub mod pcr;
pub mod rom;
pub mod update;

pub use chain::{BootChain, BootOutcome, BootReport, StageResult};
pub use image::{FirmwareImage, ImageError, ImageHeader, ImageSigner};
pub use pcr::PcrBank;
pub use rom::{BootPolicy, BootRom};
pub use update::{Slot, SlotStore, UpdateEngine, UpdateError};

/// Anti-rollback counter storage, implemented by the platform's OTP fuses.
///
/// The boot ROM reads the minimum acceptable security version through this
/// trait and advances it after a successful boot of a newer image.
pub trait ArbCounters {
    /// Current minimum acceptable security version for `stage`.
    fn current(&self, stage: &str) -> u64;
    /// Advances the counter; must fail or saturate rather than regress.
    fn advance(&mut self, stage: &str, value: u64);
}

/// An in-memory [`ArbCounters`] for tests and standalone use.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemArbCounters {
    counters: std::collections::HashMap<String, u64>,
}

impl MemArbCounters {
    /// Creates an all-zero counter bank.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ArbCounters for MemArbCounters {
    fn current(&self, stage: &str) -> u64 {
        self.counters.get(stage).copied().unwrap_or(0)
    }

    fn advance(&mut self, stage: &str, value: u64) {
        let cur = self.current(stage);
        if value > cur {
            self.counters.insert(stage.to_string(), value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_counters_never_regress() {
        let mut c = MemArbCounters::new();
        assert_eq!(c.current("app"), 0);
        c.advance("app", 5);
        c.advance("app", 3); // ignored
        assert_eq!(c.current("app"), 5);
        c.advance("app", 9);
        assert_eq!(c.current("app"), 9);
        assert_eq!(c.current("other"), 0);
    }
}
