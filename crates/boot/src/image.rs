//! The signed firmware image format.
//!
//! Wire layout (all integers little-endian):
//!
//! ```text
//! magic(4) "CRFW" | format_ver(2) | stage_len(2) | stage(UTF-8)
//! | version(4) | security_version(8) | payload_len(4)
//! | payload_hash(32) | payload | signature(sig_len over everything before)
//! ```
//!
//! The signature covers header *and* payload, so neither can be swapped
//! independently — except by re-signing, which requires the vendor key. The
//! downgrade attack of E10 does not forge anything: it replays an *old,
//! genuinely signed* image, which is exactly why `security_version` plus an
//! OTP counter is needed.

use cres_crypto::rsa::{RsaKeypair, RsaPrivateKey, RsaPublicKey};
use cres_crypto::sha2::Sha256;
use cres_crypto::CryptoError;
use std::fmt;

/// Image format magic.
pub const MAGIC: [u8; 4] = *b"CRFW";
/// Current format version.
pub const FORMAT_VERSION: u16 = 1;

/// Errors from parsing or verifying images.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// Input too short or structurally invalid.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadFormatVersion(u16),
    /// The payload hash in the header does not match the payload.
    PayloadHashMismatch,
    /// Signature verification failed.
    BadSignature,
    /// The stage name was not valid UTF-8.
    BadStageName,
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Truncated => write!(f, "image truncated"),
            ImageError::BadMagic => write!(f, "bad image magic"),
            ImageError::BadFormatVersion(v) => write!(f, "unsupported format version {v}"),
            ImageError::PayloadHashMismatch => write!(f, "payload hash mismatch"),
            ImageError::BadSignature => write!(f, "bad image signature"),
            ImageError::BadStageName => write!(f, "stage name is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ImageError {}

impl From<CryptoError> for ImageError {
    fn from(_: CryptoError) -> Self {
        ImageError::BadSignature
    }
}

/// Parsed image header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageHeader {
    /// Boot stage this image belongs to (e.g. `"bootloader"`, `"app"`).
    pub stage: String,
    /// Human-facing version number.
    pub version: u32,
    /// Monotone security version for anti-rollback.
    pub security_version: u64,
    /// SHA-256 of the payload.
    pub payload_hash: [u8; 32],
}

/// A parsed firmware image (header + payload + signature).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirmwareImage {
    /// Parsed header fields.
    pub header: ImageHeader,
    /// The executable payload.
    pub payload: Vec<u8>,
    /// RSA PKCS#1 v1.5 signature over header bytes + payload.
    pub signature: Vec<u8>,
}

impl FirmwareImage {
    /// Serializes header fields (the signed prefix, without payload).
    fn header_bytes(header: &ImageHeader, payload_len: u32) -> Vec<u8> {
        let stage_bytes = header.stage.as_bytes();
        let mut out = Vec::with_capacity(56 + stage_bytes.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(stage_bytes.len() as u16).to_le_bytes());
        out.extend_from_slice(stage_bytes);
        out.extend_from_slice(&header.version.to_le_bytes());
        out.extend_from_slice(&header.security_version.to_le_bytes());
        out.extend_from_slice(&payload_len.to_le_bytes());
        out.extend_from_slice(&header.payload_hash);
        out
    }

    /// Serializes the full image to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Self::header_bytes(&self.header, self.payload.len() as u32);
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&self.signature);
        out
    }

    /// Parses an image from bytes **without verifying the signature** —
    /// verification is the boot ROM's job, via [`FirmwareImage::verify`].
    ///
    /// # Errors
    ///
    /// Returns [`ImageError`] on structural problems, including a payload
    /// that does not match the header hash.
    pub fn from_bytes(data: &[u8], sig_len: usize) -> Result<Self, ImageError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], ImageError> {
            if *pos + n > data.len() {
                return Err(ImageError::Truncated);
            }
            let s = &data[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != MAGIC {
            return Err(ImageError::BadMagic);
        }
        let fv = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap());
        if fv != FORMAT_VERSION {
            return Err(ImageError::BadFormatVersion(fv));
        }
        let stage_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
        let stage = std::str::from_utf8(take(&mut pos, stage_len)?)
            .map_err(|_| ImageError::BadStageName)?
            .to_string();
        let version = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let security_version = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let payload_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let payload_hash: [u8; 32] = take(&mut pos, 32)?.try_into().unwrap();
        let payload = take(&mut pos, payload_len)?.to_vec();
        let signature = take(&mut pos, sig_len)?.to_vec();
        if Sha256::digest(&payload) != payload_hash {
            return Err(ImageError::PayloadHashMismatch);
        }
        Ok(FirmwareImage {
            header: ImageHeader {
                stage,
                version,
                security_version,
                payload_hash,
            },
            payload,
            signature,
        })
    }

    /// The bytes the signature covers.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Self::header_bytes(&self.header, self.payload.len() as u32);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Verifies the signature against `key`.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::BadSignature`] on mismatch.
    pub fn verify(&self, key: &RsaPublicKey) -> Result<(), ImageError> {
        key.verify(&self.signed_bytes(), &self.signature)?;
        Ok(())
    }

    /// The measurement extended into a PCR for this image: SHA-256 over the
    /// signed bytes (header + payload).
    pub fn measurement(&self) -> [u8; 32] {
        Sha256::digest(&self.signed_bytes())
    }
}

/// The vendor-side signing tool.
#[derive(Debug, Clone)]
pub struct ImageSigner {
    key: RsaPrivateKey,
}

impl ImageSigner {
    /// Creates a signer from a keypair.
    pub fn new(keypair: &RsaKeypair) -> Self {
        ImageSigner {
            key: keypair.private.clone(),
        }
    }

    /// Builds and signs an image.
    pub fn sign(
        &self,
        stage: &str,
        version: u32,
        security_version: u64,
        payload: &[u8],
    ) -> FirmwareImage {
        let header = ImageHeader {
            stage: stage.to_string(),
            version,
            security_version,
            payload_hash: Sha256::digest(payload),
        };
        let mut img = FirmwareImage {
            header,
            payload: payload.to_vec(),
            signature: Vec::new(),
        };
        img.signature = self.key.sign(&img.signed_bytes());
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cres_crypto::drbg::HmacDrbg;
    use cres_crypto::rsa::generate_keypair;

    fn keypair() -> RsaKeypair {
        let mut drbg = HmacDrbg::new(b"image-test-seed", b"");
        generate_keypair(512, &mut drbg).unwrap()
    }

    #[test]
    fn sign_serialize_parse_verify_round_trip() {
        let kp = keypair();
        let signer = ImageSigner::new(&kp);
        let img = signer.sign("app", 0x0102_0304, 7, b"payload bytes");
        let bytes = img.to_bytes();
        let parsed = FirmwareImage::from_bytes(&bytes, kp.public.modulus_len()).unwrap();
        assert_eq!(parsed, img);
        assert!(parsed.verify(&kp.public).is_ok());
        assert_eq!(parsed.header.stage, "app");
        assert_eq!(parsed.header.version, 0x0102_0304);
        assert_eq!(parsed.header.security_version, 7);
    }

    #[test]
    fn tampered_payload_fails_hash_check() {
        let kp = keypair();
        let img = ImageSigner::new(&kp).sign("app", 1, 1, b"original");
        let mut bytes = img.to_bytes();
        // payload starts after the fixed header + stage name
        let payload_off = bytes.len() - kp.public.modulus_len() - b"original".len();
        bytes[payload_off] ^= 0xFF;
        assert_eq!(
            FirmwareImage::from_bytes(&bytes, kp.public.modulus_len()),
            Err(ImageError::PayloadHashMismatch)
        );
    }

    #[test]
    fn tampered_header_fails_signature() {
        let kp = keypair();
        let img = ImageSigner::new(&kp).sign("app", 1, 1, b"pl");
        let mut evil = img.clone();
        evil.header.security_version = 99; // pretend to be newer
        assert_eq!(evil.verify(&kp.public), Err(ImageError::BadSignature));
    }

    #[test]
    fn wrong_key_fails() {
        let kp = keypair();
        let mut drbg = HmacDrbg::new(b"attacker-seed", b"");
        let attacker = generate_keypair(512, &mut drbg).unwrap();
        let img = ImageSigner::new(&attacker).sign("app", 1, 1, b"evil");
        assert_eq!(img.verify(&kp.public), Err(ImageError::BadSignature));
    }

    #[test]
    fn garbage_inputs_are_rejected_cleanly() {
        assert_eq!(
            FirmwareImage::from_bytes(b"", 64),
            Err(ImageError::Truncated)
        );
        assert_eq!(
            FirmwareImage::from_bytes(b"XXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXX", 64),
            Err(ImageError::BadMagic)
        );
        let mut bad_ver = Vec::new();
        bad_ver.extend_from_slice(&MAGIC);
        bad_ver.extend_from_slice(&99u16.to_le_bytes());
        bad_ver.extend_from_slice(&[0; 64]);
        assert_eq!(
            FirmwareImage::from_bytes(&bad_ver, 64),
            Err(ImageError::BadFormatVersion(99))
        );
    }

    #[test]
    fn measurement_differs_per_version() {
        let kp = keypair();
        let signer = ImageSigner::new(&kp);
        let a = signer.sign("app", 1, 1, b"same payload");
        let b = signer.sign("app", 2, 1, b"same payload");
        assert_ne!(a.measurement(), b.measurement());
    }

    #[test]
    fn empty_payload_is_valid() {
        let kp = keypair();
        let img = ImageSigner::new(&kp).sign("bl", 1, 0, b"");
        let parsed = FirmwareImage::from_bytes(&img.to_bytes(), kp.public.modulus_len()).unwrap();
        assert!(parsed.verify(&kp.public).is_ok());
        assert!(parsed.payload.is_empty());
    }
}
