//! The firmware update engine: A/B slots, rollback and golden recovery.
//!
//! RECOVER in Table I maps to "roll-back and roll-forward" plus redundancy.
//! This engine implements all three recovery paths experiment E5 compares:
//!
//! * **roll-forward** — stage a fixed image into the inactive slot, verify,
//!   switch;
//! * **roll-back** — switch back to the previous slot after a bad update
//!   (bounded boot-attempt counter triggers it automatically);
//! * **golden recovery** — reflash slot A from the factory image when both
//!   slots are unbootable.

use crate::image::{FirmwareImage, ImageError};
use crate::rom::{BootRom, VerifyError};
use crate::ArbCounters;
use cres_crypto::rsa::RsaPublicKey;
use std::fmt;

/// Firmware slot identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// Slot A.
    A,
    /// Slot B.
    B,
}

impl Slot {
    /// The other slot.
    pub fn other(self) -> Slot {
        match self {
            Slot::A => Slot::B,
            Slot::B => Slot::A,
        }
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Slot::A => write!(f, "A"),
            Slot::B => write!(f, "B"),
        }
    }
}

/// Raw image storage: two mutable slots plus the immutable golden image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotStore {
    a: Vec<u8>,
    b: Vec<u8>,
    golden: Vec<u8>,
    active: Slot,
}

impl SlotStore {
    /// Creates a store with the golden image flashed into slot A (factory
    /// state).
    pub fn new(golden: Vec<u8>) -> Self {
        SlotStore {
            a: golden.clone(),
            b: Vec::new(),
            golden,
            active: Slot::A,
        }
    }

    /// Raw bytes of a slot.
    pub fn slot(&self, slot: Slot) -> &[u8] {
        match slot {
            Slot::A => &self.a,
            Slot::B => &self.b,
        }
    }

    /// Overwrites a slot (flash write). Attack injectors use this for
    /// image-tamper and downgrade staging.
    pub fn write_slot(&mut self, slot: Slot, bytes: Vec<u8>) {
        match slot {
            Slot::A => self.a = bytes,
            Slot::B => self.b = bytes,
        }
    }

    /// The currently active slot.
    pub fn active(&self) -> Slot {
        self.active
    }

    /// Bytes of the active slot.
    pub fn active_bytes(&self) -> &[u8] {
        self.slot(self.active)
    }

    /// Switches the active slot marker.
    pub fn set_active(&mut self, slot: Slot) {
        self.active = slot;
    }

    /// The factory golden image.
    pub fn golden(&self) -> &[u8] {
        &self.golden
    }
}

/// Errors from update operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// The staged image failed structural parsing.
    Parse(ImageError),
    /// The staged image failed ROM verification.
    Verify(VerifyError),
    /// Roll-back requested but the other slot is empty.
    NoFallbackSlot,
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::Parse(e) => write!(f, "staged image unparsable: {e}"),
            UpdateError::Verify(e) => write!(f, "staged image rejected: {e}"),
            UpdateError::NoFallbackSlot => write!(f, "no fallback slot available"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// The update engine.
#[derive(Debug, Clone)]
pub struct UpdateEngine {
    sig_len: usize,
    max_boot_attempts: u32,
    failed_attempts: u32,
    updates_applied: u32,
    rollbacks: u32,
    golden_recoveries: u32,
}

impl UpdateEngine {
    /// Creates an engine for images signed with `sig_len`-byte signatures;
    /// `max_boot_attempts` failed boots trigger automatic rollback.
    pub fn new(sig_len: usize, max_boot_attempts: u32) -> Self {
        assert!(max_boot_attempts > 0);
        UpdateEngine {
            sig_len,
            max_boot_attempts,
            failed_attempts: 0,
            updates_applied: 0,
            rollbacks: 0,
            golden_recoveries: 0,
        }
    }

    /// Stages `image_bytes` into the inactive slot. Returns the slot used.
    pub fn stage(&self, store: &mut SlotStore, image_bytes: Vec<u8>) -> Slot {
        let target = store.active().other();
        store.write_slot(target, image_bytes);
        target
    }

    /// Verifies the staged (inactive-slot) image against the ROM and, on
    /// success, switches the active slot to it (roll-forward commit).
    ///
    /// # Errors
    ///
    /// Returns [`UpdateError`] and leaves the active slot unchanged.
    pub fn commit(
        &mut self,
        store: &mut SlotStore,
        rom: &BootRom,
        key: &RsaPublicKey,
        arb: &mut dyn ArbCounters,
    ) -> Result<FirmwareImage, UpdateError> {
        let target = store.active().other();
        let image = FirmwareImage::from_bytes(store.slot(target), self.sig_len)
            .map_err(UpdateError::Parse)?;
        rom.verify_stage(&image, key, arb)
            .map_err(UpdateError::Verify)?;
        store.set_active(target);
        self.failed_attempts = 0;
        self.updates_applied += 1;
        Ok(image)
    }

    /// Records a failed boot of the active slot. When the attempt budget is
    /// exhausted, rolls back to the other slot automatically and returns
    /// `true`.
    ///
    /// # Errors
    ///
    /// Returns [`UpdateError::NoFallbackSlot`] when rollback is required
    /// but the other slot is empty (golden recovery is then the only path).
    pub fn record_boot_failure(&mut self, store: &mut SlotStore) -> Result<bool, UpdateError> {
        self.failed_attempts += 1;
        if self.failed_attempts < self.max_boot_attempts {
            return Ok(false);
        }
        self.failed_attempts = 0;
        let fallback = store.active().other();
        if store.slot(fallback).is_empty() {
            return Err(UpdateError::NoFallbackSlot);
        }
        store.set_active(fallback);
        self.rollbacks += 1;
        Ok(true)
    }

    /// Records a successful boot (clears the failure counter).
    pub fn record_boot_success(&mut self) {
        self.failed_attempts = 0;
    }

    /// Reflashes slot A from the golden image and activates it — the
    /// last-resort recovery path.
    pub fn recover_golden(&mut self, store: &mut SlotStore) {
        let golden = store.golden().to_vec();
        store.write_slot(Slot::A, golden);
        store.set_active(Slot::A);
        self.failed_attempts = 0;
        self.golden_recoveries += 1;
    }

    /// Lifetime counters `(updates, rollbacks, golden recoveries)`.
    pub fn counters(&self) -> (u32, u32, u32) {
        (self.updates_applied, self.rollbacks, self.golden_recoveries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageSigner;
    use crate::rom::BootPolicy;
    use crate::MemArbCounters;
    use cres_crypto::drbg::HmacDrbg;
    use cres_crypto::rsa::{generate_keypair, RsaKeypair};

    struct Fixture {
        kp: RsaKeypair,
        rom: BootRom,
        store: SlotStore,
        engine: UpdateEngine,
        arb: MemArbCounters,
    }

    fn fixture() -> Fixture {
        let mut drbg = HmacDrbg::new(b"update-test", b"");
        let kp = generate_keypair(512, &mut drbg).unwrap();
        let signer = ImageSigner::new(&kp);
        let golden = signer.sign("app", 1, 1, b"golden fw").to_bytes();
        let sig_len = kp.public.modulus_len();
        Fixture {
            rom: BootRom::new(kp.public.fingerprint(), BootPolicy::default()),
            store: SlotStore::new(golden),
            engine: UpdateEngine::new(sig_len, 3),
            arb: MemArbCounters::new(),
            kp,
        }
    }

    #[test]
    fn factory_state_is_slot_a_golden() {
        let f = fixture();
        assert_eq!(f.store.active(), Slot::A);
        assert_eq!(f.store.active_bytes(), f.store.golden());
        assert!(f.store.slot(Slot::B).is_empty());
    }

    #[test]
    fn roll_forward_update() {
        let mut f = fixture();
        let v2 = ImageSigner::new(&f.kp)
            .sign("app", 2, 2, b"fw v2")
            .to_bytes();
        let staged = f.engine.stage(&mut f.store, v2);
        assert_eq!(staged, Slot::B);
        assert_eq!(f.store.active(), Slot::A, "not switched until commit");
        let img = f
            .engine
            .commit(&mut f.store, &f.rom, &f.kp.public, &mut f.arb)
            .unwrap();
        assert_eq!(img.header.version, 2);
        assert_eq!(f.store.active(), Slot::B);
        assert_eq!(f.engine.counters().0, 1);
    }

    #[test]
    fn bad_update_rejected_active_unchanged() {
        let mut f = fixture();
        f.engine.stage(&mut f.store, b"corrupted junk".to_vec());
        let err = f
            .engine
            .commit(&mut f.store, &f.rom, &f.kp.public, &mut f.arb)
            .unwrap_err();
        assert!(matches!(err, UpdateError::Parse(_)));
        assert_eq!(f.store.active(), Slot::A);
    }

    #[test]
    fn downgrade_update_rejected() {
        let mut f = fixture();
        let signer = ImageSigner::new(&f.kp);
        // go to sv=3 first
        f.engine
            .stage(&mut f.store, signer.sign("app", 3, 3, b"v3").to_bytes());
        f.engine
            .commit(&mut f.store, &f.rom, &f.kp.public, &mut f.arb)
            .unwrap();
        // stage genuinely-signed older image
        f.engine
            .stage(&mut f.store, signer.sign("app", 2, 2, b"v2").to_bytes());
        let err = f
            .engine
            .commit(&mut f.store, &f.rom, &f.kp.public, &mut f.arb)
            .unwrap_err();
        assert!(matches!(
            err,
            UpdateError::Verify(VerifyError::Rollback { .. })
        ));
    }

    #[test]
    fn auto_rollback_after_repeated_failures() {
        let mut f = fixture();
        let v2 = ImageSigner::new(&f.kp)
            .sign("app", 2, 2, b"v2-buggy")
            .to_bytes();
        f.engine.stage(&mut f.store, v2);
        f.engine
            .commit(&mut f.store, &f.rom, &f.kp.public, &mut f.arb)
            .unwrap();
        assert_eq!(f.store.active(), Slot::B);
        // two failures: still on B
        assert!(!f.engine.record_boot_failure(&mut f.store).unwrap());
        assert!(!f.engine.record_boot_failure(&mut f.store).unwrap());
        assert_eq!(f.store.active(), Slot::B);
        // third failure triggers rollback to A
        assert!(f.engine.record_boot_failure(&mut f.store).unwrap());
        assert_eq!(f.store.active(), Slot::A);
        assert_eq!(f.engine.counters().1, 1);
    }

    #[test]
    fn boot_success_resets_failure_budget() {
        let mut f = fixture();
        let v2 = ImageSigner::new(&f.kp).sign("app", 2, 2, b"v2").to_bytes();
        f.engine.stage(&mut f.store, v2);
        f.engine
            .commit(&mut f.store, &f.rom, &f.kp.public, &mut f.arb)
            .unwrap();
        f.engine.record_boot_failure(&mut f.store).unwrap();
        f.engine.record_boot_failure(&mut f.store).unwrap();
        f.engine.record_boot_success();
        // budget reset: two more failures do not roll back
        assert!(!f.engine.record_boot_failure(&mut f.store).unwrap());
        assert!(!f.engine.record_boot_failure(&mut f.store).unwrap());
        assert_eq!(f.store.active(), Slot::B);
    }

    #[test]
    fn rollback_without_fallback_errors() {
        let mut f = fixture();
        // active is A, B empty; exhaust budget
        f.engine.record_boot_failure(&mut f.store).unwrap();
        f.engine.record_boot_failure(&mut f.store).unwrap();
        let err = f.engine.record_boot_failure(&mut f.store).unwrap_err();
        assert_eq!(err, UpdateError::NoFallbackSlot);
    }

    #[test]
    fn golden_recovery_restores_factory_image() {
        let mut f = fixture();
        // corrupt both slots
        f.store.write_slot(Slot::A, b"ransomware".to_vec());
        f.store.write_slot(Slot::B, b"ransomware".to_vec());
        f.engine.recover_golden(&mut f.store);
        assert_eq!(f.store.active(), Slot::A);
        assert_eq!(f.store.active_bytes(), f.store.golden());
        assert_eq!(f.engine.counters().2, 1);
        // recovered image verifies
        let img =
            FirmwareImage::from_bytes(f.store.active_bytes(), f.kp.public.modulus_len()).unwrap();
        assert!(img.verify(&f.kp.public).is_ok());
    }

    #[test]
    fn slot_other_is_involutive() {
        assert_eq!(Slot::A.other(), Slot::B);
        assert_eq!(Slot::B.other().other(), Slot::B);
    }
}
