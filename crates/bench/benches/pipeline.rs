//! End-to-end pipeline cost: wall-clock time to simulate a fixed slice of
//! platform life under each profile (the "how expensive is resilience in
//! the simulator" number).

use cres_platform::{PlatformConfig, PlatformProfile, Scenario, ScenarioRunner};
use cres_sim::SimDuration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("platform_slice");
    g.sample_size(10);
    for profile in [
        PlatformProfile::CyberResilient,
        PlatformProfile::PassiveTrust,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{profile}")),
            &profile,
            |b, &profile| {
                b.iter(|| {
                    let config = PlatformConfig::new(profile, 3);
                    let report = ScenarioRunner::new(config)
                        .run(Scenario::quiet(SimDuration::cycles(100_000)));
                    black_box(report.critical_steps)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
