//! A4 — boot-time cost: verified + measured boot vs unverified load,
//! across image sizes.

use cres_boot::{BootChain, BootPolicy, BootRom, ImageSigner, MemArbCounters};
use cres_crypto::drbg::HmacDrbg;
use cres_crypto::rsa::generate_keypair;
use cres_crypto::sha2::Sha256;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_boot(c: &mut Criterion) {
    let mut g = c.benchmark_group("boot_verify");
    g.sample_size(20);
    let mut drbg = HmacDrbg::new(b"bench-boot", b"");
    let kp = generate_keypair(512, &mut drbg).unwrap();
    let signer = ImageSigner::new(&kp);
    let chain = BootChain::new(
        BootRom::new(kp.public.fingerprint(), BootPolicy::default()),
        kp.public.clone(),
        Sha256::digest(b"rom"),
    );
    for size in [16 * 1024usize, 256 * 1024, 1024 * 1024] {
        let payload = vec![0xA5u8; size];
        let image = signer.sign("app", 1, 1, &payload);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(
            BenchmarkId::new("verified_measured", size),
            &image,
            |b, image| {
                b.iter(|| {
                    let mut arb = MemArbCounters::new();
                    black_box(chain.boot(&[image], &mut arb).booted())
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("hash_only", size),
            &payload,
            |b, payload| b.iter(|| black_box(Sha256::digest(payload))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_boot);
criterion_main!(benches);
