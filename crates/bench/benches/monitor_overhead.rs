//! E8 companion — wall-clock cost of the monitor sampling pipeline itself:
//! one full sample-all pass over a busy SoC, per monitor-set size.

use cres_monitor::bus_mon::AccessWindow;
use cres_monitor::{BusPolicyMonitor, MemoryGuardMonitor, NetworkMonitor, ResourceMonitor};
use cres_sim::SimTime;
use cres_soc::addr::{Addr, MasterId};
use cres_soc::soc::SocBuilder;
use cres_soc::Soc;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn busy_soc() -> Soc {
    let mut soc = SocBuilder::with_standard_layout(1).bus_ring(16_384).build();
    // generate a burst of traffic for the taps
    for i in 0..2_000u64 {
        let addr = Addr(0x2000_0000 + (i % 0x1000));
        let _ = soc.bus.write(
            SimTime::at_cycle(i),
            MasterId::CPU0,
            addr,
            &[0u8; 8],
            &mut soc.mem,
        );
    }
    soc
}

fn monitor_set(soc: &Soc, n: usize) -> Vec<Box<dyn ResourceMonitor>> {
    let r = |name: &str| soc.mem.region_by_name(name).unwrap().id();
    let all: Vec<Box<dyn ResourceMonitor>> = vec![
        Box::new(BusPolicyMonitor::new(
            vec![AccessWindow {
                master: MasterId::CPU0,
                region: r("sram"),
                read: true,
                write: true,
                exec: true,
            }],
            true,
        )),
        Box::new(MemoryGuardMonitor::new(
            vec![r("ssm_private")],
            vec![r("flash_a")],
        )),
        Box::new(NetworkMonitor::new(64, 4096)),
    ];
    all.into_iter().take(n).collect()
}

fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("monitor_sample_pass");
    for n in [1usize, 2, 3] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || (busy_soc(), monitor_set(&busy_soc(), n)),
                |(mut soc, mut monitors)| {
                    let mut events = Vec::new();
                    for m in &mut monitors {
                        events.extend(m.sample(&mut soc, SimTime::at_cycle(3_000)));
                    }
                    black_box(events)
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
