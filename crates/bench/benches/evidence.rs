//! A2 — evidence-chain cost: append throughput, full-chain verification and
//! Merkle sealing across chain lengths.

use cres_sim::SimTime;
use cres_ssm::EvidenceStore;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn store_with(n: u64) -> EvidenceStore {
    let mut s = EvidenceStore::new(b"bench-key");
    for i in 0..n {
        s.append(
            SimTime::at_cycle(i),
            "bus-policy",
            "out-of-policy R by CPU1 at 0x50000000",
        );
    }
    s
}

fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("evidence_append");
    for prior in [0u64, 1_000, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(prior), &prior, |b, &prior| {
            let mut s = store_with(prior);
            let mut i = prior;
            b.iter(|| {
                i += 1;
                s.append(SimTime::at_cycle(i), "bench", black_box("payload line"))
            });
        });
    }
    g.finish();
}

fn bench_verify(c: &mut Criterion) {
    let mut g = c.benchmark_group("evidence_verify");
    for len in [100u64, 1_000, 10_000] {
        let s = store_with(len);
        g.bench_with_input(BenchmarkId::from_parameter(len), &s, |b, s| {
            b.iter(|| s.verify().unwrap())
        });
    }
    g.finish();
}

fn bench_seal(c: &mut Criterion) {
    let mut g = c.benchmark_group("evidence_seal");
    g.sample_size(20);
    for len in [100u64, 1_000, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            let mut s = store_with(len);
            b.iter(|| black_box(s.seal(SimTime::at_cycle(len))));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_append, bench_verify, bench_seal);
criterion_main!(benches);
