//! A3 — crypto substrate throughput: SHA-256/512, HMAC, AES-CTR, AEAD,
//! RSA sign/verify and Merkle proofs across input sizes.

use cres_crypto::aead::Aead;
use cres_crypto::aes::Aes;
use cres_crypto::drbg::HmacDrbg;
use cres_crypto::hmac::HmacSha256;
use cres_crypto::merkle::MerkleTree;
use cres_crypto::modes::ctr_xor;
use cres_crypto::rsa::generate_keypair;
use cres_crypto::sha2::{Sha256, Sha512};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const SIZES: [usize; 4] = [64, 1024, 16 * 1024, 64 * 1024];

fn data(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i * 31 % 251) as u8).collect()
}

fn bench_hashes(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    for size in SIZES {
        let input = data(size);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("sha256", size), &input, |b, input| {
            b.iter(|| Sha256::digest(black_box(input)))
        });
        g.bench_with_input(BenchmarkId::new("sha512", size), &input, |b, input| {
            b.iter(|| Sha512::digest(black_box(input)))
        });
        g.bench_with_input(BenchmarkId::new("hmac_sha256", size), &input, |b, input| {
            b.iter(|| HmacSha256::mac(b"key", black_box(input)))
        });
    }
    g.finish();
}

fn bench_ciphers(c: &mut Criterion) {
    let mut g = c.benchmark_group("cipher");
    let aes = Aes::new(&[7u8; 16]).unwrap();
    let aead = Aead::new(b"bench key");
    for size in SIZES {
        let input = data(size);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("aes_ctr", size), &input, |b, input| {
            b.iter(|| {
                let mut buf = input.clone();
                ctr_xor(&aes, &[1u8; 12], &mut buf);
                black_box(buf)
            })
        });
        g.bench_with_input(BenchmarkId::new("aead_seal", size), &input, |b, input| {
            b.iter(|| aead.seal(&[1u8; 12], b"", black_box(input)))
        });
    }
    g.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut g = c.benchmark_group("rsa");
    g.sample_size(10);
    let mut drbg = HmacDrbg::new(b"bench", b"rsa");
    let kp = generate_keypair(512, &mut drbg).unwrap();
    let msg = data(1024);
    let sig = kp.private.sign(&msg);
    g.bench_function("sign_512", |b| b.iter(|| kp.private.sign(black_box(&msg))));
    g.bench_function("verify_512", |b| {
        b.iter(|| kp.public.verify(black_box(&msg), black_box(&sig)).unwrap())
    });
    g.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle");
    for leaves in [16usize, 256, 4096] {
        let items: Vec<Vec<u8>> = (0..leaves)
            .map(|i| format!("record-{i}").into_bytes())
            .collect();
        g.bench_with_input(BenchmarkId::new("build", leaves), &items, |b, items| {
            b.iter(|| MerkleTree::build(items.iter().map(|v| v.as_slice())))
        });
        let tree = MerkleTree::build(items.iter().map(|v| v.as_slice()));
        g.bench_with_input(BenchmarkId::new("prove", leaves), &tree, |b, tree| {
            b.iter(|| tree.prove(black_box(leaves / 2)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_hashes,
    bench_ciphers,
    bench_rsa,
    bench_merkle
);
criterion_main!(benches);
