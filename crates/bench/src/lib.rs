#![warn(missing_docs)]

//! Experiment harness support: shared formatting and sweep helpers for the
//! `e*`/`a*` experiment binaries and criterion benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the
//! paper reproduction plan (see `DESIGN.md` §3 and `EXPERIMENTS.md`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `e1_figure1` | Figure 1 — framework functions/principles/activities |
//! | `e2_table1` | Table I — requirement ↔ mechanism mapping |
//! | `e3_detection` | detection rate & latency per attack class |
//! | `e4_response` | service continuity: active response vs reboot-only |
//! | `e5_recovery` | recovery paths: reboot vs rollback vs golden |
//! | `e6_evidence` | evidence continuity once trust is broken |
//! | `e7_isolation` | isolated SSM vs shared-resource TEE |
//! | `e8_overhead` | monitoring overhead sweep |
//! | `e9_degradation` | graceful degradation under progressive compromise |
//! | `e10_downgrade` | secure-boot downgrade vs anti-rollback |
//! | `e11_selfheal` | self-resilience: detection under pipeline faults |
//! | `e13_fuzz` | generative attack fuzzing against the detection fleet |
//! | `e14_frontier` | availability-vs-detection frontier: tiers vs reboot |
//! | `e15_fleet` | fleet-scale sweep: sharded devices, streaming fleet SOC |
//! | `e16_observe` | flight-recorder export plane: byte-identity + wall budget |
//! | `a1_correlation` | ablation: correlation engine on/off |
//! | `obs_lint` | export-plane artifact gate (schema + worker-count diff) |
//!
//! Two environment knobs exist for CI:
//!
//! * `CRES_FAST=1` shrinks every cycle budget (see [`budget`]) so the whole
//!   suite finishes in seconds at reduced fidelity;
//! * `CRES_REPORT_DIR=<dir>` makes every campaign-backed binary write its
//!   per-run [`RunReport`]s as JSON (see [`emit_reports`]) so two runs can
//!   be `diff`ed to pin cross-run determinism.

pub mod scenarios;

use cres_platform::campaign::CampaignSummary;
use cres_platform::RunReport;
use std::fmt::Display;

/// True when `CRES_FAST` is set to anything but `""` or `"0"` — the CI
/// smoke mode that trades fidelity for wall time.
pub fn fast_mode() -> bool {
    std::env::var("CRES_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Scales an experiment's cycle budget for the active mode: `full` normally,
/// a quarter (floored at 300k cycles so the standard 200k-cycle attack
/// start still fires) under [`fast_mode`]. Attack waves scheduled beyond
/// the reduced budget are simply truncated — fast mode is a determinism
/// smoke, not a fidelity run.
pub fn budget(full: u64) -> u64 {
    if fast_mode() {
        (full / 4).clamp(300_000.min(full), full)
    } else {
        full
    }
}

/// Writes labelled run reports as `<CRES_REPORT_DIR>/<id>.json` — one
/// `{"label":…,"report":…}` object per line, in submission order — and
/// returns the path written. A no-op returning `None` when
/// `CRES_REPORT_DIR` is unset. Only simulation-deterministic fields go in
/// (never wall-clock timings), so two runs of the same binary must produce
/// byte-identical files; CI diffs them.
pub fn emit_reports<'a>(
    id: &str,
    reports: impl IntoIterator<Item = (&'a str, &'a RunReport)>,
) -> Option<std::path::PathBuf> {
    let dir = std::env::var_os("CRES_REPORT_DIR")?;
    let mut out = String::new();
    for (label, report) in reports {
        out.push_str("{\"label\":\"");
        for c in label.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push_str("\",\"report\":");
        out.push_str(&report.to_json());
        out.push_str("}\n");
    }
    let path = std::path::Path::new(&dir).join(format!("{id}.json"));
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    Some(path)
}

/// [`emit_reports`] for a whole campaign, labels taken from the jobs.
pub fn emit_campaign_reports(id: &str, summary: &CampaignSummary) -> Option<std::path::PathBuf> {
    emit_reports(
        id,
        summary
            .results
            .iter()
            .map(|r| (r.label.as_str(), &r.report)),
    )
}

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("==================================================================");
    println!("{id}: {title}");
    println!("==================================================================");
}

/// Prints a table row of fixed-width cells.
pub fn row(cells: &[&dyn Display], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        line.push_str(&format!("{:<width$}  ", cell.to_string(), width = width));
    }
    println!("{}", line.trim_end());
}

/// Prints a rule sized to the given widths.
pub fn rule(widths: &[usize]) {
    let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
    println!("{}", "-".repeat(total));
}

/// Formats an optional cycle count.
pub fn opt_cycles(v: Option<u64>) -> String {
    v.map_or("—".to_string(), |c| format!("{c}"))
}

/// Formats a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(opt_cycles(None), "—");
        assert_eq!(opt_cycles(Some(42)), "42");
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(1.0), "100.0%");
    }
}
