#![warn(missing_docs)]

//! Experiment harness support: shared formatting and sweep helpers for the
//! `e*`/`a*` experiment binaries and criterion benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the
//! paper reproduction plan (see `DESIGN.md` §3 and `EXPERIMENTS.md`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `e1_figure1` | Figure 1 — framework functions/principles/activities |
//! | `e2_table1` | Table I — requirement ↔ mechanism mapping |
//! | `e3_detection` | detection rate & latency per attack class |
//! | `e4_response` | service continuity: active response vs reboot-only |
//! | `e5_recovery` | recovery paths: reboot vs rollback vs golden |
//! | `e6_evidence` | evidence continuity once trust is broken |
//! | `e7_isolation` | isolated SSM vs shared-resource TEE |
//! | `e8_overhead` | monitoring overhead sweep |
//! | `e9_degradation` | graceful degradation under progressive compromise |
//! | `e10_downgrade` | secure-boot downgrade vs anti-rollback |
//! | `a1_correlation` | ablation: correlation engine on/off |

pub mod scenarios;

use std::fmt::Display;

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("==================================================================");
    println!("{id}: {title}");
    println!("==================================================================");
}

/// Prints a table row of fixed-width cells.
pub fn row(cells: &[&dyn Display], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        line.push_str(&format!("{:<width$}  ", cell.to_string(), width = width));
    }
    println!("{}", line.trim_end());
}

/// Prints a rule sized to the given widths.
pub fn rule(widths: &[usize]) {
    let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
    println!("{}", "-".repeat(total));
}

/// Formats an optional cycle count.
pub fn opt_cycles(v: Option<u64>) -> String {
    v.map_or("—".to_string(), |c| format!("{c}"))
}

/// Formats a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(opt_cycles(None), "—");
        assert_eq!(opt_cycles(Some(42)), "42");
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(1.0), "100.0%");
    }
}
