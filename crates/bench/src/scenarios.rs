//! The standard attack gauntlet shared by E3/E4/E6 and the examples.
//!
//! Construction delegates to [`cres_attacks::catalog`], the single
//! name → injector table; this module only names the standard runtime
//! subset and offers the historical panicking wrapper.

use cres_attacks::catalog;
use cres_attacks::{AttackInjector, UnknownAttack};

/// Names of the standard runtime attack gauntlet (downgrade is boot-time
/// and lives in E10).
pub const GAUNTLET: [&str; 11] = [
    "code-injection",
    "memory-probe",
    "firmware-tamper",
    "dma-exfil",
    "debug-port",
    "network-flood",
    "exploit-traffic",
    "exfiltration",
    "sensor-spoof",
    "fault-injection",
    "log-wipe",
];

/// Builds a fresh injector for a catalog name, surfacing unknown names as
/// a structured error. This is the builder shape `Campaign::new` expects.
pub fn try_build(name: &str) -> Result<Box<dyn AttackInjector>, UnknownAttack> {
    catalog::try_build(name)
}

/// Builds a fresh injector for a gauntlet entry.
///
/// # Panics
///
/// Panics for unknown names; use [`try_build`] where the name is untrusted.
pub fn build(name: &str) -> Box<dyn AttackInjector> {
    catalog::try_build(name).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_gauntlet_entry_builds() {
        for name in GAUNTLET {
            let injector = build(name);
            assert_eq!(injector.name(), name);
            assert!(injector.steps() > 0);
        }
        // plus the extra entries outside the constant
        assert_eq!(build("syscall-anomaly").name(), "syscall-anomaly");
        assert!(GAUNTLET.iter().all(|n| catalog::is_known(n)));
    }

    #[test]
    fn unknown_name_is_a_structured_error() {
        let err = match try_build("nonexistent") {
            Ok(_) => panic!("must not resolve"),
            Err(e) => e,
        };
        assert_eq!(err.name, "nonexistent");
    }

    #[test]
    #[should_panic(expected = "unknown attack")]
    fn unknown_name_panics_in_legacy_builder() {
        build("nonexistent");
    }
}
