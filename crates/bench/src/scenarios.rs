//! The standard attack gauntlet shared by E3/E4/E6 and the examples.

use cres_attacks::{
    AttackInjector, CodeInjectionAttack, DebugPortAttack, DmaExfilAttack, ExfilAttack,
    FaultInjectionAttack, FirmwareTamperAttack, LogWipeAttack, MalformedTrafficAttack,
    MemoryProbeAttack, NetworkFloodAttack, SensorSpoofAttack, SyscallAnomalyAttack,
    SystemHangAttack,
};
use cres_soc::addr::MasterId;
use cres_soc::periph::{EnvTamper, SensorSpoof};
use cres_soc::soc::layout;
use cres_soc::task::{BlockId, Syscall, TaskId};

/// Names of the standard runtime attack gauntlet (downgrade is boot-time
/// and lives in E10).
pub const GAUNTLET: [&str; 11] = [
    "code-injection",
    "memory-probe",
    "firmware-tamper",
    "dma-exfil",
    "debug-port",
    "network-flood",
    "exploit-traffic",
    "exfiltration",
    "sensor-spoof",
    "fault-injection",
    "log-wipe",
];

/// Builds a fresh injector for a gauntlet entry.
///
/// # Panics
///
/// Panics for unknown names.
pub fn build(name: &str) -> Box<dyn AttackInjector> {
    match name {
        // hijacking to bb0 twice guarantees at least one illegal self-edge
        "code-injection" => Box::new(CodeInjectionAttack::new(TaskId(1), BlockId(0), 3)),
        "memory-probe" => Box::new(MemoryProbeAttack::new(
            MasterId::CPU1,
            vec![
                layout::SSM_PRIVATE.0,
                layout::TEE_SECURE.0,
                layout::SSM_PRIVATE.0.offset(0x100),
                layout::TEE_SECURE.0.offset(0x100),
            ],
        )),
        "firmware-tamper" => Box::new(FirmwareTamperAttack::new(
            MasterId::CPU0,
            layout::FLASH_A.0.offset(0x800),
        )),
        "dma-exfil" => Box::new(DmaExfilAttack::new(
            layout::TEE_SECURE.0,
            layout::SRAM.0.offset(0x3000),
            64,
        )),
        "debug-port" => Box::new(DebugPortAttack::new(vec![
            layout::SRAM.0,
            layout::TEE_SECURE.0,
            layout::SSM_PRIVATE.0,
        ])),
        "network-flood" => Box::new(NetworkFloodAttack::new(300, 8)),
        "exploit-traffic" => Box::new(MalformedTrafficAttack::new(5, 4)),
        "exfiltration" => Box::new(ExfilAttack::new(4_096, 6)),
        "sensor-spoof" => Box::new(SensorSpoofAttack::new(0, SensorSpoof::Fixed(61.5))),
        "fault-injection" => Box::new(FaultInjectionAttack::new(EnvTamper::VoltageGlitch(1.1))),
        "log-wipe" => Box::new(LogWipeAttack::new(MasterId::CPU0)),
        "syscall-anomaly" => Box::new(SyscallAnomalyAttack::new(
            TaskId(1),
            vec![Syscall::PrivEscalate, Syscall::FirmwareWrite],
            3,
        )),
        "system-hang" => Box::new(SystemHangAttack::new()),
        other => panic!("unknown gauntlet attack {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_gauntlet_entry_builds() {
        for name in GAUNTLET {
            let injector = build(name);
            assert_eq!(injector.name(), name);
            assert!(injector.steps() > 0);
        }
        // plus the extra entry outside the constant
        assert_eq!(build("syscall-anomaly").name(), "syscall-anomaly");
    }

    #[test]
    #[should_panic(expected = "unknown gauntlet attack")]
    fn unknown_name_panics() {
        build("nonexistent");
    }
}
