//! E9 — graceful degradation under progressive compromise (§V-3): as more
//! resources are attacked, the CRES platform sheds non-critical load and
//! keeps the protection relay alive; the passive baseline either misses
//! everything (attacker operates freely) or, when it does react, takes the
//! whole system down.
//!
//! The escalation ladder is submitted to the campaign engine: every
//! `(k, profile)` rung is an independent run, and the k = 0 rungs double
//! as the quiet relay-throughput baselines.
//!
//! Run: `cargo run --release -p cres-bench --bin e9_degradation`

use cres_bench::scenarios::try_build;
use cres_platform::campaign::{default_jobs, Campaign, ScenarioSpec};
use cres_platform::{PlatformConfig, PlatformProfile};
use cres_sim::{SimDuration, SimTime};

const DURATION: u64 = 1_200_000;

/// The progressive campaign, in escalation order.
const CAMPAIGN: [&str; 5] = [
    "network-flood",
    "exploit-traffic",
    "sensor-spoof",
    "memory-probe",
    "code-injection",
];

fn spec(k: usize) -> ScenarioSpec {
    // The escalation ladder compresses proportionally when `CRES_FAST`
    // shrinks the budget, so every rung still fires.
    let duration = cres_bench::budget(DURATION);
    let mut s = ScenarioSpec::quiet(SimDuration::cycles(duration));
    for (i, name) in CAMPAIGN.iter().take(k).enumerate() {
        s = s.attack(
            *name,
            SimTime::at_cycle((200_000 + 150_000 * i as u64) * duration / DURATION),
            SimDuration::cycles(5_000),
        );
    }
    s
}

fn main() {
    cres_bench::banner(
        "E9",
        "Graceful degradation: critical-service delivery under progressive compromise",
    );

    let mut campaign = Campaign::new(try_build);
    for k in 0..=CAMPAIGN.len() {
        for profile in [
            PlatformProfile::CyberResilient,
            PlatformProfile::PassiveTrust,
        ] {
            campaign.submit(
                format!("k={k}/{profile}"),
                PlatformConfig::new(profile, 31),
                spec(k),
            );
        }
    }
    let summary = campaign
        .run_parallel(default_jobs())
        .expect("gauntlet names resolve");
    cres_bench::emit_campaign_reports("e9", &summary);
    // results are (k, profile)-ordered pairs; rung 0 is the quiet baseline
    let pair = |k: usize| {
        (
            &summary.results[2 * k].report,
            &summary.results[2 * k + 1].report,
        )
    };
    let (quiet_cres, quiet_passive) = pair(0);

    let widths = [12, 16, 16, 14, 14, 16];
    cres_bench::row(
        &[
            &"# attacks",
            &"CRES relay",
            &"CRES detected",
            &"CRES wins",
            &"passive relay",
            &"passive wins",
        ],
        &widths,
    );
    cres_bench::rule(&widths);

    for k in 0..=CAMPAIGN.len() {
        let (cres, passive) = pair(k);
        cres_bench::row(
            &[
                &k,
                &cres_bench::pct(
                    cres.critical_steps as f64 / quiet_cres.critical_steps.max(1) as f64,
                ),
                &format!(
                    "{}/{k}",
                    cres.attacks.iter().filter(|a| a.detected()).count()
                ),
                &cres.attacker_wins,
                &cres_bench::pct(
                    passive.critical_steps as f64 / quiet_passive.critical_steps.max(1) as f64,
                ),
                &passive.attacker_wins,
            ],
            &widths,
        );
    }
    cres_bench::rule(&widths);
    println!(
        "\nexpected shape: CRES relay delivery stays ≈100% at every k (load is\n\
         shed from telemetry/logging, never the relay) while attacker wins\n\
         stay bounded; the passive platform's relay also keeps stepping — but\n\
         every attack step succeeds unchecked, which is the paper's point:\n\
         availability without detection is not resilience."
    );
    summary.print_aggregate("e9");
}
