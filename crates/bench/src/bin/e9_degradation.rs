//! E9 — graceful degradation under progressive compromise (§V-3): as more
//! resources are attacked, the CRES platform sheds non-critical load and
//! keeps the protection relay alive; the passive baseline either misses
//! everything (attacker operates freely) or, when it does react, takes the
//! whole system down.
//!
//! Run: `cargo run --release -p cres-bench --bin e9_degradation`

use cres_bench::scenarios::build;
use cres_platform::{PlatformConfig, PlatformProfile, Scenario, ScenarioRunner};
use cres_sim::{SimDuration, SimTime};

const DURATION: u64 = 1_200_000;

/// The progressive campaign, in escalation order.
const CAMPAIGN: [&str; 5] = [
    "network-flood",
    "exploit-traffic",
    "sensor-spoof",
    "memory-probe",
    "code-injection",
];

fn scenario(k: usize) -> Scenario {
    let mut s = Scenario::quiet(SimDuration::cycles(DURATION));
    for (i, name) in CAMPAIGN.iter().take(k).enumerate() {
        s = s.attack(
            SimTime::at_cycle(200_000 + 150_000 * i as u64),
            SimDuration::cycles(5_000),
            build(name),
        );
    }
    s
}

fn main() {
    cres_bench::banner(
        "E9",
        "Graceful degradation: critical-service delivery under progressive compromise",
    );
    let widths = [12, 16, 16, 14, 14, 16];
    cres_bench::row(
        &[
            &"# attacks",
            &"CRES relay",
            &"CRES detected",
            &"CRES wins",
            &"passive relay",
            &"passive wins",
        ],
        &widths,
    );
    cres_bench::rule(&widths);

    let quiet_cres = ScenarioRunner::new(PlatformConfig::new(PlatformProfile::CyberResilient, 31))
        .run(scenario(0));
    let quiet_passive = ScenarioRunner::new(PlatformConfig::new(PlatformProfile::PassiveTrust, 31))
        .run(scenario(0));

    for k in 0..=CAMPAIGN.len() {
        let cres = ScenarioRunner::new(PlatformConfig::new(PlatformProfile::CyberResilient, 31))
            .run(scenario(k));
        let passive = ScenarioRunner::new(PlatformConfig::new(PlatformProfile::PassiveTrust, 31))
            .run(scenario(k));
        cres_bench::row(
            &[
                &k,
                &cres_bench::pct(
                    cres.critical_steps as f64 / quiet_cres.critical_steps.max(1) as f64,
                ),
                &format!("{}/{k}", cres.attacks.iter().filter(|a| a.detected()).count()),
                &cres.attacker_wins,
                &cres_bench::pct(
                    passive.critical_steps as f64 / quiet_passive.critical_steps.max(1) as f64,
                ),
                &passive.attacker_wins,
            ],
            &widths,
        );
    }
    cres_bench::rule(&widths);
    println!(
        "\nexpected shape: CRES relay delivery stays ≈100% at every k (load is\n\
         shed from telemetry/logging, never the relay) while attacker wins\n\
         stay bounded; the passive platform's relay also keeps stepping — but\n\
         every attack step succeeds unchecked, which is the paper's point:\n\
         availability without detection is not resilience."
    );
}
