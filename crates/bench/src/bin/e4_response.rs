//! E4 — service continuity under attack: active response vs reboot-only
//! vs no response (claim C3: "a compromised resource can be physically
//! isolated … gracefully degrade the system functionality while maintaining
//! critical services").
//!
//! All three rows run the **same monitors** (full CRES detection); only the
//! planner differs, isolating the response variable.
//!
//! Run: `cargo run --release -p cres-bench --bin e4_response`

use cres_bench::scenarios::build;
use cres_platform::{PlatformConfig, PlatformProfile, Scenario, ScenarioRunner};
use cres_sim::{SimDuration, SimTime};
use cres_ssm::PlannerMode;

const DURATION: u64 = 1_500_000;
const SEEDS: [u64; 3] = [5, 77, 3003];

fn scenario() -> Scenario {
    // A sustained multi-vector campaign: flood, exploit traffic, sensor
    // spoof and repeated code injection.
    Scenario::quiet(SimDuration::cycles(DURATION))
        .attack(
            SimTime::at_cycle(200_000),
            SimDuration::cycles(3_000),
            build("network-flood"),
        )
        .attack(
            SimTime::at_cycle(400_000),
            SimDuration::cycles(10_000),
            build("exploit-traffic"),
        )
        .attack(
            SimTime::at_cycle(600_000),
            SimDuration::cycles(1_000),
            build("sensor-spoof"),
        )
        .attack(
            SimTime::at_cycle(800_000),
            SimDuration::cycles(20_000),
            build("code-injection"),
        )
}

fn main() {
    cres_bench::banner(
        "E4",
        "Service continuity under multi-vector attack: response policy comparison",
    );
    let widths = [22, 12, 14, 10, 12, 12];
    // "relay steps" = critical-task throughput vs an attack-free run of the
    // same policy; "healthy time" = fraction of the run the health state
    // machine reported Healthy/Degraded (it stays Compromised while attack
    // waves continue, regardless of service delivery).
    cres_bench::row(
        &[&"response policy", &"relay steps", &"healthy time", &"reboots", &"wins", &"detected"],
        &widths,
    );
    cres_bench::rule(&widths);

    // Per-seed quiet baselines for the relay-throughput denominator.
    let mut rows: Vec<(String, f64, f64, f64, f64, f64)> = Vec::new();
    for (label, planner) in [
        ("Active (CRES)", PlannerMode::Active),
        ("Reboot-only (passive)", PlannerMode::PassiveRebootOnly),
        ("No response", PlannerMode::None),
    ] {
        let mut avail = 0.0;
        let mut ratio = 0.0;
        let mut reboots = 0.0;
        let mut wins = 0.0;
        let mut detected = 0.0;
        for seed in SEEDS {
            let mut config = PlatformConfig::new(PlatformProfile::CyberResilient, seed);
            config.planner_override = Some(planner);
            let quiet = ScenarioRunner::new(config)
                .run(Scenario::quiet(SimDuration::cycles(DURATION)));
            let report = ScenarioRunner::new(config).run(scenario());
            avail += report.availability;
            ratio += report.critical_steps as f64 / quiet.critical_steps.max(1) as f64;
            reboots += f64::from(report.reboots);
            wins += f64::from(report.attacker_wins);
            detected += report.detection_rate();
        }
        let n = SEEDS.len() as f64;
        rows.push((
            label.to_string(),
            avail / n,
            ratio / n,
            reboots / n,
            wins / n,
            detected / n,
        ));
    }
    for (label, avail, ratio, reboots, wins, detected) in &rows {
        cres_bench::row(
            &[
                label,
                &cres_bench::pct(*ratio),
                &cres_bench::pct(*avail),
                &format!("{reboots:.1}"),
                &format!("{wins:.1}"),
                &cres_bench::pct(*detected),
            ],
            &widths,
        );
    }
    cres_bench::rule(&widths);
    println!(
        "\nexpected shape: identical detection across rows; active response\n\
         preserves relay throughput (isolation/rate-limit instead of global\n\
         reboots), reboot-only pays the reboot duty cycle in relay steps, and\n\
         no-response lets attacker wins run unchecked."
    );
}
