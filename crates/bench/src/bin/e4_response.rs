//! E4 — service continuity under attack: active response vs reboot-only
//! vs no response (claim C3: "a compromised resource can be physically
//! isolated … gracefully degrade the system functionality while maintaining
//! critical services").
//!
//! All three rows run the **same monitors** (full CRES detection); only the
//! planner differs, isolating the response variable. The quiet baselines
//! and attack runs for every planner/seed cell are independent, so the
//! whole grid goes through the campaign engine (`CRES_JOBS` workers).
//!
//! Run: `cargo run --release -p cres-bench --bin e4_response`

use cres_bench::scenarios::try_build;
use cres_platform::campaign::{default_jobs, Campaign, ScenarioSpec};
use cres_platform::{PlatformConfig, PlatformProfile};
use cres_sim::{SimDuration, SimTime};
use cres_ssm::PlannerMode;

const FULL_DURATION: u64 = 1_500_000;
const SEEDS: [u64; 3] = [5, 77, 3003];

/// Active cycle budget (`CRES_FAST` shrinks it; attack waves compress
/// proportionally so every vector still fires).
fn duration() -> u64 {
    cres_bench::budget(FULL_DURATION)
}

fn attack_spec() -> ScenarioSpec {
    // A sustained multi-vector campaign: flood, exploit traffic, sensor
    // spoof and repeated code injection.
    let at = |full: u64| SimTime::at_cycle(full * duration() / FULL_DURATION);
    ScenarioSpec::quiet(SimDuration::cycles(duration()))
        .attack("network-flood", at(200_000), SimDuration::cycles(3_000))
        .attack("exploit-traffic", at(400_000), SimDuration::cycles(10_000))
        .attack("sensor-spoof", at(600_000), SimDuration::cycles(1_000))
        .attack("code-injection", at(800_000), SimDuration::cycles(20_000))
}

const PLANNERS: [(&str, PlannerMode); 3] = [
    ("Active (CRES)", PlannerMode::Active),
    ("Reboot-only (passive)", PlannerMode::PassiveRebootOnly),
    ("No response", PlannerMode::None),
];

fn main() {
    cres_bench::banner(
        "E4",
        "Service continuity under multi-vector attack: response policy comparison",
    );

    // Submission order: (planner, seed, quiet-then-attack). The quiet run
    // supplies the relay-throughput denominator for its attack twin.
    let mut campaign = Campaign::new(try_build);
    for (label, planner) in PLANNERS {
        for seed in SEEDS {
            let mut config = PlatformConfig::new(PlatformProfile::CyberResilient, seed);
            config.planner_override = Some(planner);
            campaign.submit(
                format!("{label}/quiet/{seed}"),
                config,
                ScenarioSpec::quiet(SimDuration::cycles(duration())),
            );
            campaign.submit(format!("{label}/attack/{seed}"), config, attack_spec());
        }
    }
    let summary = campaign
        .run_parallel(default_jobs())
        .expect("gauntlet names resolve");
    cres_bench::emit_campaign_reports("e4", &summary);

    let widths = [22, 12, 14, 10, 12, 12];
    // "relay steps" = critical-task throughput vs an attack-free run of the
    // same policy; "healthy time" = fraction of the run the health state
    // machine reported Healthy/Degraded (it stays Compromised while attack
    // waves continue, regardless of service delivery).
    cres_bench::row(
        &[
            &"response policy",
            &"relay steps",
            &"healthy time",
            &"reboots",
            &"wins",
            &"detected",
        ],
        &widths,
    );
    cres_bench::rule(&widths);

    let mut results = summary.results.iter();
    for (label, _planner) in PLANNERS {
        let mut avail = 0.0;
        let mut ratio = 0.0;
        let mut reboots = 0.0;
        let mut wins = 0.0;
        let mut detected = 0.0;
        for _seed in SEEDS {
            let quiet = &results.next().expect("quiet run per cell").report;
            let report = &results.next().expect("attack run per cell").report;
            avail += report.availability;
            ratio += report.critical_steps as f64 / quiet.critical_steps.max(1) as f64;
            reboots += f64::from(report.reboots);
            wins += f64::from(report.attacker_wins);
            detected += report.detection_rate();
        }
        let n = SEEDS.len() as f64;
        cres_bench::row(
            &[
                &label,
                &cres_bench::pct(ratio / n),
                &cres_bench::pct(avail / n),
                &format!("{:.1}", reboots / n),
                &format!("{:.1}", wins / n),
                &cres_bench::pct(detected / n),
            ],
            &widths,
        );
    }
    cres_bench::rule(&widths);
    println!(
        "\nexpected shape: identical detection across rows; active response\n\
         preserves relay throughput (isolation/rate-limit instead of global\n\
         reboots), reboot-only pays the reboot duty cycle in relay steps, and\n\
         no-response lets attacker wins run unchecked."
    );
    if let Some(telemetry) = summary.merged_telemetry() {
        println!("\n[e4] pipeline telemetry: {}", telemetry.summary_line());
        print!("{}", telemetry.stage_table());
    }
    summary.print_aggregate("e4");
}
