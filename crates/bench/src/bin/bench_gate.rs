//! `bench_gate` — the hard CI bench regression gate.
//!
//! Compares a freshly produced `BENCH_pipeline.json` against the committed
//! one and **fails** (exit 1) when the fresh run regresses:
//!
//! * any `allocs_per_iter` increase on a zero/low-alloc bench (committed
//!   count ≤ 1000) — allocation counts are deterministic, so this gate has
//!   no noise floor and ratchets monotonically downward;
//! * a throughput drop of more than 10% on any bench that reports
//!   throughput (tunable via `CRES_GATE_MIN_RATIO`, default `0.9`, for
//!   runners with known-different performance envelopes).
//!
//! Prints a before/after markdown table; when `GITHUB_STEP_SUMMARY` is set
//! the table is appended there too, so the regression is readable from the
//! job summary without digging through logs.
//!
//! Run: `bench_gate <committed BENCH_pipeline.json> <fresh BENCH_pipeline.json>`
//!
//! To intentionally re-bless numbers (e.g. after landing an optimisation),
//! regenerate with `cargo run --release -p cres-bench --bin bench_report`
//! and commit the refreshed `BENCH_pipeline.json` in the same PR.

use std::fmt::Write as _;

/// One parsed bench entry from the artifact's fixed line format.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    name: String,
    median_ns_per_iter: f64,
    throughput_per_sec: Option<f64>,
    allocs_per_iter: f64,
}

/// Low-alloc threshold: below this committed count the alloc ratchet is
/// absolute (any increase fails).
const LOW_ALLOC_CEILING: f64 = 1000.0;

fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let marker = format!("\"{key}\": ");
    let start = line
        .find(&marker)
        .unwrap_or_else(|| panic!("bench line missing {key:?}: {line}"))
        + marker.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("unterminated {key:?} in bench line: {line}"));
    rest[..end].trim()
}

fn parse_line(line: &str) -> Entry {
    let name = field(line, "name").trim_matches('"').to_string();
    let median_ns_per_iter = field(line, "median_ns_per_iter")
        .parse()
        .unwrap_or_else(|e| panic!("bad median_ns_per_iter for {name}: {e}"));
    let throughput = field(line, "throughput_per_sec");
    let throughput_per_sec = if throughput == "null" {
        None
    } else {
        Some(
            throughput
                .parse()
                .unwrap_or_else(|e| panic!("bad throughput_per_sec for {name}: {e}")),
        )
    };
    let allocs_per_iter = field(line, "allocs_per_iter")
        .parse()
        .unwrap_or_else(|e| panic!("bad allocs_per_iter for {name}: {e}"));
    Entry {
        name,
        median_ns_per_iter,
        throughput_per_sec,
        allocs_per_iter,
    }
}

/// Extracts the `benches` array (not `baseline`) from the artifact. The
/// writer emits one object per line, so a line scanner is enough — no JSON
/// dependency in the gate.
fn parse_benches(text: &str, origin: &str) -> Vec<Entry> {
    let start = text
        .find("\"benches\": [")
        .unwrap_or_else(|| panic!("{origin}: no \"benches\" array (schema drift?)"));
    let section = &text[start..];
    let end = section
        .find(']')
        .unwrap_or_else(|| panic!("{origin}: unterminated \"benches\" array"));
    let entries: Vec<Entry> = section[..end]
        .lines()
        .filter(|line| line.contains("\"name\""))
        .map(parse_line)
        .collect();
    assert!(!entries.is_empty(), "{origin}: empty \"benches\" array");
    entries
}

fn fmt_throughput(t: Option<f64>) -> String {
    t.map_or("—".to_string(), |t| format!("{t:.0}/s"))
}

fn min_throughput_ratio() -> f64 {
    match std::env::var("CRES_GATE_MIN_RATIO") {
        Err(_) => 0.9,
        Ok(v) => v
            .trim()
            .parse()
            .ok()
            .filter(|r| (0.0..=1.0).contains(r))
            .unwrap_or_else(|| {
                eprintln!("error: invalid CRES_GATE_MIN_RATIO={v:?}: expected a ratio in [0, 1]");
                std::process::exit(2);
            }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: bench_gate <committed BENCH_pipeline.json> <fresh BENCH_pipeline.json>");
        std::process::exit(2);
    }
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: reading {path}: {e}");
            std::process::exit(2);
        })
    };
    let committed = parse_benches(&read(&args[1]), &args[1]);
    let fresh = parse_benches(&read(&args[2]), &args[2]);
    let min_ratio = min_throughput_ratio();

    let mut failures: Vec<String> = Vec::new();
    let mut table = String::from(
        "| bench | ns/iter (was → now) | throughput (was → now) | allocs/iter (was → now) | verdict |\n\
         |---|---|---|---|---|\n",
    );

    for was in &committed {
        let Some(now) = fresh.iter().find(|e| e.name == was.name) else {
            failures.push(format!(
                "{}: present in committed artifact but missing from fresh run",
                was.name
            ));
            continue;
        };
        let mut verdicts: Vec<&str> = Vec::new();

        if was.allocs_per_iter <= LOW_ALLOC_CEILING && now.allocs_per_iter > was.allocs_per_iter {
            failures.push(format!(
                "{}: allocs_per_iter regressed {:.1} -> {:.1} (low-alloc ratchet only goes down)",
                was.name, was.allocs_per_iter, now.allocs_per_iter
            ));
            verdicts.push("allocs regressed");
        }
        if let (Some(t_was), Some(t_now)) = (was.throughput_per_sec, now.throughput_per_sec) {
            if t_now < t_was * min_ratio {
                failures.push(format!(
                    "{}: throughput dropped {:.0}/s -> {:.0}/s ({:.1}% of committed, floor {:.0}%)",
                    was.name,
                    t_was,
                    t_now,
                    t_now / t_was * 100.0,
                    min_ratio * 100.0
                ));
                verdicts.push("throughput dropped");
            }
        }

        let verdict = if verdicts.is_empty() {
            "ok".to_string()
        } else {
            format!("FAIL: {}", verdicts.join(", "))
        };
        writeln!(
            table,
            "| {} | {:.0} → {:.0} | {} → {} | {:.1} → {:.1} | {} |",
            was.name,
            was.median_ns_per_iter,
            now.median_ns_per_iter,
            fmt_throughput(was.throughput_per_sec),
            fmt_throughput(now.throughput_per_sec),
            was.allocs_per_iter,
            now.allocs_per_iter,
            verdict
        )
        .expect("String write cannot fail");
    }

    let verdict_line = if failures.is_empty() {
        "**bench gate passed** — no throughput or allocation regressions".to_string()
    } else {
        format!("**bench gate FAILED** — {} regression(s)", failures.len())
    };
    println!("## Bench regression gate\n\n{table}\n{verdict_line}");

    if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
        let block = format!("## Bench regression gate\n\n{table}\n{verdict_line}\n");
        if let Err(e) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&summary_path)
            .and_then(|mut f| std::io::Write::write_all(&mut f, block.as_bytes()))
        {
            eprintln!("warning: could not append to GITHUB_STEP_SUMMARY: {e}");
        }
    }

    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("bench gate FAILED: {failure}");
        }
        eprintln!(
            "\nIf this regression is an intentional trade-off, re-bless the numbers: \
             `cargo run --release -p cres-bench --bin bench_report` and commit the \
             refreshed BENCH_pipeline.json in the same PR."
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": "cres-bench-report-v1",
  "benches": [
    {"name": "steady_tick", "median_ns_per_iter": 3103, "throughput_per_sec": 10313947, "allocs_per_iter": 0.0},
    {"name": "platform_slice_100k", "median_ns_per_iter": 2474032, "throughput_per_sec": null, "allocs_per_iter": 26541.0}
  ],
  "baseline": [
    {"name": "steady_tick", "median_ns_per_iter": 3223, "throughput_per_sec": 9928468, "allocs_per_iter": 12.0}
  ]
}
"#;

    #[test]
    fn parses_benches_not_baseline() {
        let entries = parse_benches(SAMPLE, "sample");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "steady_tick");
        assert_eq!(entries[0].median_ns_per_iter, 3103.0);
        assert_eq!(entries[0].throughput_per_sec, Some(10_313_947.0));
        assert_eq!(entries[0].allocs_per_iter, 0.0);
        // baseline's 12.0 allocs for steady_tick must not leak in
        assert_eq!(entries[1].name, "platform_slice_100k");
        assert_eq!(entries[1].throughput_per_sec, None);
        assert_eq!(entries[1].allocs_per_iter, 26541.0);
    }

    #[test]
    fn null_throughput_parses_as_none() {
        let entry = parse_line(
            r#"    {"name": "x", "median_ns_per_iter": 10, "throughput_per_sec": null, "allocs_per_iter": 1.5}"#,
        );
        assert_eq!(entry.throughput_per_sec, None);
        assert_eq!(entry.allocs_per_iter, 1.5);
    }
}
