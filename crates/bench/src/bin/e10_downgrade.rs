//! E10 — the secure-boot downgrade attack (§IV, citing the Nintendo 3DS
//! keyshuffling \[15\] and TrustZone downgrade \[16\]): an attacker replays an
//! old, *genuinely signed* firmware image against three ROM hardenings.
//!
//! Run: `cargo run --release -p cres-bench --bin e10_downgrade`

use cres_boot::{BootChain, BootPolicy, BootRom, ImageSigner, MemArbCounters};
use cres_crypto::drbg::HmacDrbg;
use cres_crypto::rsa::generate_keypair;
use cres_crypto::sha2::Sha256;

fn main() {
    cres_bench::banner(
        "E10",
        "Firmware downgrade (replay of old signed image) vs boot-ROM policy",
    );
    let mut drbg = HmacDrbg::new(b"e10-vendor", b"");
    let vendor = generate_keypair(512, &mut drbg).unwrap();
    let signer = ImageSigner::new(&vendor);
    let v1 = signer.sign("app", 1, 1, b"app v1 (contains exploitable bug)");
    let v2 = signer.sign("app", 2, 2, b"app v2 (bug fixed)");
    let rom_measure = Sha256::digest(b"rom");

    let widths = [34, 12, 12, 34];
    cres_bench::row(
        &[&"ROM policy", &"v2 boots", &"v1 replay", &"outcome"],
        &widths,
    );
    cres_bench::rule(&widths);

    // Policy 1: signature-only (the vulnerable commercial baseline).
    {
        let chain = BootChain::new(
            BootRom::new(vendor.public.fingerprint(), BootPolicy::signature_only()),
            vendor.public.clone(),
            rom_measure,
        );
        let mut arb = MemArbCounters::new();
        let v2_boots = chain.boot(&[&v2], &mut arb).booted();
        let v1_boots = chain.boot(&[&v1], &mut arb).booted();
        cres_bench::row(
            &[
                &"signature only",
                &yes(v2_boots),
                &attack(v1_boots),
                &"attacker regains the v1 exploit",
            ],
            &widths,
        );
    }

    // Policy 2: signature + anti-rollback counter.
    {
        let chain = BootChain::new(
            BootRom::new(vendor.public.fingerprint(), BootPolicy::default()),
            vendor.public.clone(),
            rom_measure,
        );
        let mut arb = MemArbCounters::new();
        let v2_boots = chain.boot(&[&v2], &mut arb).booted();
        let v1_boots = chain.boot(&[&v1], &mut arb).booted();
        cres_bench::row(
            &[
                &"signature + anti-rollback (OTP)",
                &yes(v2_boots),
                &attack(v1_boots),
                &"replay refused: sv 1 < fused minimum 2",
            ],
            &widths,
        );
    }

    // Policy 3: anti-rollback + key revocation (signing key leaked).
    {
        let mut rom = BootRom::new(vendor.public.fingerprint(), BootPolicy::default());
        rom.revoke_key(vendor.public.fingerprint());
        let chain = BootChain::new(rom, vendor.public.clone(), rom_measure);
        let mut arb = MemArbCounters::new();
        let v2_boots = chain.boot(&[&v2], &mut arb).booted();
        let v1_boots = chain.boot(&[&v1], &mut arb).booted();
        cres_bench::row(
            &[
                &"anti-rollback + key revoked",
                &yes(v2_boots),
                &attack(v1_boots),
                &"leaked key unusable for ANY image",
            ],
            &widths,
        );
    }

    // Forged image control: attacker without the key never succeeds.
    {
        let mut evil_drbg = HmacDrbg::new(b"e10-attacker", b"");
        let attacker = generate_keypair(512, &mut evil_drbg).unwrap();
        let forged = ImageSigner::new(&attacker).sign("app", 9, 9, b"backdoored");
        let chain = BootChain::new(
            BootRom::new(vendor.public.fingerprint(), BootPolicy::signature_only()),
            vendor.public.clone(),
            rom_measure,
        );
        let mut arb = MemArbCounters::new();
        let forged_boots = chain.boot(&[&forged], &mut arb).booted();
        cres_bench::rule(&widths);
        println!(
            "control: forged (non-vendor) image boots under ANY policy: {}",
            attack(forged_boots)
        );
    }

    // PCR divergence: even where the downgrade boots, measured boot leaves
    // evidence — the PCRs of a v1 boot differ from v2's golden values.
    {
        let chain = BootChain::new(
            BootRom::new(vendor.public.fingerprint(), BootPolicy::signature_only()),
            vendor.public.clone(),
            rom_measure,
        );
        let mut arb1 = MemArbCounters::new();
        let mut arb2 = MemArbCounters::new();
        let p1 = chain.boot(&[&v1], &mut arb1).pcrs;
        let p2 = chain.boot(&[&v2], &mut arb2).pcrs;
        println!(
            "measured boot: v1 and v2 PCR sets differ: {} — remote attestation catches the silent downgrade",
            p1 != p2
        );
    }
    println!(
        "\nexpected shape (§IV): the replay is fatal exactly when anti-rollback\n\
         state is absent; signatures alone prove authenticity, not freshness."
    );
}

fn yes(b: bool) -> &'static str {
    if b {
        "boots"
    } else {
        "refused"
    }
}

fn attack(b: bool) -> &'static str {
    if b {
        "SUCCEEDS"
    } else {
        "blocked"
    }
}
