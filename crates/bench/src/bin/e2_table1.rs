//! E2 — reproduces **Table I**: the association of NIS principles, CSF
//! functions, operational requirements, derived embedded security
//! requirements and the security landscape — extended with the workspace
//! module implementing each requirement, and a threat-coverage check for
//! the substation deployment.
//!
//! Run: `cargo run -p cres-bench --bin e2_table1`

use cres_policy::mapping::{render_table1, table1};
use cres_policy::{AssetInventory, DetectionCapability, ThreatModel};
use std::collections::BTreeSet;

fn main() {
    cres_bench::banner(
        "E2 (Table I)",
        "Derived embedded security requirements and their implementations",
    );
    print!("{}", render_table1());

    let total: usize = table1().iter().map(|r| r.requirements.len()).sum();
    let implemented: usize = table1()
        .iter()
        .flat_map(|r| r.requirements.iter())
        .filter(|req| !req.implemented_by.is_empty())
        .count();
    println!("\nrequirement coverage: {implemented}/{total} implemented in this workspace");

    // Threat-coverage corollary: the substation deployment's STRIDE model
    // against the full CRES detection set vs the passive baseline's.
    let inv = AssetInventory::substation_example();
    let tm = ThreatModel::generate(&inv);
    let full: BTreeSet<_> = DetectionCapability::ALL.into_iter().collect();
    let watchdog_only: BTreeSet<_> = [DetectionCapability::WatchdogLiveness]
        .into_iter()
        .collect();
    println!(
        "substation threat model: {} threats over {} assets",
        tm.threats().len(),
        inv.assets().len()
    );
    println!(
        "  detection coverage, CRES monitor set : {}",
        cres_bench::pct(tm.detection_coverage(&inv, &full))
    );
    println!(
        "  detection coverage, passive baseline : {}",
        cres_bench::pct(tm.detection_coverage(&inv, &watchdog_only))
    );
}
