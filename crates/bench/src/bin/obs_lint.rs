//! `obs_lint` — the export-plane artifact gate.
//!
//! Two jobs, both hard failures (exit code 1):
//!
//! 1. **Artifact lint** — walk a directory of exported artifacts (the
//!    first CLI argument, else `CRES_REPORT_DIR`) and validate every
//!    file the export plane produces:
//!    * `*.jsonl` → [`check_jsonl`]: schema-versioned envelope, known
//!      kinds, strict `(device, cycle, seq)` ordering;
//!    * `*.trace.json` → [`check_chrome`]: well-formed `trace_event`
//!      wrapper, complete events, no same-track overlap;
//!    * `*.prom` → [`check_prom`]: typed metric families, monotone
//!      cumulative histogram buckets, `+Inf` == `_count`.
//! 2. **Determinism diff** — run a small built-in fleet at 1, 2 and 8
//!    workers and byte-compare the JSONL and Prometheus artifacts:
//!    worker count must be a pure scheduling choice, invisible in the
//!    exported bytes. Runs even when no artifact directory is given, so
//!    the gate always checks something.
//!
//! CI runs this after the `CRES_FAST` experiments matrix, pointing it at
//! the matrix's `CRES_REPORT_DIR`; the nightly fleet job points it at
//! the full-size artifacts.
//!
//! Run: `cargo run --release -p cres-bench --bin obs_lint [DIR]`

use cres_fleet::spec::AttackMix;
use cres_fleet::{FleetConfig, FleetSocConfig};
use cres_obs::lint::{check_chrome, check_jsonl, check_prom};
use cres_obs::{fleet_jsonl, fleet_prometheus, observe_fleet};
use std::path::Path;
use std::process::ExitCode;

/// Worker counts the determinism diff sweeps.
const WORKER_SWEEP: [usize; 3] = [1, 2, 8];

fn lint_dir(dir: &Path) -> Result<usize, String> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .collect();
    entries.sort();
    let mut checked = 0;
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let kind = if name.ends_with(".jsonl") {
            "jsonl"
        } else if name.ends_with(".trace.json") {
            "chrome"
        } else if name.ends_with(".prom") {
            "prom"
        } else {
            continue;
        };
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let result = match kind {
            "jsonl" => check_jsonl(&text),
            "chrome" => check_chrome(&text),
            _ => check_prom(&text),
        };
        match result {
            Ok(units) => {
                println!("  ok {name}: {units} {kind} records, {} B", text.len());
                checked += 1;
            }
            Err(why) => return Err(format!("{name}: {why}")),
        }
    }
    Ok(checked)
}

fn determinism_diff() -> Result<(), String> {
    let mut config = FleetConfig::new(24, 42);
    config.device_cycles = 60_000;
    config.mix = AttackMix::standard();
    let mut reference: Option<(String, String)> = None;
    for workers in WORKER_SWEEP {
        let observation = observe_fleet(
            &config,
            &FleetSocConfig::default(),
            workers,
            cres_attacks::catalog::try_build,
        )
        .map_err(|e| format!("fleet mix failed to resolve: {e:?}"))?;
        let jsonl = fleet_jsonl(&observation);
        let prom = fleet_prometheus(&observation.report.verdict);
        check_jsonl(&jsonl).map_err(|why| format!("built-in fleet JSONL: {why}"))?;
        check_prom(&prom).map_err(|why| format!("built-in fleet Prometheus: {why}"))?;
        match &reference {
            None => reference = Some((jsonl, prom)),
            Some((expected_jsonl, expected_prom)) => {
                if *expected_jsonl != jsonl {
                    return Err(format!(
                        "fleet JSONL diverged between {} and {workers} workers",
                        WORKER_SWEEP[0]
                    ));
                }
                if *expected_prom != prom {
                    return Err(format!(
                        "fleet Prometheus exposition diverged between {} and {workers} workers",
                        WORKER_SWEEP[0]
                    ));
                }
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let dir = std::env::args().nth(1).or_else(|| {
        std::env::var("CRES_REPORT_DIR")
            .ok()
            .filter(|d| !d.is_empty())
    });
    if let Some(dir) = dir {
        println!("obs_lint: validating artifacts in {dir}");
        match lint_dir(Path::new(&dir)) {
            Ok(0) => println!("  (no exported artifacts found — nothing to lint)"),
            Ok(n) => println!("  {n} artifacts pass"),
            Err(why) => {
                eprintln!("obs_lint: FAIL: {why}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        println!("obs_lint: no artifact directory (arg or CRES_REPORT_DIR); lint skipped");
    }
    println!(
        "obs_lint: determinism diff (24-device fleet, workers {WORKER_SWEEP:?}, byte-compare)"
    );
    if let Err(why) = determinism_diff() {
        eprintln!("obs_lint: FAIL: {why}");
        return ExitCode::FAILURE;
    }
    println!("obs_lint: PASS — artifacts valid, exports worker-invariant");
    ExitCode::SUCCESS
}
