//! E16 — the export plane is free: flight-recorder exporters on the
//! worst-case cell, on vs off.
//!
//! The observability PR's contract is that exporting changes *nothing*:
//! the exporters run post-hoc over data the platform already records, so
//! a run whose artifacts are exported must produce a byte-identical
//! report to one whose artifacts are discarded, and the export itself
//! must cost a rounding error next to the simulation.
//!
//! The worst-case cell is E8's: `CyberResilient` at the fastest sampling
//! period (1000cy) under a code-injection campaign — the configuration
//! that records the most spans per simulated cycle.
//!
//! Asserts, hard:
//!
//! * the exported run's report (telemetry snapshot stripped) is
//!   byte-identical to the telemetry-off run's — recording + exporting
//!   never perturbs the simulation;
//! * the exported run's report is byte-identical to a plain
//!   (non-exported) telemetry-on run's — exporting reads, never writes;
//! * all three artifacts pass the `obs_lint` validators;
//! * export wall time < 5% of simulation wall time.
//!
//! Run: `cargo run --release -p cres-bench --bin e16_observe`
//!
//! * `CRES_FAST=1` shrinks the run (CI smoke);
//! * `CRES_REPORT_DIR=<dir>` writes `e16.json` plus the three artifacts
//!   (`e16.trace.json`, `e16.log.jsonl`, `e16.prom`) — deterministic
//!   bytes, validated by the `obs_lint` CI step.

use cres_bench::scenarios::build;
use cres_obs::lint::{check_chrome, check_jsonl, check_prom};
use cres_obs::{chrome_trace, device_records, prometheus, write_jsonl, ObsCapture};
use cres_platform::{PlatformConfig, PlatformProfile, Scenario, ScenarioRunner};
use cres_sim::{SimDuration, SimTime};
use std::time::Instant;

const FULL_DURATION: u64 = 1_000_000;

fn main() {
    cres_bench::banner(
        "E16",
        "Flight-recorder export plane: byte-identical reports, <5% export wall",
    );
    // No CRES_FAST budget: the worst-case cell is *defined* at 1M cycles
    // (the ring is at capacity, the overhead ratio is the one the docs
    // quote), and the whole experiment runs in well under a second —
    // shrinking the run would only distort the export/run ratio.
    let duration = FULL_DURATION;
    let scenario = || {
        Scenario::quiet(SimDuration::cycles(duration)).attack(
            SimTime::at_cycle(duration / 2),
            SimDuration::cycles(8_000),
            build("code-injection"),
        )
    };
    let config = || {
        let mut config = PlatformConfig::new(PlatformProfile::CyberResilient, 8);
        config.monitor_period = SimDuration::cycles(1_000);
        config
    };

    // -- the three runs: plain telemetry-on, exported, telemetry-off --
    let plain = ScenarioRunner::new(config()).run(scenario());

    let run_started = Instant::now();
    let (exported, platform) = ScenarioRunner::new(config()).run_keep(scenario());
    let run_wall = run_started.elapsed();

    let capture = ObsCapture::from_run(0, exported, &platform);
    // Steady-state export cost: the first pass pays allocator growth and
    // page first-touch for ~1MB of artifact buffers; the budget pins the
    // marginal cost of exporting, so time a few passes and take the min.
    let mut export_wall = std::time::Duration::MAX;
    let mut artifacts = None;
    for _ in 0..3 {
        let export_started = Instant::now();
        let trace = chrome_trace(std::slice::from_ref(&capture));
        let log = write_jsonl(&device_records(&capture));
        let prom = prometheus(capture.report.telemetry.as_ref().expect("telemetry on"));
        export_wall = export_wall.min(export_started.elapsed());
        artifacts = Some((trace, log, prom));
    }
    let (trace, log, prom) = artifacts.expect("export ran");
    let exported = capture.report.clone();

    let mut off_config = config();
    off_config.telemetry.enabled = false;
    let off = ScenarioRunner::new(off_config).run(scenario());

    // -- invariants --
    assert_eq!(
        plain.to_json(),
        exported.to_json(),
        "exporting the run changed its report"
    );
    let mut stripped = exported.clone();
    stripped.telemetry = None;
    assert_eq!(
        stripped.to_json(),
        off.to_json(),
        "non-telemetry report fields differ between exporters on and off"
    );
    let spans = check_chrome(&trace).expect("Chrome trace failed lint");
    let records = check_jsonl(&log).expect("JSONL log failed lint");
    let samples = check_prom(&prom).expect("Prometheus exposition failed lint");

    let ratio = export_wall.as_secs_f64() / run_wall.as_secs_f64().max(1e-9);
    println!("worst-case cell ({duration} cycles, 1000cy sampling, code-injection campaign):");
    println!(
        "  artifacts: {spans} trace events ({} B), {records} log records ({} B), \
         {samples} metric samples ({} B)",
        trace.len(),
        log.len(),
        prom.len()
    );
    println!(
        "  simulation wall {:.2}ms, export wall {:.3}ms ({} of the run)",
        run_wall.as_secs_f64() * 1e3,
        export_wall.as_secs_f64() * 1e3,
        cres_bench::pct(ratio)
    );
    assert!(
        ratio < 0.05,
        "export wall {ratio:.4} breached the 5% budget (run {run_wall:?}, export {export_wall:?})"
    );
    println!("  reports byte-identical (on == exported; stripped == off); export under 5%.");

    if let Some(dir) = std::env::var_os("CRES_REPORT_DIR") {
        let dir = std::path::Path::new(&dir);
        for (file, contents) in [
            ("e16.trace.json", trace.as_str()),
            ("e16.log.jsonl", log.as_str()),
            ("e16.prom", prom.as_str()),
        ] {
            let path = dir.join(file);
            std::fs::write(&path, contents)
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            println!("wrote {}", path.display());
        }
    }
    cres_bench::emit_reports(
        "e16",
        [
            ("exported", &exported),
            ("telemetry-off", &off),
            ("plain", &plain),
        ],
    );

    println!("\nE16 complete: the export plane observes the run without touching it.");
}
