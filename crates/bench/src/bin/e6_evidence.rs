//! E6 — **the headline claim (C1)**: continuity of the evidence data
//! stream once trust is broken.
//!
//! A staged intrusion (probe → code injection → exfiltration) ends with an
//! anti-forensic log wipe. The passive baseline's audit trail lives in
//! GPP-reachable memory (console + app_log) and dies with the wipe; the
//! CRES SSM's hash-chained store — keyed and held in physically isolated
//! memory — survives, and tampering with a shared-deployment store is at
//! least *detectable*.
//!
//! Run: `cargo run --release -p cres-bench --bin e6_evidence`

use cres_bench::scenarios::build;
use cres_platform::{PlatformConfig, PlatformProfile, Scenario, ScenarioRunner};
use cres_sim::{SimDuration, SimTime};

fn staged_intrusion(duration: u64) -> Scenario {
    Scenario::quiet(SimDuration::cycles(duration))
        .attack(
            SimTime::at_cycle(200_000),
            SimDuration::cycles(5_000),
            build("memory-probe"),
        )
        .attack(
            SimTime::at_cycle(350_000),
            SimDuration::cycles(8_000),
            build("code-injection"),
        )
        .attack(
            SimTime::at_cycle(500_000),
            SimDuration::cycles(5_000),
            build("exfiltration"),
        )
        .attack(
            SimTime::at_cycle(650_000),
            SimDuration::cycles(1_000),
            build("log-wipe"),
        )
}

fn main() {
    cres_bench::banner(
        "E6",
        "Evidence continuity once trust is broken (staged intrusion ending in log wipe)",
    );
    let duration = 900_000;
    let widths = [16, 14, 14, 12, 14, 14];
    cres_bench::row(
        &[
            &"profile",
            &"evid records",
            &"chain",
            &"coverage",
            &"console lines",
            &"incidents",
        ],
        &widths,
    );
    cres_bench::rule(&widths);
    for profile in [PlatformProfile::CyberResilient, PlatformProfile::PassiveTrust] {
        let mut config = PlatformConfig::new(profile, 99);
        // the baseline has no SSM evidence store at all
        config.evidence_enabled = profile == PlatformProfile::CyberResilient;
        let report = ScenarioRunner::new(config).run(staged_intrusion(duration));
        cres_bench::row(
            &[
                &profile.to_string(),
                &report.evidence_len,
                &if report.evidence_chain_ok { "intact" } else { "BROKEN" },
                &cres_bench::pct(report.evidence_coverage),
                &report.console_lines,
                &report.total_incidents,
            ],
            &widths,
        );
    }
    cres_bench::rule(&widths);
    println!(
        "\nnote: the baseline's console count reflects the post-wipe residue —\n\
         every line written before the wipe is gone; with evidence disabled its\n\
         coverage of the attack timeline is zero. The CRES chain records the\n\
         probe, the injection, the exfiltration AND the wipe attempt itself,\n\
         and still verifies end-to-end."
    );
}
