//! E6 — **the headline claim (C1)**: continuity of the evidence data
//! stream once trust is broken.
//!
//! A staged intrusion (probe → code injection → exfiltration) ends with an
//! anti-forensic log wipe. The passive baseline's audit trail lives in
//! GPP-reachable memory (console + app_log) and dies with the wipe; the
//! CRES SSM's hash-chained store — keyed and held in physically isolated
//! memory — survives, and tampering with a shared-deployment store is at
//! least *detectable*. Both profile runs are independent and go through
//! the campaign engine.
//!
//! Run: `cargo run --release -p cres-bench --bin e6_evidence`

use cres_bench::scenarios::try_build;
use cres_platform::campaign::{default_jobs, Campaign, ScenarioSpec};
use cres_platform::{PlatformConfig, PlatformProfile};
use cres_sim::{SimDuration, SimTime};

/// Stage starts are laid out for the full 900k-cycle budget and compress
/// proportionally when `CRES_FAST` shrinks `duration`, so the wipe always
/// lands.
fn staged_intrusion(duration: u64) -> ScenarioSpec {
    let at = |full: u64| SimTime::at_cycle(full * duration / 900_000);
    ScenarioSpec::quiet(SimDuration::cycles(duration))
        .attack("memory-probe", at(200_000), SimDuration::cycles(5_000))
        .attack("code-injection", at(350_000), SimDuration::cycles(8_000))
        .attack("exfiltration", at(500_000), SimDuration::cycles(5_000))
        .attack("log-wipe", at(650_000), SimDuration::cycles(1_000))
}

fn main() {
    cres_bench::banner(
        "E6",
        "Evidence continuity once trust is broken (staged intrusion ending in log wipe)",
    );
    let duration = cres_bench::budget(900_000);
    let profiles = [
        PlatformProfile::CyberResilient,
        PlatformProfile::PassiveTrust,
    ];

    let mut campaign = Campaign::new(try_build);
    for profile in profiles {
        let mut config = PlatformConfig::new(profile, 99);
        // the baseline has no SSM evidence store at all
        config.evidence_enabled = profile == PlatformProfile::CyberResilient;
        campaign.submit(profile.to_string(), config, staged_intrusion(duration));
    }
    let summary = campaign
        .run_parallel(default_jobs())
        .expect("gauntlet names resolve");
    cres_bench::emit_campaign_reports("e6", &summary);

    let widths = [16, 14, 14, 12, 14, 14];
    cres_bench::row(
        &[
            &"profile",
            &"evid records",
            &"chain",
            &"coverage",
            &"console lines",
            &"incidents",
        ],
        &widths,
    );
    cres_bench::rule(&widths);
    for (profile, result) in profiles.iter().zip(&summary.results) {
        let report = &result.report;
        cres_bench::row(
            &[
                &profile.to_string(),
                &report.evidence_len,
                &if report.evidence_chain_ok {
                    "intact"
                } else {
                    "BROKEN"
                },
                &cres_bench::pct(report.evidence_coverage),
                &report.console_lines,
                &report.total_incidents,
            ],
            &widths,
        );
    }
    cres_bench::rule(&widths);
    println!(
        "\nnote: the baseline's console count reflects the post-wipe residue —\n\
         every line written before the wipe is gone; with evidence disabled its\n\
         coverage of the attack timeline is zero. The CRES chain records the\n\
         probe, the injection, the exfiltration AND the wipe attempt itself,\n\
         and still verifies end-to-end."
    );
    if let Some(telemetry) = summary.merged_telemetry() {
        println!("\n[e6] pipeline telemetry: {}", telemetry.summary_line());
        print!("{}", telemetry.stage_table());
    }
    summary.print_timing("e6");
}
