//! E5 — recovery path comparison (claim C4 / §III-5): plain reboot vs
//! firmware rollback vs golden-image recovery vs roll-forward update, after
//! a firmware-corruption incident.
//!
//! The flash-programming cost model: rebooting costs the configured reboot
//! latency; switching slots costs one extra verify; reflashing costs
//! `bytes / 8` cycles of flash programming on top.
//!
//! Run: `cargo run --release -p cres-bench --bin e5_recovery`

use cres_boot::FirmwareImage;
use cres_platform::{Platform, PlatformConfig, PlatformProfile};

/// Flash programming throughput: bytes per cycle.
const FLASH_BYTES_PER_CYCLE: u64 = 8;

struct PathResult {
    name: &'static str,
    recovered: bool,
    version_after: Option<u32>,
    latency_cycles: u64,
    notes: String,
}

fn corrupt_active_slot(platform: &mut Platform) {
    let active = platform.slots.active();
    let mut bytes = platform.slots.active_bytes().to_vec();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF; // ransomware-style corruption
    platform.slots.write_slot(active, bytes);
}

fn active_image(platform: &Platform) -> Option<FirmwareImage> {
    FirmwareImage::from_bytes(
        platform.slots.active_bytes(),
        platform.vendor_public.modulus_len(),
    )
    .ok()
    .filter(|img| img.verify(&platform.vendor_public).is_ok())
}

fn fresh_platform_with_v2() -> Platform {
    let mut p = Platform::new(PlatformConfig::new(PlatformProfile::CyberResilient, 404));
    // Field update to v2 first, so there is history to roll back to.
    let v2 = p
        .signer
        .sign("app", 2, 2, b"CRES application firmware v2")
        .to_bytes();
    p.update.stage(&mut p.slots, v2);
    p.update
        .commit(&mut p.slots, p.chain.rom(), &p.vendor_public, &mut p.arb)
        .expect("v2 update applies");
    p
}

fn main() {
    cres_bench::banner(
        "E5",
        "Recovery paths after firmware corruption: reboot vs rollback vs golden vs roll-forward",
    );
    let reboot = PlatformConfig::new(PlatformProfile::CyberResilient, 404)
        .reboot_duration
        .as_cycles();
    let mut results = Vec::new();

    // Path 1: plain reboot (the passive baseline's only recovery).
    {
        let mut p = fresh_platform_with_v2();
        corrupt_active_slot(&mut p);
        // reboot does not touch flash: the corrupted image is still there
        let recovered = active_image(&p).is_some();
        results.push(PathResult {
            name: "reboot only",
            recovered,
            version_after: active_image(&p).map(|i| i.header.version),
            latency_cycles: reboot,
            notes: "corrupted image persists; boot verification fails again".into(),
        });
    }

    // Path 2: rollback to the previous slot.
    {
        let mut p = fresh_platform_with_v2();
        corrupt_active_slot(&mut p);
        let fallback = p.slots.active().other();
        let ok = !p.slots.slot(fallback).is_empty();
        if ok {
            p.slots.set_active(fallback);
        }
        let img = active_image(&p);
        results.push(PathResult {
            name: "rollback (A/B)",
            recovered: img.is_some(),
            version_after: img.map(|i| i.header.version),
            latency_cycles: reboot + 100, // slot switch + re-verify
            notes: "previous version restored; v2 data-format state lost".into(),
        });
    }

    // Path 3: golden-image recovery.
    {
        let mut p = fresh_platform_with_v2();
        corrupt_active_slot(&mut p);
        // also corrupt the fallback (worst case: both slots hit)
        let fallback = p.slots.active().other();
        p.slots.write_slot(fallback, b"ransomware".to_vec());
        let golden_len = p.slots.golden().len() as u64;
        p.update.recover_golden(&mut p.slots);
        let img = active_image(&p);
        results.push(PathResult {
            name: "golden recovery",
            recovered: img.is_some(),
            version_after: img.map(|i| i.header.version),
            latency_cycles: reboot + golden_len / FLASH_BYTES_PER_CYCLE,
            notes: "works even with both slots corrupted; factory state".into(),
        });
    }

    // Path 4: roll-forward (re-stage a fixed v3 over the air).
    {
        let mut p = fresh_platform_with_v2();
        corrupt_active_slot(&mut p);
        let v3 = p
            .signer
            .sign("app", 3, 3, b"CRES application firmware v3 (fixed)")
            .to_bytes();
        let v3_len = v3.len() as u64;
        p.update.stage(&mut p.slots, v3);
        let commit = p
            .update
            .commit(&mut p.slots, p.chain.rom(), &p.vendor_public, &mut p.arb);
        let img = active_image(&p);
        results.push(PathResult {
            name: "roll-forward (v3)",
            recovered: commit.is_ok() && img.is_some(),
            version_after: img.map(|i| i.header.version),
            latency_cycles: reboot + v3_len / FLASH_BYTES_PER_CYCLE + 50_000, // + OTA transfer
            notes: "newest fix applied; requires network & vendor".into(),
        });
    }

    let widths = [18, 10, 10, 12, 52];
    cres_bench::row(
        &[&"path", &"recovers", &"version", &"latency", &"notes"],
        &widths,
    );
    cres_bench::rule(&widths);
    for r in &results {
        cres_bench::row(
            &[
                &r.name,
                &if r.recovered { "yes" } else { "NO" },
                &r.version_after.map_or("—".to_string(), |v| format!("v{v}")),
                &format!("{}cy", r.latency_cycles),
                &r.notes,
            ],
            &widths,
        );
    }
    cres_bench::rule(&widths);
    println!(
        "\nexpected shape: reboot alone cannot recover a corrupted image;\n\
         rollback is fastest but loses the newest version; golden recovery\n\
         survives total slot loss at the highest flash cost; roll-forward\n\
         gives the best end state but depends on external infrastructure."
    );
}
