//! E8 — monitoring overhead vs sampling period, and the overhead/latency
//! trade (the cost side of §V's continuous monitoring).
//!
//! Run: `cargo run --release -p cres-bench --bin e8_overhead`

use cres_bench::scenarios::build;
use cres_platform::{PlatformConfig, PlatformProfile, Scenario, ScenarioRunner};
use cres_sim::{SimDuration, SimTime};

const FULL_DURATION: u64 = 1_000_000;

fn main() {
    cres_bench::banner(
        "E8",
        "Monitoring overhead vs sampling period (and the latency trade-off)",
    );
    let duration = cres_bench::budget(FULL_DURATION);
    let mut labelled: Vec<(String, cres_platform::RunReport)> = Vec::new();
    let widths = [16, 18, 12, 16, 14];
    cres_bench::row(
        &[
            &"sample period",
            &"overhead cycles",
            &"overhead",
            &"detect latency",
            &"relay steps",
        ],
        &widths,
    );
    cres_bench::rule(&widths);

    for period in [1_000u64, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000] {
        let mut config = PlatformConfig::new(PlatformProfile::CyberResilient, 8);
        config.monitor_period = SimDuration::cycles(period);
        let scenario = Scenario::quiet(SimDuration::cycles(duration)).attack(
            SimTime::at_cycle(duration / 2),
            SimDuration::cycles(8_000),
            build("code-injection"),
        );
        let report = ScenarioRunner::new(config).run(scenario);
        cres_bench::row(
            &[
                &format!("{period}cy"),
                &report.monitor_overhead_cycles,
                &cres_bench::pct(report.monitor_overhead_cycles as f64 / duration as f64),
                &report
                    .attacks
                    .first()
                    .and_then(|a| a.detection_latency)
                    .map_or("missed".to_string(), |l| format!("{l}cy")),
                &report.critical_steps,
            ],
            &widths,
        );
        labelled.push((format!("period={period}"), report));
    }
    cres_bench::rule(&widths);

    // Baseline row for contrast.
    let config = PlatformConfig::new(PlatformProfile::PassiveTrust, 8);
    let quiet = ScenarioRunner::new(config).run(Scenario::quiet(SimDuration::cycles(duration)));
    println!(
        "passive baseline: overhead {} cycles ({}) — and detects nothing.",
        quiet.monitor_overhead_cycles,
        cres_bench::pct(quiet.monitor_overhead_cycles as f64 / duration as f64)
    );

    // Telemetry layer cost: the same worst-case cell (fastest sweep period)
    // with the recorder on vs off. Span recording is pure accounting, so
    // the simulation itself must not move — only the instrumentation
    // counter differs.
    let telemetry_scenario = || {
        Scenario::quiet(SimDuration::cycles(duration)).attack(
            SimTime::at_cycle(duration / 2),
            SimDuration::cycles(8_000),
            build("code-injection"),
        )
    };
    let mut on_config = PlatformConfig::new(PlatformProfile::CyberResilient, 8);
    on_config.monitor_period = SimDuration::cycles(1_000);
    let mut off_config = on_config;
    off_config.telemetry.enabled = false;
    let on = ScenarioRunner::new(on_config).run(telemetry_scenario());
    let off = ScenarioRunner::new(off_config).run(telemetry_scenario());
    labelled.push(("telemetry=on".into(), on.clone()));
    labelled.push(("telemetry=off".into(), off.clone()));

    let snapshot = on.telemetry.as_ref().expect("telemetry enabled");
    let overhead = snapshot.instrumentation_cycles;
    let ratio = overhead as f64 / duration as f64;
    println!(
        "\ntelemetry layer (worst case, 1000cy sampling): off 0 cycles, on {} cycles ({} of the {}-cycle run)",
        overhead,
        cres_bench::pct(ratio),
        duration
    );
    println!("  {}", snapshot.summary_line());
    print!("{}", snapshot.stage_table());

    let mut on_stripped = on.clone();
    on_stripped.telemetry = None;
    assert_eq!(
        on_stripped, off,
        "telemetry recording perturbed the simulation"
    );
    assert!(
        ratio < 0.05,
        "telemetry overhead {ratio:.4} breached the 5% budget"
    );
    println!("  telemetry on/off reports identical; overhead under the 5% budget.");

    println!(
        "\nexpected shape: overhead scales ~1/period; detection latency scales\n\
         ~period. The knee (here a few thousand cycles) is where a designer\n\
         buys sub-period detection for <1% monitoring cost."
    );
    cres_bench::emit_reports("e8", labelled.iter().map(|(l, r)| (l.as_str(), r)));
}
