//! E8 — monitoring overhead vs sampling period, and the overhead/latency
//! trade (the cost side of §V's continuous monitoring).
//!
//! Run: `cargo run --release -p cres-bench --bin e8_overhead`

use cres_bench::scenarios::build;
use cres_platform::{PlatformConfig, PlatformProfile, Scenario, ScenarioRunner};
use cres_sim::{SimDuration, SimTime};

const DURATION: u64 = 1_000_000;

fn main() {
    cres_bench::banner(
        "E8",
        "Monitoring overhead vs sampling period (and the latency trade-off)",
    );
    let widths = [16, 18, 12, 16, 14];
    cres_bench::row(
        &[
            &"sample period",
            &"overhead cycles",
            &"overhead",
            &"detect latency",
            &"relay steps",
        ],
        &widths,
    );
    cres_bench::rule(&widths);

    for period in [1_000u64, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000] {
        let mut config = PlatformConfig::new(PlatformProfile::CyberResilient, 8);
        config.monitor_period = SimDuration::cycles(period);
        let scenario = Scenario::quiet(SimDuration::cycles(DURATION)).attack(
            SimTime::at_cycle(500_000),
            SimDuration::cycles(8_000),
            build("code-injection"),
        );
        let report = ScenarioRunner::new(config).run(scenario);
        cres_bench::row(
            &[
                &format!("{period}cy"),
                &report.monitor_overhead_cycles,
                &cres_bench::pct(report.monitor_overhead_cycles as f64 / DURATION as f64),
                &report
                    .attacks
                    .first()
                    .and_then(|a| a.detection_latency)
                    .map_or("missed".to_string(), |l| format!("{l}cy")),
                &report.critical_steps,
            ],
            &widths,
        );
    }
    cres_bench::rule(&widths);

    // Baseline row for contrast.
    let config = PlatformConfig::new(PlatformProfile::PassiveTrust, 8);
    let quiet = ScenarioRunner::new(config).run(Scenario::quiet(SimDuration::cycles(DURATION)));
    println!(
        "passive baseline: overhead {} cycles ({}) — and detects nothing.",
        quiet.monitor_overhead_cycles,
        cres_bench::pct(quiet.monitor_overhead_cycles as f64 / DURATION as f64)
    );
    println!(
        "\nexpected shape: overhead scales ~1/period; detection latency scales\n\
         ~period. The knee (here a few thousand cycles) is where a designer\n\
         buys sub-period detection for <1% monitoring cost."
    );
}
