//! `bench_report` — the perf-trajectory harness.
//!
//! Runs the hot-path benchmark workloads (steady-state platform tick,
//! monitor→SSM event pipeline, evidence append, Merkle seal, full platform
//! slice, end-to-end campaign) under a counting global allocator and writes
//! `BENCH_pipeline.json`: per-bench median ns/iter, derived throughput and
//! allocations per iteration, next to the committed pre-optimisation
//! baseline so CI and future PRs can track the trajectory.
//!
//! Run: `cargo run --release -p cres-bench --bin bench_report`
//!
//! * `CRES_FAST=1` shrinks sample counts (CI smoke mode);
//! * `CRES_REPORT_DIR=<dir>` redirects the JSON artifact (default: CWD).

use cres_fleet::{run_fleet, FleetConfig};
use cres_monitor::bus_mon::AccessWindow;
use cres_monitor::{BusPolicyMonitor, ResourceMonitor};
use cres_platform::{
    Platform, PlatformConfig, PlatformPool, PlatformProfile, Scenario, ScenarioRunner,
};
use cres_sim::{SimDuration, SimTime};
use cres_soc::addr::MasterId;
use cres_soc::soc::{layout, SocBuilder};
use cres_ssm::{CorrelationConfig, EvidenceStore, SsmConfig, SystemSecurityManager};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counting allocator: every heap allocation in the process bumps a relaxed
/// counter, so each timed region can report allocations per iteration.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter is a
// side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One measured benchmark.
struct BenchResult {
    name: &'static str,
    median_ns_per_iter: f64,
    /// Events (or appends/seals/runs) per second, when the bench has a
    /// natural per-iteration element count.
    throughput_per_sec: Option<f64>,
    allocs_per_iter: f64,
}

/// Pre-pooling numbers, measured at the commit before the campaign layer
/// got platform pooling and incremental Merkle sealing (fresh platform +
/// full re-provisioning per job, batch tree rebuild per seal, per-record
/// category/payload `String`s). Kept in the artifact's `baseline` field so
/// every future `BENCH_pipeline.json` carries its own reference point.
struct BaselineEntry {
    name: &'static str,
    median_ns_per_iter: f64,
    throughput_per_sec: Option<f64>,
    allocs_per_iter: f64,
}

const BASELINE: &[BaselineEntry] = &[
    BaselineEntry {
        name: "steady_tick",
        median_ns_per_iter: 3_223.0,
        throughput_per_sec: Some(9_928_468.0),
        allocs_per_iter: 0.0,
    },
    BaselineEntry {
        name: "pipeline_events",
        median_ns_per_iter: 41_091.0,
        throughput_per_sec: Some(12_460_180.0),
        allocs_per_iter: 0.0,
    },
    BaselineEntry {
        name: "evidence_append",
        median_ns_per_iter: 1_897.0,
        throughput_per_sec: Some(527_165.0),
        allocs_per_iter: 2.0,
    },
    BaselineEntry {
        name: "merkle_seal_10k",
        median_ns_per_iter: 11_658_241.0,
        throughput_per_sec: Some(857_762.0),
        allocs_per_iter: 19.0,
    },
    BaselineEntry {
        name: "platform_slice_100k",
        median_ns_per_iter: 67_038_622.0,
        throughput_per_sec: None,
        allocs_per_iter: 677_671.0,
    },
    // Renamed from `campaign_events_per_sec`: the bench always measured
    // whole campaign runs (one attacked cell per profile), so throughput
    // is runs/sec — 3 runs over the pre-pooling 122.7ms iteration.
    BaselineEntry {
        name: "campaign_runs_per_sec",
        median_ns_per_iter: 122_690_758.0,
        throughput_per_sec: Some(24.0),
        allocs_per_iter: 1_195_599.0,
    },
];

/// Times `f` over `samples` batches of `iters` calls; reports the median
/// per-iteration time and the mean allocation count per iteration.
fn measure(
    name: &'static str,
    elements_per_iter: Option<u64>,
    iters: u64,
    samples: usize,
    mut f: impl FnMut(),
) -> BenchResult {
    // Warm-up: let lazily grown buffers reach steady state.
    for _ in 0..iters.min(16) {
        f();
    }
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    let mut total_allocs = 0u64;
    for _ in 0..samples {
        let a0 = ALLOCS.load(Ordering::Relaxed);
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t0.elapsed();
        total_allocs += ALLOCS.load(Ordering::Relaxed) - a0;
        per_iter_ns.push(dt.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median_ns_per_iter = per_iter_ns[per_iter_ns.len() / 2];
    let allocs_per_iter = total_allocs as f64 / (samples as u64 * iters) as f64;
    let throughput_per_sec =
        elements_per_iter.map(|n| n as f64 * 1e9 / median_ns_per_iter.max(1e-9));
    println!(
        "{name:<28} {median_ns_per_iter:>12.0} ns/iter  {:>14}  {allocs_per_iter:>8.1} allocs/iter",
        throughput_per_sec.map_or("—".to_string(), |t| format!("{t:.0}/s")),
    );
    BenchResult {
        name,
        median_ns_per_iter,
        throughput_per_sec,
        allocs_per_iter,
    }
}

fn scaled(samples: usize) -> usize {
    if cres_bench::fast_mode() {
        (samples / 4).max(3)
    } else {
        samples
    }
}

/// Policy windows matching the platform's mission policy for CPU cores.
fn cpu_windows(soc: &cres_soc::Soc) -> Vec<AccessWindow> {
    let r = |name: &str| soc.mem.region_by_name(name).unwrap().id();
    let mut windows = Vec::new();
    for cpu in 0..4 {
        for (region, read, write, exec) in
            [("flash_a", true, false, true), ("sram", true, true, false)]
        {
            windows.push(AccessWindow {
                master: MasterId::cpu(cpu),
                region: r(region),
                read,
                write,
                exec,
            });
        }
    }
    windows
}

/// Steady-state platform tick: benign bus traffic, one monitor sampling
/// pass, one SSM ingest — the path the tentpole makes allocation-free.
fn bench_steady_tick() -> BenchResult {
    let mut p = Platform::new(PlatformConfig::new(PlatformProfile::CyberResilient, 7));
    p.train_syscall_monitor(50);
    let sram = layout::SRAM.0;
    let mut tick = 0u64;
    measure("steady_tick", Some(32), 200, scaled(40), move || {
        tick += 1;
        let now = SimTime::at_cycle(tick * 5_000);
        p.soc.watchdog.kick(now);
        for k in 0..32u64 {
            let _ = p.soc.bus.write(
                SimTime::at_cycle(tick * 5_000 - 32 + k),
                MasterId::CPU0,
                sram.offset(64 + 8 * k),
                &[0u8; 8],
                &mut p.soc.mem,
            );
        }
        let collected = p.sample_monitors_buffered(now);
        assert_eq!(collected, 0, "steady tick emitted events");
        let plans = p.ingest_sampled(now);
        black_box(plans.len());
    })
}

/// The headline pipeline bench: produce a burst of denied bus probes, tap
/// them through a persistent `BusPolicyMonitor` and ingest every produced
/// event into the SSM — the full transaction→event→correlate→plan path.
/// Evidence is disabled so the number isolates the sample→correlate→plan
/// path rather than HMAC cost; probe timestamps advance wider than the
/// correlation window so the stream stays incident-free (steady state).
fn bench_pipeline_events() -> BenchResult {
    const EVENTS: u64 = 512;
    let mut soc = SocBuilder::with_standard_layout(1).bus_ring(4_096).build();
    let ssm_private = soc.mem.region_by_name("ssm_private").unwrap().id();
    for m in MasterId::ALL {
        if m != MasterId::SSM {
            soc.mem.revoke(m, ssm_private);
        }
    }
    let mut mon = BusPolicyMonitor::new(cpu_windows(&soc), true);
    let base = PlatformConfig::new(PlatformProfile::CyberResilient, 1);
    let mut ssm = SystemSecurityManager::new(
        SsmConfig {
            deployment: base.ssm_deployment(),
            correlation: CorrelationConfig::default(),
            planner: base.planner_mode(),
            evidence_enabled: false,
        },
        b"bench-key",
    );
    let mut epoch = 0u64;
    let mut events = Vec::with_capacity(EVENTS as usize);
    measure("pipeline_events", Some(EVENTS), 50, scaled(40), move || {
        // Denied probes, spaced wider than the 200k-cycle correlation
        // window, timestamps strictly advancing across iterations.
        for i in 0..EVENTS {
            let _ = soc.bus.write(
                SimTime::at_cycle((epoch + i) * 250_000),
                MasterId::CPU3,
                layout::SSM_PRIVATE.0,
                &[0u8; 8],
                &mut soc.mem,
            );
        }
        epoch += EVENTS;
        let now = SimTime::at_cycle(epoch * 250_000);
        events.clear();
        mon.sample_into(&mut soc, now, &mut events);
        assert_eq!(events.len() as u64, EVENTS);
        let plans = ssm.ingest(now, &events);
        assert!(plans.is_empty(), "pipeline bench raised incidents");
        black_box(events.len());
    })
}

/// Evidence append with a 1k-record chain behind it (HMAC-dominated).
fn bench_evidence_append() -> BenchResult {
    let mut s = EvidenceStore::new(b"bench-key");
    for i in 0..1_000u64 {
        s.append(
            SimTime::at_cycle(i),
            "bus-policy",
            "out-of-policy R by CPU1 at 0x50000000",
        );
    }
    let mut i = 1_000u64;
    measure("evidence_append", Some(1), 2_000, scaled(40), move || {
        i += 1;
        s.append(SimTime::at_cycle(i), "bench", black_box("payload line"));
    })
}

/// Merkle seal over a 10k-record store (leaf-borrowing target).
fn bench_merkle_seal() -> BenchResult {
    let mut s = EvidenceStore::new(b"bench-key");
    for i in 0..10_000u64 {
        s.append(SimTime::at_cycle(i), "bench", "payload line");
    }
    measure("merkle_seal_10k", Some(10_000), 20, scaled(20), move || {
        black_box(s.seal(SimTime::at_cycle(10_000)));
    })
}

/// Full platform slice: 100k quiet cycles under the resilient profile,
/// through the campaign workers' pooled path (recycled platform + cached
/// provisioning). The `measure` warm-up call fills the pool.
fn bench_platform_slice() -> BenchResult {
    let mut pool = PlatformPool::new();
    measure("platform_slice_100k", None, 1, scaled(12), move || {
        let config = PlatformConfig::new(PlatformProfile::CyberResilient, 3);
        let report = ScenarioRunner::new(config)
            .run_pooled(&mut pool, Scenario::quiet(SimDuration::cycles(100_000)));
        black_box(report.critical_steps);
    })
}

/// One attacked campaign cell per profile through a shared worker pool;
/// returns total monitor events processed.
fn run_campaign_cells(pool: &mut PlatformPool, budget: u64) -> u64 {
    use cres_bench::scenarios::build;
    let mut events = 0u64;
    for profile in PlatformProfile::ALL {
        let scenario = Scenario::quiet(SimDuration::cycles(budget)).attack(
            SimTime::at_cycle(200_000),
            SimDuration::cycles(3_000),
            build("network-flood"),
        );
        let report =
            ScenarioRunner::new(PlatformConfig::new(profile, 11)).run_pooled(pool, scenario);
        events += report.total_events;
    }
    events
}

/// End-to-end campaign runs/sec: one attacked cell per profile on a
/// worker-style platform pool. One iteration = `PlatformProfile::ALL.len()`
/// full scenario runs, so throughput honestly reports runs (not the
/// monitor events the old `campaign_events_per_sec` name implied).
fn bench_campaign() -> BenchResult {
    let budget = cres_bench::budget(600_000);
    let mut pool = PlatformPool::new();
    // Sanity pass (the cells really process events) that also warms the
    // pool's provisioning cache for all three cells.
    let total_events = run_campaign_cells(&mut pool, budget);
    assert!(total_events > 0, "campaign cells processed no events");
    measure(
        "campaign_runs_per_sec",
        Some(PlatformProfile::ALL.len() as u64),
        1,
        scaled(8),
        move || {
            black_box(run_campaign_cells(&mut pool, budget));
        },
    )
}

/// Fleet throughput: devices simulated per wall-clock second through the
/// sharded fleet runner (spec forking, pooled device runs, summary
/// shipping, streaming SOC correlation). Runs single-worker so the number
/// is schedule-stable across runners; `e15_fleet` reports the worker
/// sweep.
fn bench_fleet() -> BenchResult {
    let devices: u32 = if cres_bench::fast_mode() { 12 } else { 48 };
    let mut config = FleetConfig::new(devices, 11);
    config.device_cycles = 60_000;
    measure(
        "fleet_devices_per_sec",
        Some(u64::from(devices)),
        1,
        scaled(8),
        move || {
            let report = run_fleet(&config, 1, cres_attacks::catalog::try_build)
                .expect("fleet mix resolves");
            assert_eq!(report.verdict.devices, devices);
            black_box(report.devices_per_sec);
        },
    )
}

fn json_bench_line(
    name: &str,
    median_ns_per_iter: f64,
    throughput_per_sec: Option<f64>,
    allocs_per_iter: f64,
    last: bool,
) -> String {
    format!(
        "    {{\"name\": \"{name}\", \"median_ns_per_iter\": {median_ns_per_iter:.0}, \"throughput_per_sec\": {}, \"allocs_per_iter\": {allocs_per_iter:.1}}}{}\n",
        throughput_per_sec.map_or("null".to_string(), |t| format!("{t:.0}")),
        if last { "" } else { "," },
    )
}

fn write_json(results: &[BenchResult]) {
    let mut out = String::from("{\n  \"schema\": \"cres-bench-report-v1\",\n  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&json_bench_line(
            r.name,
            r.median_ns_per_iter,
            r.throughput_per_sec,
            r.allocs_per_iter,
            i + 1 == results.len(),
        ));
    }
    out.push_str("  ],\n  \"baseline\": [\n");
    for (i, b) in BASELINE.iter().enumerate() {
        out.push_str(&json_bench_line(
            b.name,
            b.median_ns_per_iter,
            b.throughput_per_sec,
            b.allocs_per_iter,
            i + 1 == BASELINE.len(),
        ));
    }
    out.push_str("  ]\n}\n");
    let dir = std::env::var_os("CRES_REPORT_DIR").unwrap_or_else(|| ".".into());
    let path = std::path::Path::new(&dir).join("BENCH_pipeline.json");
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("\nwrote {}", path.display());
}

/// Prints the trajectory vs the committed pre-pooling baseline.
fn print_deltas(results: &[BenchResult]) {
    println!("\n-- vs pre-pooling baseline --");
    for r in results {
        let Some(b) = BASELINE.iter().find(|b| b.name == r.name) else {
            continue;
        };
        let speedup = b.median_ns_per_iter / r.median_ns_per_iter.max(1e-9);
        println!(
            "{:<28} {speedup:>6.2}x faster   allocs {:>9.1} -> {:>7.1}",
            r.name, b.allocs_per_iter, r.allocs_per_iter,
        );
    }
}

/// The acceptance gates. Allocation counts are deterministic, so the
/// allocation gates hold in every mode; the timing/throughput gates only
/// run outside `CRES_FAST` (fast mode shrinks workloads, which shifts
/// throughput without meaning anything).
fn enforce_gates(results: &[BenchResult]) {
    let get = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("gate references missing bench {name:?}"))
    };
    let mut failures: Vec<String> = Vec::new();

    // Zero-alloc hot paths: a fraction below 0.5 tolerates nothing but
    // amortised Vec doubling noise.
    for name in ["steady_tick", "pipeline_events", "evidence_append"] {
        let r = get(name);
        if r.allocs_per_iter >= 0.5 {
            failures.push(format!(
                "{name}: {:.1} allocs/iter (must be allocation-free)",
                r.allocs_per_iter
            ));
        }
    }
    // The campaign-wall ratchet: a warm pooled 100k-cycle slice must never
    // pay re-provisioning (~600k allocs) again.
    let slice = get("platform_slice_100k");
    if slice.allocs_per_iter > 50_000.0 {
        failures.push(format!(
            "platform_slice_100k: {:.0} allocs/iter (ceiling 50000; pooling regressed)",
            slice.allocs_per_iter
        ));
    }

    if !cres_bench::fast_mode() {
        // Incremental sealing: >= 5x faster than the pre-pooling batch
        // rebuild at 10k records.
        let seal = get("merkle_seal_10k");
        let seal_target = 11_658_241.0 / 5.0;
        if seal.median_ns_per_iter > seal_target {
            failures.push(format!(
                "merkle_seal_10k: {:.0} ns/iter (must be <= {seal_target:.0}, 5x faster than the batch baseline)",
                seal.median_ns_per_iter
            ));
        }
        // Campaign throughput floor (pre-pooling baseline was 24 runs/s;
        // pooling landed ~85 runs/s — the floor keeps most of that win).
        let campaign = get("campaign_runs_per_sec");
        let throughput = campaign.throughput_per_sec.unwrap_or(0.0);
        if throughput < 38.0 {
            failures.push(format!(
                "campaign_runs_per_sec: {throughput:.0}/s (floor 38/s)"
            ));
        }
        // Fleet throughput floor: the sharded runner must stay within
        // pooled-slice territory per device, not regress toward fresh
        // provisioning per device (~0.9 devices/s).
        let fleet = get("fleet_devices_per_sec");
        let fleet_throughput = fleet.throughput_per_sec.unwrap_or(0.0);
        if fleet_throughput < 120.0 {
            failures.push(format!(
                "fleet_devices_per_sec: {fleet_throughput:.0}/s (floor 120/s)"
            ));
        }
    }

    if failures.is_empty() {
        println!("\nall bench gates passed");
    } else {
        for failure in &failures {
            eprintln!("bench gate FAILED: {failure}");
        }
        panic!("{} bench gate(s) failed", failures.len());
    }
}

fn main() {
    cres_bench::banner("BENCH", "Hot-path benchmark report");
    let results = vec![
        bench_steady_tick(),
        bench_pipeline_events(),
        bench_evidence_append(),
        bench_merkle_seal(),
        bench_platform_slice(),
        bench_campaign(),
        bench_fleet(),
    ];
    print_deltas(&results);
    write_json(&results);
    enforce_gates(&results);
}
