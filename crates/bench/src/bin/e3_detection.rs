//! E3 — detection rate and latency per attack class, CRES vs the passive
//! baseline (claim C1: existing defences are passive and miss attacks; the
//! active monitor set sees them).
//!
//! Run: `cargo run --release -p cres-bench --bin e3_detection`

use cres_bench::scenarios::{build, GAUNTLET};
use cres_platform::{PlatformConfig, PlatformProfile, Scenario, ScenarioRunner};
use cres_sim::{SimDuration, SimTime};

const SEEDS: [u64; 3] = [11, 42, 1979];

struct Cell {
    detected: u32,
    runs: u32,
    latency_sum: u64,
    latency_n: u32,
}

impl Cell {
    fn new() -> Self {
        Cell {
            detected: 0,
            runs: 0,
            latency_sum: 0,
            latency_n: 0,
        }
    }

    fn rate(&self) -> String {
        format!("{}/{}", self.detected, self.runs)
    }

    fn latency(&self) -> String {
        if self.latency_n == 0 {
            "—".into()
        } else {
            format!("{}cy", self.latency_sum / u64::from(self.latency_n))
        }
    }
}

fn run_one(profile: PlatformProfile, seed: u64, attack: &str) -> (bool, Option<u64>, u32) {
    let config = PlatformConfig::new(profile, seed);
    // long enough that even the watchdog path (timeout 500k) resolves
    let scenario = Scenario::quiet(SimDuration::cycles(1_000_000)).attack(
        SimTime::at_cycle(200_000),
        SimDuration::cycles(4_000),
        build(attack),
    );
    let report = ScenarioRunner::new(config).run(scenario);
    let a = &report.attacks[0];
    (a.detected(), a.detection_latency, a.steps_achieved)
}

fn main() {
    cres_bench::banner(
        "E3",
        "Detection rate & latency per attack class (CRES vs passive baseline)",
    );
    let widths = [18, 12, 12, 12, 12, 10];
    cres_bench::row(
        &[
            &"attack",
            &"CRES det",
            &"CRES lat",
            &"passive det",
            &"passive lat",
            &"wins(CRES)",
        ],
        &widths,
    );
    cres_bench::rule(&widths);

    let mut attacks: Vec<&str> = GAUNTLET.to_vec();
    attacks.push("syscall-anomaly");
    attacks.push("system-hang");
    let mut cres_total = 0u32;
    let mut passive_total = 0u32;
    let mut runs_total = 0u32;
    for attack in &attacks {
        let mut cres = Cell::new();
        let mut passive = Cell::new();
        let mut cres_wins = 0u32;
        for seed in SEEDS {
            for (profile, cell) in [
                (PlatformProfile::CyberResilient, &mut cres),
                (PlatformProfile::PassiveTrust, &mut passive),
            ] {
                let (detected, latency, wins) = run_one(profile, seed, attack);
                cell.runs += 1;
                if detected {
                    cell.detected += 1;
                }
                if let Some(l) = latency {
                    cell.latency_sum += l;
                    cell.latency_n += 1;
                }
                if profile == PlatformProfile::CyberResilient {
                    cres_wins += wins;
                }
            }
        }
        cres_total += cres.detected;
        passive_total += passive.detected;
        runs_total += cres.runs;
        cres_bench::row(
            &[
                attack,
                &cres.rate(),
                &cres.latency(),
                &passive.rate(),
                &passive.latency(),
                &cres_wins,
            ],
            &widths,
        );
    }
    cres_bench::rule(&widths);
    println!(
        "overall detection: CRES {}/{runs_total}  |  passive {}/{runs_total}",
        cres_total, passive_total
    );
    println!(
        "\nexpected shape (paper §III-3/§V): the passive baseline detects only\n\
         hang-class events via its watchdog; the active monitor set detects\n\
         every class with latency bounded by the sampling period."
    );
}
