//! E3 — detection rate and latency per attack class, CRES vs the passive
//! baseline (claim C1: existing defences are passive and miss attacks; the
//! active monitor set sees them).
//!
//! All `attack × seed × profile` cells are independent simulations, so the
//! sweep is submitted to the campaign engine and fanned out across
//! `CRES_JOBS` workers (default: all cores).
//!
//! Run: `cargo run --release -p cres-bench --bin e3_detection`

use cres_bench::scenarios::{try_build, GAUNTLET};
use cres_platform::campaign::{default_jobs, Campaign, ScenarioSpec};
use cres_platform::{PlatformConfig, PlatformProfile};
use cres_sim::{SimDuration, SimTime};

const SEEDS: [u64; 3] = [11, 42, 1979];
const PROFILES: [PlatformProfile; 2] = [
    PlatformProfile::CyberResilient,
    PlatformProfile::PassiveTrust,
];

struct Cell {
    detected: u32,
    runs: u32,
    latency_sum: u64,
    latency_n: u32,
}

impl Cell {
    fn new() -> Self {
        Cell {
            detected: 0,
            runs: 0,
            latency_sum: 0,
            latency_n: 0,
        }
    }

    fn rate(&self) -> String {
        format!("{}/{}", self.detected, self.runs)
    }

    fn latency(&self) -> String {
        if self.latency_n == 0 {
            "—".into()
        } else {
            format!("{}cy", self.latency_sum / u64::from(self.latency_n))
        }
    }
}

/// One cell's scenario: quiet background plus the named attack.
/// Long enough (at full budget) that even the watchdog path (timeout 500k)
/// resolves; `CRES_FAST` shrinks it to a determinism smoke.
fn cell_spec(attack: &str) -> ScenarioSpec {
    ScenarioSpec::quiet(SimDuration::cycles(cres_bench::budget(1_000_000))).attack(
        attack,
        SimTime::at_cycle(200_000),
        SimDuration::cycles(4_000),
    )
}

fn main() {
    cres_bench::banner(
        "E3",
        "Detection rate & latency per attack class (CRES vs passive baseline)",
    );

    let mut attacks: Vec<&str> = GAUNTLET.to_vec();
    attacks.push("syscall-anomaly");
    attacks.push("system-hang");

    // Submission order mirrors the old sequential loop nest
    // (attack, seed, profile) so results can be consumed positionally.
    let mut campaign = Campaign::new(try_build);
    for attack in &attacks {
        for seed in SEEDS {
            for profile in PROFILES {
                campaign.submit(
                    format!("{attack}/{profile}/{seed}"),
                    PlatformConfig::new(profile, seed),
                    cell_spec(attack),
                );
            }
        }
    }
    let summary = campaign
        .run_parallel(default_jobs())
        .expect("gauntlet names resolve");
    cres_bench::emit_campaign_reports("e3", &summary);

    let widths = [18, 12, 12, 12, 12, 10];
    cres_bench::row(
        &[
            &"attack",
            &"CRES det",
            &"CRES lat",
            &"passive det",
            &"passive lat",
            &"wins(CRES)",
        ],
        &widths,
    );
    cres_bench::rule(&widths);

    let mut results = summary.results.iter();
    let mut cres_total = 0u32;
    let mut passive_total = 0u32;
    let mut runs_total = 0u32;
    for attack in &attacks {
        let mut cres = Cell::new();
        let mut passive = Cell::new();
        let mut cres_wins = 0u32;
        for _seed in SEEDS {
            for profile in PROFILES {
                let report = &results.next().expect("one result per cell").report;
                let a = &report.attacks[0];
                let cell = if profile == PlatformProfile::CyberResilient {
                    cres_wins += a.steps_achieved;
                    &mut cres
                } else {
                    &mut passive
                };
                cell.runs += 1;
                if a.detected() {
                    cell.detected += 1;
                }
                if let Some(l) = a.detection_latency {
                    cell.latency_sum += l;
                    cell.latency_n += 1;
                }
            }
        }
        cres_total += cres.detected;
        passive_total += passive.detected;
        runs_total += cres.runs;
        cres_bench::row(
            &[
                attack,
                &cres.rate(),
                &cres.latency(),
                &passive.rate(),
                &passive.latency(),
                &cres_wins,
            ],
            &widths,
        );
    }
    cres_bench::rule(&widths);
    println!(
        "overall detection: CRES {}/{runs_total}  |  passive {}/{runs_total}",
        cres_total, passive_total
    );
    println!(
        "\nexpected shape (paper §III-3/§V): the passive baseline detects only\n\
         hang-class events via its watchdog; the active monitor set detects\n\
         every class with latency bounded by the sampling period."
    );
    if let Some(telemetry) = summary.merged_telemetry() {
        println!("\n[e3] pipeline telemetry: {}", telemetry.summary_line());
        print!("{}", telemetry.stage_table());
    }
    summary.print_timing("e3");
}
