//! A1 — ablation: the correlation engine on vs off (raw alerting).
//!
//! Two measurements:
//!
//! 1. **engine-level false positives** — a year's worth of sparse benign
//!    Warning-grade noise (driver bugs producing occasional MPU denials) is
//!    fed to the correlation engine directly; the raw configuration raises
//!    an incident per denial, the correlating one only when denials cluster;
//! 2. **platform-level latency** — a real code-injection run confirms the
//!    engine costs nothing on true positives (Critical events classify
//!    immediately either way).
//!
//! Run: `cargo run --release -p cres-bench --bin a1_correlation`

use cres_bench::scenarios::try_build;
use cres_monitor::{Detail, MonitorEvent, Severity, Subject};
use cres_platform::campaign::{default_jobs, Campaign, ScenarioSpec};
use cres_platform::{PlatformConfig, PlatformProfile};
use cres_policy::DetectionCapability;
use cres_sim::{SimDuration, SimTime};
use cres_soc::addr::MasterId;
use cres_ssm::{CorrelationConfig, CorrelationEngine, HealthState};

/// Sparse benign noise: one denial every `gap` cycles for `n` events, plus
/// one genuine burst of 4 denials in a tight window.
fn noise_fp_count(enabled: bool) -> (u64, bool) {
    let mut engine = CorrelationEngine::new(CorrelationConfig {
        enabled,
        ..Default::default()
    });
    let deny = |at: u64| {
        MonitorEvent::new(
            SimTime::at_cycle(at),
            DetectionCapability::BusPolicing,
            Severity::Warning,
            Subject::Master(MasterId::CPU3),
            Detail::Text("denied W by CPU3 at 0x00000000 (driver bug)"),
        )
    };
    let mut fp = 0u64;
    // 50 sparse denials, far apart (outside any correlation window)
    for i in 0..50u64 {
        let at = i * 500_000;
        if engine
            .ingest(SimTime::at_cycle(at), &deny(at), HealthState::Healthy)
            .is_some()
        {
            fp += 1;
        }
    }
    // one real reconnaissance burst: 4 denials within 2k cycles
    let mut burst_caught = false;
    for i in 0..4u64 {
        let at = 40_000_000 + i * 500;
        if engine
            .ingest(SimTime::at_cycle(at), &deny(at), HealthState::Healthy)
            .is_some()
        {
            burst_caught = true;
        }
    }
    (fp, burst_caught)
}

fn main() {
    cres_bench::banner("A1", "Ablation: correlation engine on/off");

    println!("-- engine-level: 50 sparse benign denials + 1 genuine burst --");
    let widths = [14, 18, 18];
    cres_bench::row(
        &[&"correlation", &"false positives", &"burst caught"],
        &widths,
    );
    cres_bench::rule(&widths);
    for enabled in [true, false] {
        let (fp, burst) = noise_fp_count(enabled);
        cres_bench::row(
            &[
                &if enabled { "on (CRES)" } else { "off (raw)" },
                &fp,
                &if burst { "yes" } else { "NO" },
            ],
            &widths,
        );
    }
    cres_bench::rule(&widths);

    println!("\n-- platform-level: code-injection detection latency --");
    let widths = [14, 10, 12, 14, 10];
    cres_bench::row(
        &[
            &"correlation",
            &"events",
            &"incidents",
            &"det latency",
            &"reboots",
        ],
        &widths,
    );
    cres_bench::rule(&widths);
    // Both ablation arms are independent runs: fan out via the engine.
    let mut platform_campaign = Campaign::new(try_build);
    for enabled in [true, false] {
        let mut config = PlatformConfig::new(PlatformProfile::CyberResilient, 55);
        config.correlation_enabled = enabled;
        let duration = cres_bench::budget(1_000_000);
        let spec = ScenarioSpec::quiet(SimDuration::cycles(duration)).attack(
            "code-injection",
            SimTime::at_cycle(duration / 2),
            SimDuration::cycles(5_000),
        );
        platform_campaign.submit(
            format!("correlation={}", if enabled { "on" } else { "off" }),
            config,
            spec,
        );
    }
    let summary = platform_campaign
        .run_parallel(default_jobs())
        .expect("gauntlet names resolve");
    cres_bench::emit_campaign_reports("a1", &summary);
    for (enabled, result) in [true, false].into_iter().zip(&summary.results) {
        let report = &result.report;
        cres_bench::row(
            &[
                &if enabled { "on (CRES)" } else { "off (raw)" },
                &report.total_events,
                &report.total_incidents,
                &report
                    .attacks
                    .first()
                    .and_then(|a| a.detection_latency)
                    .map_or("missed".to_string(), |l| format!("{l}cy")),
                &report.reboots,
            ],
            &widths,
        );
    }
    cres_bench::rule(&widths);
    println!(
        "\nexpected shape: the raw configuration fires on every sparse benign\n\
         denial (≈50 false countermeasure triggers) where the correlating\n\
         engine fires only on the clustered burst — at identical latency for\n\
         genuinely critical events."
    );
    summary.print_aggregate("a1");
}
