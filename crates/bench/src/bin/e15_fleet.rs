//! E15 — fleet-scale simulation: N heterogeneous devices through the
//! sharded fleet runner, correlated by the streaming fleet SOC.
//!
//! Three questions, all answered from the same sweep:
//!
//! * **throughput** — devices/sec over N ∈ {100, 1k, 10k} at 1/2/8
//!   workers (the headline the pooling PRs were building toward);
//! * **determinism** — the fleet verdict must be byte-identical across
//!   worker counts at every size (hard assert, mirrors
//!   `tests/fleet_determinism.rs` at scale);
//! * **warmth** — per-shard `PlatformPool`s must run ≥90% provisioning
//!   hit rate in steady state (hard assert; re-provisioning per device
//!   would be a ~50x throughput cliff).
//!
//! A second section fixes the size and varies the attack mix
//! (quiet / standard / one-signature campaign) to show the SOC's
//! cross-device correlation: campaign incidents, lateral-movement
//! chains and fleet-wide quarantine escalation.
//!
//! Run: `cargo run --release -p cres-bench --bin e15_fleet`
//!
//! * `CRES_FAST=1` shrinks fleet sizes and device slices (CI smoke);
//! * `CRES_JOBS=<n>` sets the worker count for the mix section;
//! * `CRES_REPORT_DIR=<dir>` writes `e15.json` (verdicts only — no
//!   wall-clock fields — so two runs diff byte-identical).

use cres_fleet::spec::AttackMix;
use cres_fleet::{run_fleet, FleetConfig, FleetIncident, FleetReport, FleetSocConfig};
use cres_obs::lint::{check_jsonl, check_prom};
use cres_obs::{fleet_jsonl, fleet_prometheus, incident_dossiers, observe_fleet, FleetObservation};
use cres_platform::campaign::default_jobs;

const WORKER_SWEEP: [usize; 3] = [1, 2, 8];
const SEED: u64 = 2019;

/// Devices per shard before the ≥90% pool hit-rate bar applies: below
/// this, per-shard cold starts (one provisioning miss per cell) dominate
/// the ratio arithmetically, not because the pool regressed.
const STEADY_DEVICES_PER_SHARD: usize = 50;

fn sizes() -> Vec<u32> {
    if cres_bench::fast_mode() {
        vec![60, 240]
    } else {
        vec![100, 1_000, 10_000]
    }
}

fn fleet_config(devices: u32, mix: AttackMix) -> FleetConfig {
    let mut config = FleetConfig::new(devices, SEED);
    if cres_bench::fast_mode() {
        config.device_cycles = 60_000;
    }
    config.mix = mix;
    config
}

fn run(config: &FleetConfig, workers: usize) -> FleetReport {
    run_fleet(config, workers, cres_attacks::catalog::try_build).expect("fleet mix resolves")
}

fn observe(config: &FleetConfig, workers: usize) -> FleetObservation {
    observe_fleet(
        config,
        &FleetSocConfig::default(),
        workers,
        cres_attacks::catalog::try_build,
    )
    .expect("fleet mix resolves")
}

fn incident_counts(report: &FleetReport) -> (usize, usize) {
    let campaigns = report
        .verdict
        .incidents
        .iter()
        .filter(|i| matches!(i, FleetIncident::CoordinatedCampaign { .. }))
        .count();
    (campaigns, report.verdict.incidents.len() - campaigns)
}

fn main() {
    cres_bench::banner(
        "E15",
        "Fleet-scale simulation: sharded devices behind a streaming fleet SOC",
    );

    let widths = [7usize, 7, 11, 10, 9, 9, 11, 10, 9];
    cres_bench::row(
        &[
            &"devices",
            &"workers",
            &"devices/s",
            &"wall ms",
            &"attacked",
            &"detected",
            &"quarantine",
            &"incidents",
            &"pool hit",
        ],
        &widths,
    );
    cres_bench::rule(&widths);

    // label -> canonical verdict JSON, emitted at the end (deterministic
    // fields only, so CI can diff two runs byte for byte)
    let mut emitted: Vec<(String, String)> = Vec::new();

    let sizes = sizes();
    let largest = *sizes.last().expect("size sweep is non-empty");
    // the largest standard-mix fleet's summary stream, kept for the
    // export-plane section (captured on the final sweep run — the
    // observer hook sees the same device-order stream any worker count
    // produces, so which run we capture from is immaterial)
    let mut sweep_observation: Option<FleetObservation> = None;

    for &devices in &sizes {
        let config = fleet_config(devices, AttackMix::standard());
        let mut reference: Option<String> = None;
        for workers in WORKER_SWEEP {
            let report = if devices == largest && workers == WORKER_SWEEP[WORKER_SWEEP.len() - 1] {
                let observation = observe(&config, workers);
                let report = observation.report.clone();
                sweep_observation = Some(observation);
                report
            } else {
                run(&config, workers)
            };
            let json = report.verdict.to_json();
            // determinism: sharding must be a pure scheduling optimisation
            match &reference {
                None => reference = Some(json.clone()),
                Some(expected) => assert_eq!(
                    expected, &json,
                    "fleet verdict diverged at {devices} devices / {workers} workers"
                ),
            }
            // warmth: steady-state shards must hit the provisioning cache.
            // Every shard pays its own cold start (one miss per
            // provisioning cell), so the 90% bar applies once each shard
            // has enough devices to amortise it.
            let pool = report.pool_stats();
            let steady = devices as usize >= workers * STEADY_DEVICES_PER_SHARD;
            if steady {
                assert!(
                    pool.hit_rate() >= 0.90,
                    "{devices} devices / {workers} workers: pool hit rate {:.3} < 0.90 ({pool:?})",
                    pool.hit_rate()
                );
            }
            assert!(
                report.verdict.attacked > 0,
                "standard mix produced no attacks"
            );
            let (campaigns, lateral) = incident_counts(&report);
            cres_bench::row(
                &[
                    &devices,
                    &workers,
                    &format!("{:.0}", report.devices_per_sec),
                    &format!("{:.0}", report.wall.as_secs_f64() * 1e3),
                    &report.verdict.attacked,
                    &report.verdict.detected,
                    &report.verdict.quarantined,
                    &format!("{campaigns}c/{lateral}l"),
                    &format!(
                        "{:.1}%{}",
                        pool.hit_rate() * 100.0,
                        if steady { "" } else { "*" }
                    ),
                ],
                &widths,
            );
            emitted.push((format!("n{devices}/w{workers}"), json));
        }
    }
    cres_bench::rule(&widths);
    println!("verdicts byte-identical across {WORKER_SWEEP:?} workers at every size");
    println!("(* = shards too small to amortise cold provisioning; hit-rate bar not applied)\n");

    // -- attack-mix section: what the fleet SOC actually correlates --
    let mix_devices = if cres_bench::fast_mode() { 80 } else { 400 };
    let jobs = default_jobs();
    // kept for the export-plane section: the campaign mix is the one
    // guaranteed to raise fleet incidents worth a dossier
    let mut campaign_observation: Option<FleetObservation> = None;
    println!("attack-mix correlation at {mix_devices} devices ({jobs} workers):");
    for (name, mix) in [
        ("quiet", AttackMix::quiet()),
        ("standard", AttackMix::standard()),
        ("campaign", AttackMix::campaign("code-injection")),
    ] {
        let config = fleet_config(mix_devices, mix);
        let observation = observe(&config, jobs);
        let report = observation.report.clone();
        if name == "campaign" {
            campaign_observation = Some(observation);
        }
        let verdict = &report.verdict;
        let (campaigns, lateral) = incident_counts(&report);
        println!(
            "  {name:<10} attacked {:>4}  detected {:>4}  missed {:>3}  quarantined {:>4}  \
             campaigns {campaigns}  lateral {lateral}  signatures {}",
            verdict.attacked,
            verdict.detected,
            verdict.missed,
            verdict.quarantined,
            verdict.signatures.len(),
        );
        match name {
            "quiet" => {
                assert_eq!(verdict.attacked, 0, "quiet fleet was attacked");
                assert!(verdict.incidents.is_empty(), "quiet fleet raised incidents");
            }
            "campaign" => {
                assert!(
                    campaigns >= 1,
                    "60% single-signature exposure must correlate into a campaign"
                );
                assert_eq!(verdict.signatures.len(), 1);
            }
            _ => assert!(verdict.attacked > 0),
        }
        emitted.push((format!("mix-{name}/n{mix_devices}"), verdict.to_json()));
    }

    // -- export plane: fleet artifacts, linted and worker-invariant --
    let observation = campaign_observation.expect("campaign mix ran");
    let jsonl = fleet_jsonl(&observation);
    let prom = fleet_prometheus(&observation.report.verdict);
    let jsonl_records = check_jsonl(&jsonl).expect("fleet JSONL failed lint");
    let prom_samples = check_prom(&prom).expect("fleet Prometheus exposition failed lint");
    // the artifacts themselves (not just the verdict) must be byte-equal
    // across worker counts — re-observe the same fleet single-threaded
    let single = observe(&observation.config, 1);
    assert_eq!(
        jsonl,
        fleet_jsonl(&single),
        "fleet JSONL diverged between {jobs} workers and 1"
    );
    assert_eq!(
        prom,
        fleet_prometheus(&single.report.verdict),
        "fleet Prometheus exposition diverged between {jobs} workers and 1"
    );
    println!(
        "\nexport plane: {jsonl_records} JSONL records / {prom_samples} Prometheus samples, \
         linted, byte-identical at 1 and {jobs} workers"
    );

    // -- incident forensics: every fleet incident becomes a dossier and
    //    every cited evidence record must carry a verifying proof --
    const MAX_CARRIERS: usize = 4;
    let reconstructions =
        incident_dossiers(&observation, cres_attacks::catalog::try_build, MAX_CARRIERS);
    assert!(
        !reconstructions.is_empty(),
        "campaign mix raised no fleet incidents to reconstruct"
    );
    for reconstruction in &reconstructions {
        let dossier = &reconstruction.dossier;
        assert!(
            reconstruction.fully_verified(),
            "incident {:?}: a citation, re-run digest or fleet-root proof failed:\n{}",
            dossier.signature,
            dossier.render()
        );
        println!(
            "dossier {:>9} \"{}\": {} carriers reconstructed (cap {MAX_CARRIERS}), \
             {} citations, all Merkle proofs verify",
            if dossier.campaign {
                "campaign"
            } else {
                "lateral"
            },
            dossier.signature,
            dossier.devices.len(),
            dossier.citation_count(),
        );
    }

    if let Some(dir) = std::env::var_os("CRES_REPORT_DIR") {
        let mut out = String::new();
        for (label, json) in &emitted {
            out.push_str(&format!("{{\"label\":\"{label}\",\"verdict\":{json}}}\n"));
        }
        let dir = std::path::Path::new(&dir);
        let path = dir.join("e15.json");
        std::fs::write(&path, out).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("\nwrote {}", path.display());
        // fleet-scale artifacts: the largest standard-mix fleet's event
        // log (10k devices on a full run) plus the campaign-mix exports —
        // all deterministic bytes, safe for CI's run-twice diff
        let sweep = sweep_observation.expect("size sweep ran");
        for (file, contents) in [
            ("e15_fleet.jsonl", fleet_jsonl(&sweep)),
            ("e15_campaign.jsonl", jsonl),
            ("e15_campaign.prom", prom),
        ] {
            let path = dir.join(file);
            std::fs::write(&path, contents)
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            println!("wrote {}", path.display());
        }
    }

    println!(
        "\nE15 complete: fleet verdicts deterministic, shard pools warm, \
         incident dossiers proof-verified."
    );
}
