//! E14 — the availability-vs-detection frontier: graded degradation tiers
//! (the response policy engine) vs passive reboot vs watchdog-only, swept
//! across an attack-intensity ladder.
//!
//! The policy axis isolates *response strategy*:
//!
//! * **cres-tiers** — full CRES monitors, active planner, policy engine
//!   armed: per-resource circuit breakers and graded tiers
//!   (`Full → ShedNonCritical → CriticalOnly → SafeHalt`) with hysteresis.
//! * **passive-reboot** — the *same monitors* (so detection is equal by
//!   construction) but a reboot-only planner and no policy engine: every
//!   incident answers with a global reboot.
//! * **watchdog-only** — the passive baseline: no runtime monitors at all;
//!   the watchdog's hang detection is the only tripwire.
//!
//! Each cell pairs an attack run with a quiet twin of the same policy, so
//! "critical availability" is the relay's delivered step fraction against
//! its own attack-free throughput — comparable across policies that differ
//! in reboot duty cycle.
//!
//! Run: `cargo run --release -p cres-bench --bin e14_frontier`

use cres_bench::scenarios::try_build;
use cres_platform::campaign::{default_jobs, Campaign, ScenarioSpec};
use cres_platform::{PlatformConfig, PlatformProfile};
use cres_response::PolicyConfig;
use cres_sim::{SimDuration, SimTime};
use cres_ssm::PlannerMode;

const FULL_DURATION: u64 = 1_500_000;
const SEED: u64 = 42;

fn duration() -> u64 {
    cres_bench::budget(FULL_DURATION)
}

const POLICIES: [&str; 3] = ["cres-tiers", "passive-reboot", "watchdog-only"];

fn policy_config(policy: &str) -> PlatformConfig {
    match policy {
        "cres-tiers" => {
            let mut config = PlatformConfig::new(PlatformProfile::CyberResilient, SEED);
            config.policy = PolicyConfig::enabled();
            config
        }
        "passive-reboot" => {
            let mut config = PlatformConfig::new(PlatformProfile::CyberResilient, SEED);
            config.planner_override = Some(PlannerMode::PassiveRebootOnly);
            config
        }
        "watchdog-only" => PlatformConfig::new(PlatformProfile::PassiveTrust, SEED),
        other => unreachable!("unknown policy {other}"),
    }
}

const INTENSITIES: [&str; 3] = ["low", "medium", "high"];

/// The intensity ladder: each rung adds vectors and density. Attack
/// offsets scale with the active budget so every wave still fires under
/// `CRES_FAST`.
fn intensity_spec(level: &str) -> ScenarioSpec {
    let at = |full: u64| SimTime::at_cycle(full * duration() / FULL_DURATION);
    let spec = ScenarioSpec::quiet(SimDuration::cycles(duration()));
    match level {
        "low" => spec.attack("network-flood", at(200_000), SimDuration::cycles(6_000)),
        "medium" => spec
            .attack("network-flood", at(200_000), SimDuration::cycles(3_000))
            .attack("exploit-traffic", at(500_000), SimDuration::cycles(12_000)),
        "high" => spec
            .attack("network-flood", at(200_000), SimDuration::cycles(1_500))
            .attack("exploit-traffic", at(450_000), SimDuration::cycles(6_000))
            .attack("sensor-spoof", at(700_000), SimDuration::cycles(2_000))
            .attack("code-injection", at(900_000), SimDuration::cycles(20_000)),
        other => unreachable!("unknown intensity {other}"),
    }
}

fn main() {
    cres_bench::banner(
        "E14",
        "Availability-vs-detection frontier: graded tiers vs passive reboot vs watchdog",
    );

    // Submission order per policy: quiet twin first, then one attack run
    // per intensity rung. The quiet twin supplies every rung's
    // critical-step denominator.
    let mut campaign = Campaign::new(try_build);
    for policy in POLICIES {
        let config = policy_config(policy);
        campaign.submit(
            format!("{policy}/quiet"),
            config,
            ScenarioSpec::quiet(SimDuration::cycles(duration())),
        );
        for level in INTENSITIES {
            campaign.submit(format!("{policy}/{level}"), config, intensity_spec(level));
        }
    }
    let summary = campaign
        .run_parallel(default_jobs())
        .expect("catalog names resolve");
    cres_bench::emit_campaign_reports("e14", &summary);

    let widths = [10, 16, 10, 14, 14, 9, 6, 18];
    cres_bench::row(
        &[
            &"intensity",
            &"policy",
            &"detected",
            &"crit avail",
            &"non-crit",
            &"reboots",
            &"wins",
            &"tier (peak/final)",
        ],
        &widths,
    );
    cres_bench::rule(&widths);

    let mut results = summary.results.iter();
    // frontier[level] -> (cres detection, cres avail, passive detection, passive avail)
    let mut frontier = vec![(0.0f64, 0.0f64, 0.0f64, 0.0f64); INTENSITIES.len()];
    for policy in POLICIES {
        let quiet = &results.next().expect("quiet twin per policy").report;
        for (index, level) in INTENSITIES.iter().enumerate() {
            let report = &results.next().expect("attack run per rung").report;
            let crit_avail = report.critical_steps as f64 / quiet.critical_steps.max(1) as f64;
            let detection = report.detection_rate();
            let (noncrit, tiers) = match &report.availability_detail {
                Some(detail) => (
                    cres_bench::pct(detail.noncritical_availability()),
                    format!("{} / {}", detail.peak_tier, detail.final_tier),
                ),
                None => ("—".to_string(), "—".to_string()),
            };
            if policy == "cres-tiers" {
                frontier[index].0 = detection;
                frontier[index].1 = crit_avail;
            } else if policy == "passive-reboot" {
                frontier[index].2 = detection;
                frontier[index].3 = crit_avail;
            }
            cres_bench::row(
                &[
                    level,
                    &policy,
                    &cres_bench::pct(detection),
                    &cres_bench::pct(crit_avail),
                    &noncrit,
                    &report.reboots,
                    &report.attacker_wins,
                    &tiers,
                ],
                &widths,
            );
        }
    }
    cres_bench::rule(&widths);

    println!("\nfrontier (seed {SEED}): graded tiers vs passive reboot at equal monitors");
    for (index, level) in INTENSITIES.iter().enumerate() {
        let (cres_det, cres_avail, passive_det, passive_avail) = frontier[index];
        let dominated = cres_det >= passive_det && cres_avail > passive_avail;
        println!(
            "  {level:<8} tiers ({}, {}) vs reboot ({}, {}) -> {}",
            cres_bench::pct(cres_det),
            cres_bench::pct(cres_avail),
            cres_bench::pct(passive_det),
            cres_bench::pct(passive_avail),
            if dominated {
                "tiers dominate"
            } else {
                "NOT dominated"
            }
        );
    }
    println!(
        "\nexpected shape: cres-tiers and passive-reboot detect identically (same\n\
         monitor fleet); the tiers row holds critical availability near the quiet\n\
         baseline by shedding non-critical load instead of paying the global\n\
         reboot duty cycle; watchdog-only keeps service up by never responding —\n\
         at the price of detecting (almost) nothing."
    );
    if let Some(telemetry) = summary.merged_telemetry() {
        println!("\n[e14] pipeline telemetry: {}", telemetry.summary_line());
        print!("{}", telemetry.stage_table());
    }
    summary.print_aggregate("e14");
}
