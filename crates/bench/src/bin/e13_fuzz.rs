//! E13 — generative scenario fuzzing.
//!
//! Generates a seed-deterministic corpus of 100+ multi-stage attack
//! scenarios (`cres-scenario`'s DSL + generator), pushes it through the
//! campaign engine on the cyber-resilient profile, and classifies every
//! scenario as detected / degraded / missed. Any pinned regression
//! fixture under `tests/fixtures/regressions/` is replayed and must still
//! reproduce its recorded classification — a divergence fails the run.
//!
//! ```text
//! e13_fuzz [--seed N]        # default seed 42
//! ```
//!
//! Environment:
//!
//! * `CRES_FAST=1` — run only the first 16 corpus scenarios (CI smoke);
//!   generation itself always produces the full corpus.
//! * `CRES_REPORT_DIR=<dir>` — write `e13_fuzz.json` (one classification
//!   record per line, deterministic) and `e13_corpus.toml` (the full
//!   corpus in DSL form) for artifact upload and determinism diffing.
//! * `CRES_PIN_DIR=<dir>` — shrink each distinct miss and write the
//!   minimized scenario as a pinned `.toml` fixture into the directory.
//! * `CRES_JOBS=<n>` — worker threads (default: all cores).

use cres_bench::{banner, fast_mode, row, rule};
use cres_platform::campaign::default_jobs;
use cres_platform::PlatformProfile;
use cres_scenario::doc::Classification;
use cres_scenario::{
    classify, generate, parse, pin, run_one, serialize, shrink, verify_pinned, GenKnobs,
    ScenarioDoc,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const PROFILE: PlatformProfile = PlatformProfile::CyberResilient;
const FAST_SUBSET: usize = 16;

fn regressions_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/regressions")
}

/// Loads every pinned fixture, sorted by file name for determinism.
fn load_pinned() -> Vec<(PathBuf, ScenarioDoc)> {
    let dir = regressions_dir();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|path| {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
            let doc = parse(&text).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()));
            (path, doc)
        })
        .collect()
}

fn main() -> ExitCode {
    let mut seed = 42u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse().ok()) else {
                    eprintln!("usage: e13_fuzz [--seed N]");
                    return ExitCode::from(2);
                };
                seed = v;
            }
            other => {
                eprintln!("unknown argument {other:?}\nusage: e13_fuzz [--seed N]");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    banner("E13", "generative scenario fuzzing (DSL + corpus gauntlet)");
    let knobs = GenKnobs::default();
    let corpus = generate(seed, &knobs);
    let ran = if fast_mode() {
        FAST_SUBSET.min(corpus.len())
    } else {
        corpus.len()
    };
    println!(
        "seed {seed}: {} scenarios generated, running {ran}{}",
        corpus.len(),
        if ran < corpus.len() {
            " (CRES_FAST subset)"
        } else {
            ""
        }
    );

    let runs = match cres_scenario::run_corpus(&corpus[..ran], PROFILE, seed, default_jobs()) {
        Ok(runs) => runs,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let mut counts = [0usize; 3];
    for run in &runs {
        counts[match run.outcome.classification {
            Classification::Detected => 0,
            Classification::Degraded => 1,
            Classification::Missed => 2,
        }] += 1;
    }
    let widths = [28, 14, 40];
    rule(&widths);
    row(&[&"scenario", &"outcome", &"missed attacks"], &widths);
    rule(&widths);
    for run in &runs {
        if run.outcome.classification == Classification::Detected {
            continue;
        }
        row(
            &[
                &run.name,
                &run.outcome.classification.name(),
                &run.outcome.missed.join(", "),
            ],
            &widths,
        );
    }
    rule(&widths);
    println!(
        "{ran} scenarios: {} detected, {} degraded, {} missed",
        counts[0], counts[1], counts[2]
    );

    // shrink + pin each distinct miss signature when asked to
    if let Some(pin_dir) = std::env::var_os("CRES_PIN_DIR") {
        let pin_dir = PathBuf::from(pin_dir);
        std::fs::create_dir_all(&pin_dir)
            .unwrap_or_else(|e| panic!("creating {}: {e}", pin_dir.display()));
        let mut pinned_signatures: Vec<Vec<String>> = Vec::new();
        for run in &runs {
            if run.outcome.missed.is_empty() || pinned_signatures.contains(&run.outcome.missed) {
                continue;
            }
            pinned_signatures.push(run.outcome.missed.clone());
            let doc = corpus
                .iter()
                .find(|d| d.name == run.name)
                .expect("corpus entry for run");
            let mut runner = |candidate: &ScenarioDoc| {
                let report = run_one(candidate, PROFILE, seed).expect("corpus names resolve");
                classify(candidate, &report)
            };
            let mut shrunk = shrink(doc, &mut runner);
            shrunk.name = format!("pin-{}", doc.name);
            let outcome = runner(&shrunk);
            let pinned = pin(&shrunk, PROFILE, seed, &outcome);
            let path = pin_dir.join(format!("{}.toml", pinned.name));
            std::fs::write(&path, serialize(&pinned))
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            println!(
                "pinned {} ({} stages, {} cycles): {}",
                pinned.name,
                pinned.stages.len(),
                pinned.duration,
                path.display()
            );
        }
        if pinned_signatures.is_empty() {
            println!("no misses to pin");
        }
    }

    // replay every checked-in regression fixture
    let pinned = load_pinned();
    let mut fixture_failures = 0usize;
    for (path, doc) in &pinned {
        match verify_pinned(doc) {
            Ok(outcome) => println!(
                "fixture {:<28} replays {} (missed: {})",
                doc.name,
                outcome.classification.name(),
                if outcome.missed.is_empty() {
                    "none".to_string()
                } else {
                    outcome.missed.join(", ")
                }
            ),
            Err(message) => {
                eprintln!("FIXTURE DIVERGED {}: {message}", path.display());
                fixture_failures += 1;
            }
        }
    }
    if pinned.is_empty() {
        println!("no pinned regression fixtures under tests/fixtures/regressions/");
    }

    // deterministic artifacts for CI upload + determinism diffing
    if let Some(dir) = std::env::var_os("CRES_REPORT_DIR") {
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
        let mut json = String::new();
        json.push_str(&format!(
            "{{\"seed\":{seed},\"corpus\":{},\"ran\":{ran},\"detected\":{},\"degraded\":{},\"missed\":{}}}\n",
            corpus.len(),
            counts[0],
            counts[1],
            counts[2]
        ));
        for run in &runs {
            let missed: Vec<String> = run
                .outcome
                .missed
                .iter()
                .map(|m| format!("\"{m}\""))
                .collect();
            json.push_str(&format!(
                "{{\"name\":\"{}\",\"classification\":\"{}\",\"missed\":[{}]}}\n",
                run.name,
                run.outcome.classification.name(),
                missed.join(",")
            ));
        }
        let path = dir.join("e13_fuzz.json");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        let corpus_text: Vec<String> = corpus.iter().map(serialize).collect();
        let path = dir.join("e13_corpus.toml");
        std::fs::write(&path, corpus_text.join("\n# ---\n\n"))
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    }

    if fixture_failures > 0 {
        eprintln!("{fixture_failures} pinned fixture(s) diverged");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
