//! E11 — self-resilience: detection performance while the security
//! pipeline *itself* is under fault injection.
//!
//! Every other experiment assumes the resilience layer is perfectly
//! reliable. E11 drops that assumption: the fault plane
//! (`cres_platform::faultplane`) injects event loss/delay/reorder/
//! corruption on the monitor→SSM interconnect, stalls and permanently
//! crashes seed-chosen monitors, and drops response commands — while the
//! pipeline fights back with bounded sim-clock retry, heartbeat
//! quarantine and sensing-degraded correlation.
//!
//! The sweep is `event loss ∈ {0%, 5%, 10%, 20%, 30%}` × `crashed
//! monitors ∈ {0, 1, 2}`, each cell averaged over attacks × seeds via the
//! campaign engine. The acceptance bar (pinned here and in
//! `crates/bench/tests/selfheal.rs`): ≥ 90% detection at 10% loss with
//! one crashed monitor, with degraded mode engaged and zero panics.
//!
//! Run: `cargo run --release -p cres-bench --bin e11_selfheal`

use cres_bench::scenarios::try_build;
use cres_platform::campaign::{default_jobs, Campaign, ScenarioSpec};
use cres_platform::{FaultPlaneConfig, FaultPlaneStats, PlatformConfig, PlatformProfile};
use cres_sim::{SimDuration, SimTime};

const LOSS_SWEEP: [f64; 5] = [0.0, 0.05, 0.10, 0.20, 0.30];
const CRASH_SWEEP: [u32; 3] = [0, 1, 2];
const SEEDS: [u64; 3] = [11, 42, 1979];
/// Attack mix spanning the monitor fleet: bus/NIC-visible, memory-guard
/// visible, sensor-envelope visible and (inline) CFI-visible.
const ATTACKS: [&str; 4] = [
    "network-flood",
    "memory-probe",
    "sensor-spoof",
    "code-injection",
];
/// Crashing monitors die well before the attack starts, so detection runs
/// entirely on the degraded fleet.
const CRASH_AT: u64 = 100_000;

struct Cell {
    detected: u32,
    runs: u32,
    latency_sum: u64,
    latency_n: u32,
    degraded: u32,
    stats: FaultPlaneStats,
}

impl Cell {
    fn new() -> Self {
        Cell {
            detected: 0,
            runs: 0,
            latency_sum: 0,
            latency_n: 0,
            degraded: 0,
            stats: FaultPlaneStats::default(),
        }
    }

    fn rate(&self) -> f64 {
        f64::from(self.detected) / f64::from(self.runs.max(1))
    }

    fn latency(&self) -> String {
        if self.latency_n == 0 {
            "—".into()
        } else {
            format!("{}cy", self.latency_sum / u64::from(self.latency_n))
        }
    }
}

fn main() {
    cres_bench::banner(
        "E11",
        "Self-resilience: detection under faults in the security pipeline itself",
    );
    let duration = cres_bench::budget(1_000_000);

    // Submission order: (loss, crashed, attack, seed) — consumed
    // positionally below.
    let mut campaign = Campaign::new(try_build);
    for loss in LOSS_SWEEP {
        for crashed in CRASH_SWEEP {
            for attack in ATTACKS {
                for seed in SEEDS {
                    let mut config = PlatformConfig::new(PlatformProfile::CyberResilient, seed);
                    config.faultplane = FaultPlaneConfig::sweep_cell(loss, crashed, CRASH_AT);
                    campaign.submit(
                        format!("loss={loss:.2}/crash={crashed}/{attack}/{seed}"),
                        config,
                        ScenarioSpec::quiet(SimDuration::cycles(duration)).attack(
                            attack,
                            SimTime::at_cycle(200_000),
                            SimDuration::cycles(4_000),
                        ),
                    );
                }
            }
        }
    }
    let summary = campaign
        .run_parallel(default_jobs())
        .expect("gauntlet names resolve");
    cres_bench::emit_campaign_reports("e11", &summary);

    let widths = [8, 8, 10, 10, 10, 10, 10, 10, 10];
    cres_bench::row(
        &[
            &"loss",
            &"crashed",
            &"detected",
            &"latency",
            &"ev lost",
            &"recovered",
            &"retries",
            &"quarant.",
            &"degraded",
        ],
        &widths,
    );
    cres_bench::rule(&widths);

    let mut results = summary.results.iter();
    let mut acceptance: Option<(f64, u32)> = None;
    for loss in LOSS_SWEEP {
        for crashed in CRASH_SWEEP {
            let mut cell = Cell::new();
            for _attack in ATTACKS {
                for _seed in SEEDS {
                    let report = &results.next().expect("one result per cell").report;
                    cell.runs += 1;
                    let a = &report.attacks[0];
                    if a.detected() {
                        cell.detected += 1;
                    }
                    if let Some(latency) = a.detection_latency {
                        cell.latency_sum += latency;
                        cell.latency_n += 1;
                    }
                    let stats = report
                        .faultplane
                        .expect("fault plane enabled for every cell");
                    cell.degraded += u32::from(stats.degraded_correlation);
                    cell.stats.events_lost += stats.events_lost;
                    cell.stats.recovered_deliveries += stats.recovered_deliveries;
                    cell.stats.delivery_retries += stats.delivery_retries;
                    cell.stats.response_retries += stats.response_retries;
                    cell.stats.monitors_quarantined += stats.monitors_quarantined;
                }
            }
            cres_bench::row(
                &[
                    &cres_bench::pct(loss),
                    &crashed,
                    &cres_bench::pct(cell.rate()),
                    &cell.latency(),
                    &cell.stats.events_lost,
                    &cell.stats.recovered_deliveries,
                    &(cell.stats.delivery_retries + cell.stats.response_retries),
                    &cell.stats.monitors_quarantined,
                    &format!("{}/{}", cell.degraded, cell.runs),
                ],
                &widths,
            );
            if loss == 0.10 && crashed == 1 {
                acceptance = Some((cell.rate(), cell.degraded));
            }
        }
    }
    cres_bench::rule(&widths);

    let (rate, degraded) = acceptance.expect("sweep contains the 10%/1-crash cell");
    println!(
        "\nacceptance cell (10% loss, 1 crashed monitor): detection {}, degraded mode in {degraded} runs",
        cres_bench::pct(rate)
    );
    assert!(
        rate >= 0.90,
        "detection {rate:.3} under 10% loss + 1 crashed monitor breached the 90% bar"
    );
    assert!(
        degraded > 0,
        "no run engaged sensing-degraded mode despite a crashed monitor"
    );
    println!("  ≥90% detection with degraded-mode compensation engaged — bar met.");

    println!(
        "\nexpected shape: detection stays near 100% on an intact fleet even\n\
         at 30% event loss (retry recovers most faults; correlation absorbs\n\
         the rest); crashing monitors costs coverage for the attacks only\n\
         they see, and heartbeat quarantine + widened windows claw most of\n\
         it back instead of the SSM going silently blind."
    );
    summary.print_aggregate("e11");
}
