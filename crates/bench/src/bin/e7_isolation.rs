//! E7 — physical isolation of the security manager (claim C2): attacks on
//! the security subsystem itself against the isolated-SSM topology vs the
//! shared-resource TEE topology.
//!
//! Four instruments:
//! 1. microarchitectural key extraction from the TEE (Spectre/Meltdown
//!    class),
//! 2. trusted-application downgrade (Project Zero's TrustZone attack),
//! 3. a bus-level probe of SSM-private memory from a compromised app core,
//! 4. an evidence-store wipe from the GPP.
//!
//! Run: `cargo run --release -p cres-bench --bin e7_isolation`

use cres_attacks::tee_attacks::{shared_cache_key_extraction, ta_downgrade};
use cres_platform::{Platform, PlatformConfig, PlatformProfile};
use cres_sim::SimTime;
use cres_soc::addr::MasterId;
use cres_soc::soc::layout;
use cres_tee::TaSigner;

struct Row {
    attack: &'static str,
    isolated: String,
    shared: String,
}

fn attack_platform(profile: PlatformProfile) -> Vec<String> {
    let mut outcomes = Vec::new();
    let mut p = Platform::new(PlatformConfig::new(profile, 2024));

    // 1. side-channel key extraction
    let r = shared_cache_key_extraction(&mut p.tee, "device-root");
    outcomes.push(if r.succeeded() { "EXTRACTED".into() } else { "blocked".into() });

    // 2. TA downgrade: attacker replays the genuinely-signed v1 keystore.
    // Rollback protection is a *TEE software* property; the attack here
    // tests whether the platform's TEE accepts it. Both platforms ship
    // rollback protection on, so craft the paper's scenario: the shared
    // deployment is also the one whose vendors historically shipped
    // without it. Model that faithfully:
    let vendor = cres_platform::provision::provision(&PlatformConfig::new(profile, 2024)).vendor;
    let old_ta = TaSigner::new(&vendor).sign("keystore", 1, b"keystore TA v1 (vulnerable)");
    let downgrade = if profile == PlatformProfile::CyberResilient {
        ta_downgrade(&mut p.tee, old_ta)
    } else {
        // shared/commercial deployment without rollback protection
        let mut weak = cres_tee::Tee::new(
            p.tee.deployment(),
            vendor.public.clone(),
            false,
        );
        weak.install_ta(TaSigner::new(&vendor).sign("keystore", 2, b"keystore TA v2"))
            .unwrap();
        ta_downgrade(&mut weak, old_ta)
    };
    outcomes.push(if downgrade.succeeded() { "DOWNGRADED".into() } else { "blocked".into() });

    // 3. bus probe of SSM-private memory from app core CPU1
    let now = SimTime::at_cycle(1);
    let probe = {
        let soc = &mut p.soc;
        soc.bus
            .read(now, MasterId::CPU1, layout::SSM_PRIVATE.0, 32, &soc.mem)
    };
    outcomes.push(match probe {
        Ok(_) => "READ SSM MEMORY".into(),
        Err(e) => format!("denied ({e})"),
    });

    // 4. evidence wipe from the GPP
    let wipe = match p.ssm.attack_surface() {
        Some(store) => {
            store.records_mut_for_attack().clear();
            "WIPED".to_string()
        }
        None => "unreachable".to_string(),
    };
    outcomes.push(wipe);

    outcomes
}

fn main() {
    cres_bench::banner(
        "E7",
        "Attacks on the security subsystem: isolated SSM vs shared-resource TEE",
    );
    let isolated = attack_platform(PlatformProfile::CyberResilient);
    let shared = attack_platform(PlatformProfile::TeeShared);
    let names = [
        "side-channel key extraction",
        "trusted-app downgrade",
        "bus probe of SSM memory",
        "evidence-store wipe",
    ];
    let rows: Vec<Row> = names
        .iter()
        .zip(isolated.into_iter().zip(shared))
        .map(|(attack, (isolated, shared))| Row {
            attack,
            isolated,
            shared,
        })
        .collect();

    let widths = [30, 26, 26];
    cres_bench::row(&[&"attack on security subsystem", &"isolated (CRES)", &"shared (TEE-style)"], &widths);
    cres_bench::rule(&widths);
    for r in &rows {
        cres_bench::row(&[&r.attack, &r.isolated, &r.shared], &widths);
    }
    cres_bench::rule(&widths);
    println!(
        "\nexpected shape (paper §V-1): every attack that requires shared\n\
         physical resources succeeds against the TEE-style deployment and is\n\
         structurally impossible against the physically isolated SSM."
    );
}
