//! E7 — physical isolation of the security manager (claim C2): attacks on
//! the security subsystem itself against the isolated-SSM topology vs the
//! shared-resource TEE topology.
//!
//! Four direct instruments:
//! 1. microarchitectural key extraction from the TEE (Spectre/Meltdown
//!    class),
//! 2. trusted-application downgrade (Project Zero's TrustZone attack),
//! 3. a bus-level probe of SSM-private memory from a compromised app core,
//! 4. an evidence-store wipe from the GPP.
//!
//! Plus a runtime sweep through the campaign engine: a DMA-exfiltration
//! scenario against both topologies across several seeds, confirming the
//! table's structural story dynamically.
//!
//! Run: `cargo run --release -p cres-bench --bin e7_isolation`

use cres_attacks::tee_attacks::{shared_cache_key_extraction, ta_downgrade};
use cres_bench::scenarios::try_build;
use cres_platform::campaign::{default_jobs, Campaign, ScenarioSpec};
use cres_platform::{Platform, PlatformConfig, PlatformProfile};
use cres_sim::{SimDuration, SimTime};
use cres_soc::addr::MasterId;
use cres_soc::soc::layout;
use cres_tee::TaSigner;

struct Row {
    attack: &'static str,
    isolated: String,
    shared: String,
}

fn attack_platform(profile: PlatformProfile) -> Vec<String> {
    let mut outcomes = Vec::new();
    let mut p = Platform::new(PlatformConfig::new(profile, 2024));

    // 1. side-channel key extraction
    let r = shared_cache_key_extraction(&mut p.tee, "device-root");
    outcomes.push(if r.succeeded() {
        "EXTRACTED".into()
    } else {
        "blocked".into()
    });

    // 2. TA downgrade: attacker replays the genuinely-signed v1 keystore.
    // Rollback protection is a *TEE software* property; the attack here
    // tests whether the platform's TEE accepts it. Both platforms ship
    // rollback protection on, so craft the paper's scenario: the shared
    // deployment is also the one whose vendors historically shipped
    // without it. Model that faithfully:
    let vendor = cres_platform::provision::provision(&PlatformConfig::new(profile, 2024)).vendor;
    let old_ta = TaSigner::new(&vendor).sign("keystore", 1, b"keystore TA v1 (vulnerable)");
    let downgrade = if profile == PlatformProfile::CyberResilient {
        ta_downgrade(&mut p.tee, old_ta)
    } else {
        // shared/commercial deployment without rollback protection
        let mut weak = cres_tee::Tee::new(p.tee.deployment(), vendor.public.clone(), false);
        weak.install_ta(TaSigner::new(&vendor).sign("keystore", 2, b"keystore TA v2"))
            .unwrap();
        ta_downgrade(&mut weak, old_ta)
    };
    outcomes.push(if downgrade.succeeded() {
        "DOWNGRADED".into()
    } else {
        "blocked".into()
    });

    // 3. bus probe of SSM-private memory from app core CPU1
    let now = SimTime::at_cycle(1);
    let probe = {
        let soc = &mut p.soc;
        soc.bus
            .read(now, MasterId::CPU1, layout::SSM_PRIVATE.0, 32, &soc.mem)
    };
    outcomes.push(match probe {
        Ok(_) => "READ SSM MEMORY".into(),
        Err(e) => format!("denied ({e})"),
    });

    // 4. evidence wipe from the GPP
    let wipe = match p.ssm.attack_surface() {
        Some(store) => {
            store.records_mut_for_attack().clear();
            "WIPED".to_string()
        }
        None => "unreachable".to_string(),
    };
    outcomes.push(wipe);

    outcomes
}

fn main() {
    cres_bench::banner(
        "E7",
        "Attacks on the security subsystem: isolated SSM vs shared-resource TEE",
    );
    let isolated = attack_platform(PlatformProfile::CyberResilient);
    let shared = attack_platform(PlatformProfile::TeeShared);
    let names = [
        "side-channel key extraction",
        "trusted-app downgrade",
        "bus probe of SSM memory",
        "evidence-store wipe",
    ];
    let rows: Vec<Row> = names
        .iter()
        .zip(isolated.into_iter().zip(shared))
        .map(|(attack, (isolated, shared))| Row {
            attack,
            isolated,
            shared,
        })
        .collect();

    let widths = [30, 26, 26];
    cres_bench::row(
        &[
            &"attack on security subsystem",
            &"isolated (CRES)",
            &"shared (TEE-style)",
        ],
        &widths,
    );
    cres_bench::rule(&widths);
    for r in &rows {
        cres_bench::row(&[&r.attack, &r.isolated, &r.shared], &widths);
    }
    cres_bench::rule(&widths);
    println!(
        "\nexpected shape (paper §V-1): every attack that requires shared\n\
         physical resources succeeds against the TEE-style deployment and is\n\
         structurally impossible against the physically isolated SSM."
    );

    // Runtime confirmation: the same topological story told dynamically —
    // a DMA exfiltration campaign against both deployments, fanned out
    // over seeds by the campaign engine.
    println!("\n-- runtime: dma-exfil campaign, isolated vs shared deployment --");
    const SWEEP_SEEDS: [u64; 3] = [7, 21, 2024];
    let profiles = [PlatformProfile::CyberResilient, PlatformProfile::TeeShared];
    let mut campaign = Campaign::new(try_build);
    for profile in profiles {
        for seed in SWEEP_SEEDS {
            campaign.submit(
                format!("dma-exfil/{profile}/{seed}"),
                PlatformConfig::new(profile, seed),
                ScenarioSpec::quiet(SimDuration::cycles(cres_bench::budget(800_000))).attack(
                    "dma-exfil",
                    SimTime::at_cycle(200_000),
                    SimDuration::cycles(4_000),
                ),
            );
        }
    }
    let summary = campaign
        .run_parallel(default_jobs())
        .expect("gauntlet names resolve");
    cres_bench::emit_campaign_reports("e7", &summary);
    let widths = [16, 12, 14, 14];
    cres_bench::row(
        &[
            &"deployment",
            &"detected",
            &"mean latency",
            &"attacker wins",
        ],
        &widths,
    );
    cres_bench::rule(&widths);
    for (index, profile) in profiles.iter().enumerate() {
        let reports = summary.results[index * SWEEP_SEEDS.len()..(index + 1) * SWEEP_SEEDS.len()]
            .iter()
            .map(|r| &r.report);
        let mut detected = 0u32;
        let mut latency_sum = 0u64;
        let mut latency_n = 0u64;
        let mut wins = 0u32;
        for report in reports {
            let a = &report.attacks[0];
            if a.detected() {
                detected += 1;
            }
            if let Some(l) = a.detection_latency {
                latency_sum += l;
                latency_n += 1;
            }
            wins += report.attacker_wins;
        }
        cres_bench::row(
            &[
                &profile.to_string(),
                &format!("{detected}/{}", SWEEP_SEEDS.len()),
                &latency_sum
                    .checked_div(latency_n)
                    .map_or("—".to_string(), |mean| format!("{mean}cy")),
                &wins,
            ],
            &widths,
        );
    }
    cres_bench::rule(&widths);
    summary.print_aggregate("e7");
}
