//! E1 — reproduces **Figure 1**: the core security functions, principles
//! and activities of the NIST RMF, NIST CSF and NCSC NIS frameworks.
//!
//! Run: `cargo run -p cres-bench --bin e1_figure1`

use cres_policy::framework::{render_figure1, CsfFunction, NisPrinciple};

fn main() {
    cres_bench::banner(
        "E1 (Figure 1)",
        "Core security functions, principles and activities",
    );
    print!("{}", render_figure1());
    println!();
    println!("association check:");
    for p in NisPrinciple::ALL {
        let funcs: Vec<String> = p.csf_functions().iter().map(|f| f.to_string()).collect();
        println!("  {:<50} -> {}", p.title(), funcs.join(" + "));
    }
    let covered: std::collections::HashSet<_> = NisPrinciple::ALL
        .iter()
        .flat_map(|p| p.csf_functions())
        .collect();
    println!(
        "\n4 NIS principles cover {}/{} CSF functions — matches the paper's Figure 1.",
        covered.len(),
        CsfFunction::ALL.len()
    );
}
