//! Self-resilience acceptance, pinned as tests: E11's headline cell (10%
//! event loss, one crashed monitor) must keep detection at or above 90%
//! with sensing-degraded compensation engaged, and the fault plane must be
//! accounting-independent of the telemetry layer — a telemetry-off run is
//! bit-identical outside the `telemetry` field, fault counters included.

use cres_bench::scenarios::try_build;
use cres_platform::campaign::{default_jobs, Campaign, ScenarioSpec};
use cres_platform::{FaultPlaneConfig, PlatformConfig, PlatformProfile};
use cres_sim::{SimDuration, SimTime};

const SEEDS: [u64; 3] = [11, 42, 1979];
const ATTACKS: [&str; 4] = [
    "network-flood",
    "memory-probe",
    "sensor-spoof",
    "code-injection",
];

/// Mirrors the `e11_selfheal` cell geometry: crash at 100k, attack at
/// 200k, full-budget run.
fn cell_spec(attack: &str) -> ScenarioSpec {
    ScenarioSpec::quiet(SimDuration::cycles(1_000_000)).attack(
        attack,
        SimTime::at_cycle(200_000),
        SimDuration::cycles(4_000),
    )
}

fn faulted_config(seed: u64, loss: f64, crashed: u32) -> PlatformConfig {
    let mut config = PlatformConfig::new(PlatformProfile::CyberResilient, seed);
    config.faultplane = FaultPlaneConfig::sweep_cell(loss, crashed, 100_000);
    config
}

#[test]
fn acceptance_cell_detection_stays_above_90_percent() {
    let mut campaign = Campaign::new(try_build);
    for attack in ATTACKS {
        for seed in SEEDS {
            campaign.submit(
                format!("{attack}/{seed}"),
                faulted_config(seed, 0.10, 1),
                cell_spec(attack),
            );
        }
    }
    let summary = campaign
        .run_parallel(default_jobs())
        .expect("gauntlet names resolve");

    let mut detected = 0u32;
    let mut degraded = 0u32;
    for result in &summary.results {
        let report = &result.report;
        detected += u32::from(report.attacks[0].detected());
        let stats = report.faultplane.expect("fault plane was enabled");
        assert_eq!(
            stats.monitors_crashed, 1,
            "{}: exactly one monitor must crash",
            result.label
        );
        degraded += u32::from(stats.degraded_correlation);
    }
    let runs = summary.results.len() as u32;
    let rate = f64::from(detected) / f64::from(runs);
    assert!(
        rate >= 0.90,
        "detection {detected}/{runs} under 10% loss + 1 crashed monitor is below the 90% bar"
    );
    assert!(
        degraded > 0,
        "no run engaged sensing-degraded mode despite a crashed monitor"
    );
}

#[test]
fn crashed_monitor_is_quarantined_and_evidenced() {
    let mut campaign = Campaign::new(try_build);
    campaign.submit(
        "quarantine",
        faulted_config(42, 0.0, 1),
        cell_spec("memory-probe"),
    );
    let report = &campaign.run_parallel(1).expect("known attacks").results[0].report;
    let stats = report.faultplane.expect("fault plane was enabled");
    assert_eq!(stats.monitors_crashed, 1);
    assert_eq!(
        stats.monitors_quarantined, 1,
        "heartbeat tracking must quarantine the crashed monitor"
    );
    assert!(
        stats.degraded_correlation,
        "quarantine must degrade sensing"
    );
}

#[test]
fn faultplane_report_is_bit_identical_outside_telemetry_field() {
    // Same faulted cell with telemetry on vs off: fault decisions come
    // from their own forked RNG stream and never read the sink, so only
    // the `telemetry` field may differ — fault counters included.
    let run = |telemetry: bool| {
        let mut config = faulted_config(7, 0.20, 1);
        config.telemetry.enabled = telemetry;
        let mut campaign = Campaign::new(try_build);
        campaign.submit("cell", config, cell_spec("network-flood"));
        campaign
            .run_parallel(1)
            .expect("known attacks")
            .results
            .remove(0)
            .report
    };
    let mut on = run(true);
    let off = run(false);
    assert!(on.telemetry.is_some());
    assert!(off.telemetry.is_none());
    on.telemetry = None;
    assert_eq!(
        on, off,
        "telemetry recording perturbed a fault-plane run (fault stats or sim state moved)"
    );
}

#[test]
fn all_quiet_faultplane_only_adds_the_stats_field() {
    // An armed fault plane with every probability at zero and no crashes
    // must be transparent: identical to the unfaulted platform everywhere
    // except the (all-zero) `faultplane` stats field itself. Telemetry is
    // off because an armed plane intentionally registers zeroed
    // `faultplane.*` counters in the metrics registry.
    let run = |armed: bool| {
        let mut config = PlatformConfig::new(PlatformProfile::CyberResilient, 99);
        config.faultplane.enabled = armed;
        config.telemetry.enabled = false;
        let mut campaign = Campaign::new(try_build);
        campaign.submit("cell", config, cell_spec("sensor-spoof"));
        campaign
            .run_parallel(1)
            .expect("known attacks")
            .results
            .remove(0)
            .report
    };
    let mut armed = run(true);
    let unfaulted = run(false);
    let stats = armed.faultplane.take().expect("armed run reports stats");
    assert_eq!(stats, Default::default(), "quiet plane must inject nothing");
    assert!(unfaulted.faultplane.is_none());
    assert_eq!(
        armed, unfaulted,
        "an all-quiet fault plane perturbed the simulation"
    );
}
