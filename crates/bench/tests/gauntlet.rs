//! Gauntlet coverage: the paper's central detection claim, pinned as a
//! test. The full attack gauntlet is detected by the cyber-resilient
//! profile, while the passive baseline — whose only detector is the
//! watchdog — sees none of it except the hang class.
//!
//! The sweep runs through the campaign engine (one job per
//! `attack × profile` cell) so the suite exercises the parallel path while
//! staying fast on multicore machines.

use cres_bench::scenarios::{try_build, GAUNTLET};
use cres_platform::campaign::{default_jobs, Campaign, ScenarioSpec};
use cres_platform::{PlatformConfig, PlatformProfile};
use cres_sim::{SimDuration, SimTime};

const SEED: u64 = 42;

/// Mirrors e3's cell: attack at 200k, long enough for the watchdog
/// (timeout 500k) to resolve hang-class events.
fn cell_spec(attack: &str) -> ScenarioSpec {
    ScenarioSpec::quiet(SimDuration::cycles(1_000_000)).attack(
        attack,
        SimTime::at_cycle(200_000),
        SimDuration::cycles(4_000),
    )
}

fn run_gauntlet(profile: PlatformProfile, attacks: &[&str]) -> Vec<(String, bool)> {
    let mut campaign = Campaign::new(try_build);
    for attack in attacks {
        campaign.submit(
            *attack,
            PlatformConfig::new(profile, SEED),
            cell_spec(attack),
        );
    }
    campaign
        .run_parallel(default_jobs())
        .expect("gauntlet names resolve")
        .results
        .into_iter()
        .map(|result| {
            let detected = result.report.attacks[0].detected();
            (result.label, detected)
        })
        .collect()
}

#[test]
fn cyber_resilient_detects_every_gauntlet_attack() {
    let outcomes = run_gauntlet(PlatformProfile::CyberResilient, &GAUNTLET);
    assert_eq!(outcomes.len(), GAUNTLET.len());
    let missed: Vec<&str> = outcomes
        .iter()
        .filter(|(_, detected)| !detected)
        .map(|(name, _)| name.as_str())
        .collect();
    assert!(
        missed.is_empty(),
        "CRES missed gauntlet attacks: {missed:?}"
    );
}

#[test]
fn passive_baseline_detects_no_gauntlet_attack() {
    // the gauntlet contains no hang-class attack, so the watchdog — the
    // passive platform's only detector — never fires
    let outcomes = run_gauntlet(PlatformProfile::PassiveTrust, &GAUNTLET);
    assert_eq!(outcomes.len(), GAUNTLET.len());
    let seen: Vec<&str> = outcomes
        .iter()
        .filter(|(_, detected)| *detected)
        .map(|(name, _)| name.as_str())
        .collect();
    assert!(
        seen.is_empty(),
        "passive baseline unexpectedly detected: {seen:?}"
    );
}

#[test]
fn watchdog_path_catches_system_hang_on_both_profiles() {
    for profile in [
        PlatformProfile::CyberResilient,
        PlatformProfile::PassiveTrust,
    ] {
        let outcomes = run_gauntlet(profile, &["system-hang"]);
        assert!(
            outcomes[0].1,
            "{profile} failed to detect system-hang via watchdog"
        );
    }
}
