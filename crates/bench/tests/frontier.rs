//! E14 acceptance, pinned as tier-1 tests: at seed 42 the graded-tier
//! policy engine delivers strictly higher critical-service availability
//! than the passive reboot-only planner at equal-or-better detection, and
//! the frontier campaign is bit-deterministic across worker counts
//! (`CRES_JOBS` ∈ {1, 2, 8} — exercised directly via `run_parallel`, which
//! is what the env knob feeds).

use cres_bench::scenarios::try_build;
use cres_platform::campaign::{Campaign, ScenarioSpec};
use cres_platform::{PlatformConfig, PlatformProfile, RunReport};
use cres_response::PolicyConfig;
use cres_sim::{SimDuration, SimTime};
use cres_ssm::{DegradationTier, PlannerMode};

const SEED: u64 = 42;
const DURATION: u64 = 900_000;

fn tiers_config() -> PlatformConfig {
    let mut config = PlatformConfig::new(PlatformProfile::CyberResilient, SEED);
    config.policy = PolicyConfig::enabled();
    config
}

fn passive_config() -> PlatformConfig {
    // same monitor fleet as the tiers row — detection is equal by
    // construction; only the response strategy differs
    let mut config = PlatformConfig::new(PlatformProfile::CyberResilient, SEED);
    config.planner_override = Some(PlannerMode::PassiveRebootOnly);
    config
}

fn attack_spec() -> ScenarioSpec {
    ScenarioSpec::quiet(SimDuration::cycles(DURATION))
        .attack(
            "network-flood",
            SimTime::at_cycle(150_000),
            SimDuration::cycles(3_000),
        )
        .attack(
            "exploit-traffic",
            SimTime::at_cycle(400_000),
            SimDuration::cycles(10_000),
        )
}

/// Submission order: (tiers quiet, tiers attack, passive quiet, passive
/// attack) — mirrored by the destructuring in the assertions.
fn frontier_campaign() -> Campaign<fn(&str) -> cres_platform::campaign::BuiltAttack> {
    let mut campaign = Campaign::new(try_build as _);
    for (label, config) in [("tiers", tiers_config()), ("passive", passive_config())] {
        campaign.submit(
            format!("{label}/quiet"),
            config,
            ScenarioSpec::quiet(SimDuration::cycles(DURATION)),
        );
        campaign.submit(format!("{label}/attack"), config, attack_spec());
    }
    campaign
}

fn run_with_jobs(threads: usize) -> Vec<RunReport> {
    frontier_campaign()
        .run_parallel(threads)
        .expect("catalog names resolve")
        .results
        .into_iter()
        .map(|result| result.report)
        .collect()
}

#[test]
fn graded_tiers_dominate_passive_reboot_on_the_frontier() {
    let reports = run_with_jobs(2);
    let [tiers_quiet, tiers_attack, passive_quiet, passive_attack] = &reports[..] else {
        panic!("expected 4 frontier cells, got {}", reports.len());
    };

    let tiers_avail = tiers_attack.critical_steps as f64 / tiers_quiet.critical_steps.max(1) as f64;
    let passive_avail =
        passive_attack.critical_steps as f64 / passive_quiet.critical_steps.max(1) as f64;

    // E14's acceptance claim: equal-or-better detection, strictly higher
    // critical-service availability.
    assert!(
        tiers_attack.detection_rate() >= passive_attack.detection_rate(),
        "tiers detected {} < passive {}",
        tiers_attack.detection_rate(),
        passive_attack.detection_rate()
    );
    assert!(
        tiers_avail > passive_avail,
        "tiers availability {tiers_avail:.3} not above passive {passive_avail:.3}"
    );

    // The policy engine actually engaged: it degraded under attack,
    // recovered through hysteresis, and kept the critical class near full
    // delivery while passive reboots paid the duty cycle.
    let detail = tiers_attack
        .availability_detail
        .as_ref()
        .expect("policy armed on the tiers row");
    assert!(detail.tier_raises >= 1, "{detail:?}");
    assert!(detail.peak_tier > DegradationTier::Full, "{detail:?}");
    assert!(
        detail.critical_availability() > 0.9,
        "critical class collapsed: {detail:?}"
    );
    assert!(passive_attack.reboots > tiers_attack.reboots);
    // the passive rows never arm the policy engine
    assert_eq!(passive_attack.availability_detail, None);
}

#[test]
fn frontier_is_deterministic_across_worker_counts() {
    let sequential = run_with_jobs(1);
    for threads in [2, 8] {
        let parallel = run_with_jobs(threads);
        assert_eq!(sequential.len(), parallel.len());
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a, b, "jobs={threads} diverged");
            assert_eq!(a.to_json(), b.to_json(), "jobs={threads} encoding diverged");
        }
    }
}
