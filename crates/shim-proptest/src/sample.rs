//! Sampling helpers (`prop::sample`).

use crate::rng::TestRng;
use crate::strategy::Arbitrary;

/// An index into a collection whose length is only known at use time
/// (proptest's `prop::sample::Index`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    /// Resolves against a collection of `len` elements, returning a value
    /// in `[0, len)`. Panics when `len == 0`, matching real proptest.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        self.0 % len
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_resolves_in_bounds() {
        let mut rng = TestRng::seeded(9);
        for _ in 0..200 {
            let ix = Index::arbitrary(&mut rng);
            assert!(ix.index(7) < 7);
            assert_eq!(ix.index(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn empty_panics() {
        Index(3).index(0);
    }
}
