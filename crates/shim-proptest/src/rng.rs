//! Deterministic RNG for property generation.
//!
//! splitmix64 seeded from the test's fully qualified name: every run of a
//! given test explores the same case sequence, so a failure reproduces
//! exactly without any persistence machinery.

/// Deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test's fully qualified name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // avoid the all-zero fixed point
        TestRng { state: h | 1 }
    }

    /// Seeds directly.
    pub fn seeded(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // multiply-shift bounded sampling; bias is negligible for test
        // generation purposes
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform in `[lo, hi)` (half-open); `lo < hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("x::z");
        // different names diverge (overwhelmingly likely by construction)
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bounds_respected() {
        let mut r = TestRng::seeded(7);
        for _ in 0..1000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
