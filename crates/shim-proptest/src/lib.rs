#![warn(missing_docs)]

//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment cannot reach crates.io, so the real proptest
//! cannot be fetched. This crate reimplements the (small) subset of its API
//! that the workspace's property suites use, so those suites run unchanged:
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, `x in strategy`
//!   and `x: Type` parameter forms;
//! * [`Strategy`] implemented for integer/float ranges, inclusive ranges,
//!   regex-like string literals, 2-/3-tuples of strategies, and
//!   [`collection::vec`];
//! * [`any`] over an [`Arbitrary`] trait (ints, bool, byte arrays,
//!   [`sample::Index`]);
//! * `prop_map`, `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!` and
//!   `prop_assume!`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — generation is fully deterministic (the RNG is
//!   seeded from the test's module path and name), so a failing case
//!   reproduces exactly on re-run;
//! * `prop_assert*` panic immediately instead of collecting a minimal
//!   counterexample;
//! * string strategies support character classes (`[a-z]`), `.`, and
//!   `{m,n}` repetition — the constructs the suites actually use.

pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;

mod macros;
mod rng;

pub use rng::TestRng;
pub use strategy::{any, Any, Arbitrary, Just, Map, Strategy};

/// Per-suite configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches real proptest's default case count.
        ProptestConfig { cases: 256 }
    }
}
