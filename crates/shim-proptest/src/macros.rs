//! The `proptest!` macro family and `prop_assert*` assertions.

/// Declares property tests (the subset of real proptest's macro grammar the
/// suites use): an optional `#![proptest_config(..)]` header followed by
/// `#[test] fn name(params) { body }` items, where each parameter is either
/// `ident in strategy_expr` or `ident: Type` (the latter meaning
/// `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

/// Internal: expands one `fn` per recursion step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ([$cfg:expr]) => {};
    ([$cfg:expr] $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0u32..__config.cases {
                // a closure per case so `prop_assume!` can skip via `return`
                let mut __one_case = || {
                    $crate::__proptest_case! { __rng, [$($params)*] $body }
                };
                __one_case();
            }
        }
        $crate::__proptest_fns! { [$cfg] $($rest)* }
    };
}

/// Internal: binds the parameter list, then splices the body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident, [] $body:block) => { $body };
    ($rng:ident, [$i:ident in $s:expr] $body:block) => {{
        let $i = $crate::Strategy::generate(&($s), &mut $rng);
        $body
    }};
    ($rng:ident, [$i:ident in $s:expr, $($rest:tt)*] $body:block) => {{
        let $i = $crate::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_case! { $rng, [$($rest)*] $body }
    }};
    ($rng:ident, [$i:ident : $t:ty] $body:block) => {{
        let $i = $crate::Strategy::generate(&$crate::any::<$t>(), &mut $rng);
        $body
    }};
    ($rng:ident, [$i:ident : $t:ty, $($rest:tt)*] $body:block) => {{
        let $i = $crate::Strategy::generate(&$crate::any::<$t>(), &mut $rng);
        $crate::__proptest_case! { $rng, [$($rest)*] $body }
    }};
}

/// Asserts a condition inside a property (panics immediately; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current generated case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}
