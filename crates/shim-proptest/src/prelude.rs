//! One-stop import mirroring `proptest::prelude::*`.

pub use crate::strategy::{any, Any, Arbitrary, Just, Map, Strategy};
pub use crate::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

/// The crate root under its conventional short alias, so paths like
/// `prop::sample::Index` and `prop::collection::vec` resolve.
pub use crate as prop;
