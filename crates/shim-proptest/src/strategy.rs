//! The [`Strategy`] trait and the built-in strategies the suites use.

use crate::rng::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A value generator: the proptest `Strategy` trait minus shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Types with a canonical whole-domain strategy (proptest's `Arbitrary`).
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Whole-domain strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Constant strategy (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // finite, sign-symmetric: ample for test generation
        (rng.unit_f64() * 2.0 - 1.0) * 1e9
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // span can be 2^64 for a full-domain range; sample via u128
                let off = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// String literals act as regex-like string strategies.
///
/// Supported subset (what the suites use): literal characters, `.`
/// (printable ASCII), character classes with ranges (`[a-z0-9_]`), and
/// `{m}` / `{m,n}` repetition of the preceding atom. Anything else panics
/// at generation time with a clear message.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

enum Atom {
    Literal(char),
    AnyPrintable,
    Class(Vec<(char, char)>),
}

impl Atom {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::AnyPrintable => char::from(rng.range_u64(0x20, 0x7F) as u8),
            Atom::Class(ranges) => {
                let total: u64 = ranges.iter().map(|(a, b)| *b as u64 - *a as u64 + 1).sum();
                let mut pick = rng.below(total);
                for (a, b) in ranges {
                    let n = *b as u64 - *a as u64 + 1;
                    if pick < n {
                        return char::from_u32(*a as u32 + pick as u32).expect("class range");
                    }
                    pick -= n;
                }
                unreachable!("pick within total")
            }
        }
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let a = chars
                        .next()
                        .unwrap_or_else(|| bad(pattern, "unclosed class"));
                    if a == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let b = chars
                            .next()
                            .unwrap_or_else(|| bad(pattern, "unclosed range"));
                        ranges.push((a, b));
                    } else {
                        ranges.push((a, a));
                    }
                }
                if ranges.is_empty() {
                    bad(pattern, "empty class")
                }
                Atom::Class(ranges)
            }
            '.' => Atom::AnyPrintable,
            '\\' => Atom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| bad(pattern, "dangling escape")),
            ),
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' => {
                bad(pattern, "unsupported regex construct")
            }
            other => Atom::Literal(other),
        };
        // optional {m} / {m,n} repetition
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for d in chars.by_ref() {
                if d == '}' {
                    break;
                }
                spec.push(d);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim()
                        .parse()
                        .unwrap_or_else(|_| bad(pattern, "bad repeat min")),
                    n.trim()
                        .parse()
                        .unwrap_or_else(|_| bad(pattern, "bad repeat max")),
                ),
                None => {
                    let m: u64 = spec
                        .trim()
                        .parse()
                        .unwrap_or_else(|_| bad(pattern, "bad repeat"));
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        let count = if max > min {
            min + rng.below(max - min + 1)
        } else {
            min
        };
        for _ in 0..count {
            out.push(atom.sample(rng));
        }
    }
    out
}

fn bad(pattern: &str, what: &str) -> ! {
    panic!("shim-proptest string strategy {pattern:?}: {what} (only literals, '.', [a-z] classes and {{m,n}} repeats are supported)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seeded(1);
        for _ in 0..500 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (3u8..=3).generate(&mut rng);
            assert_eq!(w, 3);
            let f = (-5.0f64..5.0).generate(&mut rng);
            assert!((-5.0..5.0).contains(&f));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::seeded(2);
        for _ in 0..200 {
            let s = "[a-z]{1,16}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 16);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            let t = ".{0,40}".generate(&mut rng);
            assert!(t.len() <= 40);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)), "{t:?}");
            let u = "x[0-9]{2}\\.y".generate(&mut rng);
            assert_eq!(u.len(), 5);
            assert!(u.starts_with('x') && u.ends_with(".y"));
        }
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = TestRng::seeded(3);
        let s = (0u64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert_eq!(v % 2, 0);
            assert!(v < 20);
        }
    }

    #[test]
    fn tuples_and_arrays_generate() {
        let mut rng = TestRng::seeded(4);
        let (a, b) = (0u64..5, "[a-z]{3}").generate(&mut rng);
        assert!(a < 5);
        assert_eq!(b.len(), 3);
        let bytes: [u8; 16] = <[u8; 16]>::arbitrary(&mut rng);
        assert_eq!(bytes.len(), 16);
    }
}
