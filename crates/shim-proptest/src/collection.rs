//! Collection strategies (`proptest::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::{Range, RangeInclusive};

/// Size bounds for generated collections (half-open internally).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_excl: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max_excl: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max_excl: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_excl: n + 1,
        }
    }
}

/// Strategy producing `Vec`s of an element strategy.
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// `Vec` strategy with a length drawn from `size` (proptest's
/// `collection::vec`).
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_excl - self.size.min) as u64;
        let len = self.size.min
            + if span > 0 {
                rng.below(span) as usize
            } else {
                0
            };
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::seeded(5);
        let s = vec(any::<u8>(), 2..7);
        let t = vec(any::<u8>(), 16..=16);
        for _ in 0..300 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert_eq!(t.generate(&mut rng).len(), 16);
        }
    }

    #[test]
    fn nests() {
        let mut rng = TestRng::seeded(6);
        let s = vec(vec(any::<u8>(), 0..3), 1..4);
        let v = s.generate(&mut rng);
        assert!(!v.is_empty() && v.len() < 4);
        assert!(v.iter().all(|inner| inner.len() < 3));
    }
}
