//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The build environment has no access to crates.io, so the real
//! `serde_derive` cannot be fetched. Nothing in this workspace serializes
//! through serde's data model — the derives are used purely as markers on
//! report/domain types — so the derives here expand to nothing and the
//! marker traits in `shim-serde` carry blanket impls. Report types that
//! genuinely need serialization implement the in-repo JSON codec
//! (`cres_platform::json`) by hand instead.

use proc_macro::TokenStream;

/// Marker derive: expands to nothing (see crate docs).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Marker derive: expands to nothing (see crate docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
