//! Property-based tests for the crypto substrate.
//!
//! The bignum division (Knuth Algorithm D) and the mode/AEAD layers carry
//! the platform's boot and evidence integrity — these invariants get fuzzed
//! harder than anything else in the workspace.

use cres_crypto::aead::Aead;
use cres_crypto::aes::Aes;
use cres_crypto::bignum::BigUint;
use cres_crypto::hex;
use cres_crypto::hmac::HmacSha256;
use cres_crypto::merkle::{MerkleAccumulator, MerkleTree};
use cres_crypto::modes;
use cres_crypto::sha2::{Sha256, Sha512};
use proptest::prelude::*;

fn biguint_strategy() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..48).prop_map(|b| BigUint::from_bytes_be(&b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bytes_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let n = BigUint::from_bytes_be(&bytes);
        let out = n.to_bytes_be();
        // round trip modulo leading zeros
        let mut trimmed = bytes.clone();
        while trimmed.first() == Some(&0) {
            trimmed.remove(0);
        }
        prop_assert_eq!(out, trimmed);
    }

    #[test]
    fn div_rem_reconstructs(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn add_sub_inverse(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assert_eq!(a.add(&b).sub(&b), a.clone());
        prop_assert_eq!(a.add(&b).sub(&a), b);
    }

    #[test]
    fn mul_commutes_and_distributes(
        a in biguint_strategy(),
        b in biguint_strategy(),
        c in biguint_strategy()
    ) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn shifts_invert(a in biguint_strategy(), s in 0usize..100) {
        prop_assert_eq!(a.shl(s).shr(s), a);
    }

    #[test]
    fn mod_pow_matches_naive(
        base in 0u64..1000,
        exp in 0u64..30,
        modulus in 2u64..10_000
    ) {
        let expect = {
            let mut acc: u128 = 1;
            for _ in 0..exp {
                acc = acc * u128::from(base) % u128::from(modulus);
            }
            acc as u64
        };
        let got = BigUint::from_u64(base)
            .mod_pow(&BigUint::from_u64(exp), &BigUint::from_u64(modulus));
        prop_assert_eq!(got, BigUint::from_u64(expect));
    }

    #[test]
    fn mod_inverse_verifies(a in 1u64..100_000) {
        // modulus is prime, so every nonzero residue has an inverse
        let p = BigUint::from_u64(1_000_003);
        let a_red = BigUint::from_u64(a % 1_000_003);
        prop_assume!(!a_red.is_zero());
        let inv = a_red.mod_inverse(&p).unwrap();
        prop_assert_eq!(a_red.mul(&inv).rem(&p), BigUint::one());
    }

    #[test]
    fn gcd_divides_both(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let g = BigUint::from_u64(a).gcd(&BigUint::from_u64(b));
        let gv = g.to_u64().unwrap();
        prop_assert_eq!(a % gv, 0);
        prop_assert_eq!(b % gv, 0);
    }

    #[test]
    fn hex_round_trips(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(hex::decode(&hex::encode(&bytes)).unwrap(), bytes);
    }

    #[test]
    fn sha256_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..500),
        split in 0usize..500
    ) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha512_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..500),
        split in 0usize..500
    ) {
        let split = split.min(data.len());
        let mut h = Sha512::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize().to_vec(), Sha512::digest(&data).to_vec());
    }

    #[test]
    fn aes_round_trips(key in proptest::collection::vec(any::<u8>(), 16..=16), block: [u8; 16]) {
        let aes = Aes::new(&key).unwrap();
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    #[test]
    fn ctr_round_trips(
        key in proptest::collection::vec(any::<u8>(), 32..=32),
        nonce: [u8; 12],
        data in proptest::collection::vec(any::<u8>(), 0..300)
    ) {
        let aes = Aes::new(&key).unwrap();
        let mut buf = data.clone();
        modes::ctr_xor(&aes, &nonce, &mut buf);
        modes::ctr_xor(&aes, &nonce, &mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn cbc_round_trips(
        key in proptest::collection::vec(any::<u8>(), 16..=16),
        iv: [u8; 16],
        data in proptest::collection::vec(any::<u8>(), 0..300)
    ) {
        let aes = Aes::new(&key).unwrap();
        let ct = modes::cbc_encrypt(&aes, &iv, &data);
        prop_assert_eq!(modes::cbc_decrypt(&aes, &iv, &ct).unwrap(), data);
    }

    #[test]
    fn aead_round_trips_and_rejects_tamper(
        key in proptest::collection::vec(any::<u8>(), 1..64),
        nonce: [u8; 12],
        aad in proptest::collection::vec(any::<u8>(), 0..32),
        data in proptest::collection::vec(any::<u8>(), 0..200),
        flip in any::<usize>()
    ) {
        let aead = Aead::new(&key);
        let sealed = aead.seal(&nonce, &aad, &data);
        prop_assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), data);
        let mut bad = sealed.clone();
        let idx = flip % bad.len();
        bad[idx] ^= 1;
        prop_assert!(aead.open(&nonce, &aad, &bad).is_err());
    }

    #[test]
    fn hmac_is_deterministic_and_key_sensitive(
        key in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 0..200)
    ) {
        let t1 = HmacSha256::mac(&key, &msg);
        let t2 = HmacSha256::mac(&key, &msg);
        prop_assert_eq!(t1, t2);
        let mut key2 = key.clone();
        key2[0] ^= 1;
        prop_assert_ne!(HmacSha256::mac(&key2, &msg), t1);
    }

    #[test]
    fn merkle_proofs_always_verify(
        leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..20), 1..40),
        pick in any::<usize>()
    ) {
        let tree = MerkleTree::build(leaves.iter().map(|v| v.as_slice()));
        let idx = pick % leaves.len();
        let proof = tree.prove(idx).unwrap();
        prop_assert!(MerkleTree::verify(&tree.root(), &leaves[idx], &proof));
    }

    #[test]
    fn accumulator_root_matches_batch_tree(
        leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..20), 1..80)
    ) {
        let mut accum = MerkleAccumulator::new();
        for leaf in &leaves {
            accum.append(leaf);
        }
        let tree = MerkleTree::build(leaves.iter().map(|v| v.as_slice()));
        prop_assert_eq!(accum.root(), Some(tree.root()));
        prop_assert_eq!(accum.leaf_count(), leaves.len() as u64);
    }

    #[test]
    fn accumulator_every_prefix_matches_batch_tree(
        leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..20), 1..40)
    ) {
        // Sealing at arbitrary segment boundaries: the root after every
        // prefix must equal the batch tree over that prefix, so an
        // evidence store can seal mid-stream and keep appending.
        let mut accum = MerkleAccumulator::new();
        for (i, leaf) in leaves.iter().enumerate() {
            accum.append(leaf);
            let tree = MerkleTree::build(leaves[..=i].iter().map(|v| v.as_slice()));
            prop_assert_eq!(accum.root(), Some(tree.root()), "prefix len {}", i + 1);
        }
    }

    #[test]
    fn accumulator_append_after_seal_keeps_matching(
        before in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..20), 1..30),
        after in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..20), 1..30)
    ) {
        let mut accum = MerkleAccumulator::new();
        for leaf in &before {
            accum.append(leaf);
        }
        // "Seal": snapshot the root (Copy type), then keep appending.
        let sealed = accum.root();
        let seg1 = MerkleTree::build(before.iter().map(|v| v.as_slice()));
        prop_assert_eq!(sealed, Some(seg1.root()));
        for leaf in &after {
            accum.append(leaf);
        }
        let all: Vec<&[u8]> = before.iter().chain(&after).map(|v| v.as_slice()).collect();
        let full = MerkleTree::build(all.into_iter());
        prop_assert_eq!(accum.root(), Some(full.root()));
    }

    #[test]
    fn accumulator_digest_leaves_match_build_from_hashes(
        macs in proptest::collection::vec(any::<[u8; 32]>(), 1..50)
    ) {
        let mut accum = MerkleAccumulator::new();
        for mac in &macs {
            accum.append_digest(mac);
        }
        let tree = MerkleTree::build_from_hashes(macs.iter());
        prop_assert_eq!(accum.root(), Some(tree.root()));
    }

    #[test]
    fn accumulator_empty_and_single_leaf(leaf in proptest::collection::vec(any::<u8>(), 0..20)) {
        let mut accum = MerkleAccumulator::new();
        prop_assert!(accum.is_empty());
        prop_assert_eq!(accum.root(), None);
        accum.append(&leaf);
        let tree = MerkleTree::build(std::iter::once(leaf.as_slice()));
        prop_assert_eq!(accum.root(), Some(tree.root()));
        accum.clear();
        prop_assert_eq!(accum.root(), None);
    }
}
