//! HKDF (RFC 5869) extract-and-expand key derivation over HMAC-SHA-256.
//!
//! Used by the platform to derive per-purpose keys (evidence-chain key,
//! firmware-image MAC key, TEE storage key) from a single device root key —
//! the "strong trust anchor" the paper's PROTECT function calls for.

use crate::hmac::HmacSha256;

/// Performs the HKDF-Extract step, producing a pseudorandom key.
///
/// An empty salt behaves as a zero-filled hash-length salt, per the RFC.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    let salt: &[u8] = if salt.is_empty() { &[0u8; 32] } else { salt };
    HmacSha256::mac(salt, ikm)
}

/// Performs the HKDF-Expand step.
///
/// # Panics
///
/// Panics if `len > 255 * 32` (the RFC 5869 limit).
pub fn expand(prk: &[u8; 32], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * 32, "HKDF output limit exceeded");
    let mut okm = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter: u8 = 1;
    while okm.len() < len {
        let mut h = HmacSha256::new(prk);
        h.update(&t);
        h.update(info);
        h.update(&[counter]);
        t = h.finalize().to_vec();
        let take = (len - okm.len()).min(32);
        okm.extend_from_slice(&t[..take]);
        counter = counter.checked_add(1).expect("HKDF counter overflow");
    }
    okm
}

/// One-call HKDF: extract then expand.
///
/// # Example
///
/// ```
/// let key = cres_crypto::hkdf::derive(b"salt", b"device-root-key", b"evidence-chain", 32);
/// assert_eq!(key.len(), 32);
/// ```
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    expand(&extract(salt, ikm), info, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = hex::decode("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b").unwrap();
        let salt = hex::decode("000102030405060708090a0b0c").unwrap();
        let info = hex::decode("f0f1f2f3f4f5f6f7f8f9").unwrap();
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex::encode(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = expand(&prk, &info, 42);
        assert_eq!(
            hex::encode(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 test case 3 (empty salt and info).
    #[test]
    fn rfc5869_case3_empty_salt_info() {
        let ikm = [0x0b; 22];
        let okm = derive(b"", &ikm, b"", 42);
        assert_eq!(
            hex::encode(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn distinct_info_distinct_keys() {
        let a = derive(b"s", b"root", b"purpose-a", 32);
        let b = derive(b"s", b"root", b"purpose-b", 32);
        assert_ne!(a, b);
    }

    #[test]
    fn long_output_is_deterministic() {
        let a = derive(b"s", b"root", b"x", 100);
        let b = derive(b"s", b"root", b"x", 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        // prefix property: shorter derivation is a prefix of longer
        let c = derive(b"s", b"root", b"x", 40);
        assert_eq!(&a[..40], &c[..]);
    }

    #[test]
    #[should_panic(expected = "output limit")]
    fn over_limit_panics() {
        let prk = extract(b"", b"ikm");
        let _ = expand(&prk, b"", 255 * 32 + 1);
    }
}
