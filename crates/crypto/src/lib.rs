#![warn(missing_docs)]

//! From-scratch cryptographic substrate for the CRES platform.
//!
//! The paper's protection, boot-integrity and evidence-continuity mechanisms
//! all need cryptography; this crate provides it with **zero external
//! dependencies** so that the whole reproduction is self-contained:
//!
//! * [`sha2`] — SHA-256 / SHA-512 (FIPS 180-4),
//! * [`hmac`] — HMAC (RFC 2104) over either hash,
//! * [`hkdf`] — HKDF extract/expand (RFC 5869),
//! * [`aes`] — the AES-128/192/256 block cipher (FIPS 197),
//! * [`modes`] — CTR and CBC (PKCS#7) modes of operation,
//! * [`aead`] — an encrypt-then-MAC AEAD built from AES-CTR + HMAC-SHA-256,
//! * [`drbg`] — HMAC-DRBG (SP 800-90A) for deterministic key generation,
//! * [`bignum`] — arbitrary-precision unsigned arithmetic,
//! * [`rsa`] — RSA key generation (Miller–Rabin) and PKCS#1 v1.5 signatures,
//! * [`merkle`] — Merkle trees with inclusion proofs,
//! * [`ct`] — constant-time comparison helpers.
//!
//! All primitives are validated against published test vectors in their unit
//! tests. This substrate exists to make the *system* reproduction
//! self-contained; it is **not** hardened production cryptography (no
//! side-channel countermeasures beyond constant-time tag comparison).
//!
//! # Example
//!
//! ```
//! use cres_crypto::sha2::Sha256;
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(
//!     cres_crypto::hex::encode(&digest),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! ```

pub mod aead;
pub mod aes;
pub mod bignum;
pub mod ct;
pub mod drbg;
pub mod hex;
pub mod hkdf;
pub mod hmac;
pub mod merkle;
pub mod modes;
pub mod rsa;
pub mod sha2;

/// Errors produced by this crate's fallible operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// An authentication tag or signature failed to verify.
    VerificationFailed,
    /// Ciphertext or encoded input was structurally malformed.
    MalformedInput(&'static str),
    /// A key had the wrong length for the algorithm.
    InvalidKeyLength {
        /// Human-readable description of acceptable lengths.
        expected: &'static str,
        /// The length actually supplied, in bytes.
        got: usize,
    },
    /// Padding was invalid during decryption.
    InvalidPadding,
    /// Prime generation exhausted its attempt budget.
    PrimeGenerationFailed,
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::VerificationFailed => write!(f, "verification failed"),
            CryptoError::MalformedInput(what) => write!(f, "malformed input: {what}"),
            CryptoError::InvalidKeyLength { expected, got } => {
                write!(
                    f,
                    "invalid key length: expected {expected}, got {got} bytes"
                )
            }
            CryptoError::InvalidPadding => write!(f, "invalid padding"),
            CryptoError::PrimeGenerationFailed => write!(f, "prime generation failed"),
        }
    }
}

impl std::error::Error for CryptoError {}
