//! RSA key generation and PKCS#1 v1.5 signatures with SHA-256.
//!
//! Secure boot in `cres-boot` verifies firmware images against an RSA
//! public key fused into simulated OTP — exactly the commercial secure-boot
//! pattern the paper's §IV discusses (and whose downgrade weakness E10
//! reproduces). Key generation uses Miller–Rabin over candidates drawn from
//! the deterministic [`HmacDrbg`](crate::drbg) so that test keys are
//! reproducible.
//!
//! Moduli of 512–1024 bits keep the schoolbook bignum arithmetic fast enough
//! for tests; this is a simulation substrate, not transport security.

use crate::bignum::BigUint;
use crate::drbg::HmacDrbg;
use crate::sha2::Sha256;
use crate::CryptoError;

/// DER prefix for a SHA-256 DigestInfo (RFC 8017 §9.2 note 1).
const SHA256_DIGEST_INFO: [u8; 19] = [
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
    0x00, 0x04, 0x20,
];

/// An RSA public key `(n, e)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
    modulus_len: usize,
}

/// An RSA private key `(n, d)` with the public exponent retained for
/// deriving the public half.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaPrivateKey {
    n: BigUint,
    e: BigUint,
    d: BigUint,
    modulus_len: usize,
}

/// A signing keypair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaKeypair {
    /// The public (verification) half.
    pub public: RsaPublicKey,
    /// The private (signing) half.
    pub private: RsaPrivateKey,
}

impl RsaPublicKey {
    /// Reconstructs a public key from big-endian `n` and `e` bytes.
    pub fn from_components(n: &[u8], e: &[u8]) -> Self {
        let n = BigUint::from_bytes_be(n);
        let len = n.bit_len().div_ceil(8);
        RsaPublicKey {
            n,
            e: BigUint::from_bytes_be(e),
            modulus_len: len,
        }
    }

    /// The modulus length in bytes (also the signature length).
    pub fn modulus_len(&self) -> usize {
        self.modulus_len
    }

    /// Serializes the modulus big-endian.
    pub fn n_bytes(&self) -> Vec<u8> {
        self.n.to_bytes_be()
    }

    /// Serializes the public exponent big-endian.
    pub fn e_bytes(&self) -> Vec<u8> {
        self.e.to_bytes_be()
    }

    /// A short fingerprint (first 8 bytes of SHA-256 of `n || e`), used by
    /// the boot ROM's key-manifest.
    pub fn fingerprint(&self) -> [u8; 8] {
        let mut h = Sha256::new();
        h.update(&self.n.to_bytes_be());
        h.update(&self.e.to_bytes_be());
        let d = h.finalize();
        d[..8].try_into().unwrap()
    }

    /// Verifies a PKCS#1 v1.5 SHA-256 signature over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::VerificationFailed`] on any mismatch,
    /// including wrong signature length.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> Result<(), CryptoError> {
        if signature.len() != self.modulus_len {
            return Err(CryptoError::VerificationFailed);
        }
        let s = BigUint::from_bytes_be(signature);
        if s >= self.n {
            return Err(CryptoError::VerificationFailed);
        }
        let em = s
            .mod_pow(&self.e, &self.n)
            .to_bytes_be_padded(self.modulus_len);
        let expected = pkcs1_encode(message, self.modulus_len)?;
        if em == expected {
            Ok(())
        } else {
            Err(CryptoError::VerificationFailed)
        }
    }
}

impl RsaPrivateKey {
    /// The public key corresponding to this private key.
    pub fn public_key(&self) -> RsaPublicKey {
        RsaPublicKey {
            n: self.n.clone(),
            e: self.e.clone(),
            modulus_len: self.modulus_len,
        }
    }

    /// Produces a PKCS#1 v1.5 SHA-256 signature over `message`.
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        let em = pkcs1_encode(message, self.modulus_len).expect("modulus large enough");
        let m = BigUint::from_bytes_be(&em);
        m.mod_pow(&self.d, &self.n)
            .to_bytes_be_padded(self.modulus_len)
    }
}

/// EMSA-PKCS1-v1_5 encoding of SHA-256(message).
fn pkcs1_encode(message: &[u8], em_len: usize) -> Result<Vec<u8>, CryptoError> {
    let digest = Sha256::digest(message);
    let t_len = SHA256_DIGEST_INFO.len() + digest.len();
    if em_len < t_len + 11 {
        return Err(CryptoError::MalformedInput("modulus too small for PKCS#1"));
    }
    let mut em = Vec::with_capacity(em_len);
    em.push(0x00);
    em.push(0x01);
    em.extend(std::iter::repeat_n(0xff, em_len - t_len - 3));
    em.push(0x00);
    em.extend_from_slice(&SHA256_DIGEST_INFO);
    em.extend_from_slice(&digest);
    Ok(em)
}

/// Miller–Rabin primality test with `rounds` random bases from `drbg`.
pub fn is_probable_prime(n: &BigUint, rounds: u32, drbg: &mut HmacDrbg) -> bool {
    let two = BigUint::from_u64(2);
    let three = BigUint::from_u64(3);
    if *n < two {
        return false;
    }
    if *n == two || *n == three {
        return true;
    }
    if n.is_even() {
        return false;
    }
    // Trial division by small primes screens out most candidates cheaply.
    const SMALL_PRIMES: [u64; 15] = [3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];
    for p in SMALL_PRIMES {
        let pb = BigUint::from_u64(p);
        if *n == pb {
            return true;
        }
        if n.rem(&pb).is_zero() {
            return false;
        }
    }
    // Write n-1 = d * 2^r.
    let n_minus_1 = n.sub(&BigUint::one());
    let mut d = n_minus_1.clone();
    let mut r = 0usize;
    while d.is_even() {
        d = d.shr(1);
        r += 1;
    }
    let byte_len = n.bit_len().div_ceil(8);
    'witness: for _ in 0..rounds {
        // Draw a ∈ [2, n-2].
        let a = loop {
            let bytes = drbg.generate(byte_len);
            let candidate = BigUint::from_bytes_be(&bytes).rem(n);
            if candidate >= two && candidate <= n.sub(&three) {
                break candidate;
            }
        };
        let mut x = a.mod_pow(&d, n);
        if x == BigUint::one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..r - 1 {
            x = x.mul(&x).rem(n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime of exactly `bits` bits.
fn gen_prime(bits: usize, drbg: &mut HmacDrbg) -> Result<BigUint, CryptoError> {
    assert!(bits >= 16, "prime size too small");
    let byte_len = bits.div_ceil(8);
    for _ in 0..100_000 {
        let mut bytes = drbg.generate(byte_len);
        // Force exact bit length and oddness.
        let top_bit = (bits - 1) % 8;
        bytes[0] |= 1 << top_bit;
        bytes[0] &= (1u16 << (top_bit + 1)).wrapping_sub(1) as u8;
        let last = bytes.len() - 1;
        bytes[last] |= 1;
        let candidate = BigUint::from_bytes_be(&bytes);
        if is_probable_prime(&candidate, 16, drbg) {
            return Ok(candidate);
        }
    }
    Err(CryptoError::PrimeGenerationFailed)
}

/// Generates an RSA keypair with a modulus of `bits` bits (e = 65537).
///
/// Key material is drawn from the supplied DRBG, so `(seed → key)` is a
/// pure function — the provisioning model the boot substrate relies on.
///
/// # Errors
///
/// Returns [`CryptoError::PrimeGenerationFailed`] if prime search exhausts
/// its budget (practically unreachable).
///
/// # Panics
///
/// Panics if `bits < 512` or `bits` is odd.
///
/// # Example
///
/// ```
/// use cres_crypto::{drbg::HmacDrbg, rsa};
/// let mut drbg = HmacDrbg::new(b"device-otp-seed", b"boot-key");
/// let kp = rsa::generate_keypair(512, &mut drbg).unwrap();
/// let sig = kp.private.sign(b"firmware image");
/// assert!(kp.public.verify(b"firmware image", &sig).is_ok());
/// ```
pub fn generate_keypair(bits: usize, drbg: &mut HmacDrbg) -> Result<RsaKeypair, CryptoError> {
    assert!(bits >= 512, "modulus below 512 bits is unsupported");
    assert!(bits.is_multiple_of(2), "modulus bits must be even");
    let e = BigUint::from_u64(65537);
    loop {
        let p = gen_prime(bits / 2, drbg)?;
        let q = gen_prime(bits / 2, drbg)?;
        if p == q {
            continue;
        }
        let n = p.mul(&q);
        if n.bit_len() != bits {
            continue;
        }
        let phi = p.sub(&BigUint::one()).mul(&q.sub(&BigUint::one()));
        let Some(d) = e.mod_inverse(&phi) else {
            continue;
        };
        let modulus_len = bits / 8;
        return Ok(RsaKeypair {
            public: RsaPublicKey {
                n: n.clone(),
                e: e.clone(),
                modulus_len,
            },
            private: RsaPrivateKey {
                n,
                e,
                d,
                modulus_len,
            },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_keypair() -> RsaKeypair {
        let mut drbg = HmacDrbg::new(b"fixed-test-seed", b"rsa-test");
        generate_keypair(512, &mut drbg).unwrap()
    }

    #[test]
    fn miller_rabin_known_primes_and_composites() {
        let mut drbg = HmacDrbg::new(b"mr", b"");
        for p in [2u64, 3, 5, 7, 61, 97, 1009, 104729, 1000003] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), 16, &mut drbg),
                "{p} should be prime"
            );
        }
        for c in [0u64, 1, 4, 9, 561, 1105, 6601, 8911, 104730, 1000001] {
            // 561, 1105, 6601, 8911 are Carmichael numbers
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 16, &mut drbg),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn keygen_is_deterministic_from_seed() {
        let mut d1 = HmacDrbg::new(b"seed-x", b"rsa");
        let mut d2 = HmacDrbg::new(b"seed-x", b"rsa");
        let k1 = generate_keypair(512, &mut d1).unwrap();
        let k2 = generate_keypair(512, &mut d2).unwrap();
        assert_eq!(k1, k2);
    }

    #[test]
    fn sign_verify_round_trip() {
        let kp = test_keypair();
        let sig = kp.private.sign(b"measured firmware v1.2");
        assert_eq!(sig.len(), kp.public.modulus_len());
        assert!(kp.public.verify(b"measured firmware v1.2", &sig).is_ok());
    }

    #[test]
    fn verify_rejects_modified_message() {
        let kp = test_keypair();
        let sig = kp.private.sign(b"image-a");
        assert_eq!(
            kp.public.verify(b"image-b", &sig),
            Err(CryptoError::VerificationFailed)
        );
    }

    #[test]
    fn verify_rejects_modified_signature() {
        let kp = test_keypair();
        let mut sig = kp.private.sign(b"image");
        sig[10] ^= 1;
        assert!(kp.public.verify(b"image", &sig).is_err());
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let kp = test_keypair();
        let mut other_drbg = HmacDrbg::new(b"other-seed", b"rsa");
        let other = generate_keypair(512, &mut other_drbg).unwrap();
        let sig = kp.private.sign(b"image");
        assert!(other.public.verify(b"image", &sig).is_err());
    }

    #[test]
    fn verify_rejects_wrong_length_signature() {
        let kp = test_keypair();
        assert!(kp.public.verify(b"m", &[0u8; 63]).is_err());
        assert!(kp.public.verify(b"m", &[]).is_err());
    }

    #[test]
    fn public_key_component_round_trip() {
        let kp = test_keypair();
        let rebuilt = RsaPublicKey::from_components(&kp.public.n_bytes(), &kp.public.e_bytes());
        assert_eq!(rebuilt, kp.public);
        let sig = kp.private.sign(b"x");
        assert!(rebuilt.verify(b"x", &sig).is_ok());
    }

    #[test]
    fn fingerprints_differ_between_keys() {
        let kp = test_keypair();
        let mut other_drbg = HmacDrbg::new(b"another", b"rsa");
        let other = generate_keypair(512, &mut other_drbg).unwrap();
        assert_ne!(kp.public.fingerprint(), other.public.fingerprint());
    }

    #[test]
    fn pkcs1_encoding_shape() {
        let em = pkcs1_encode(b"msg", 64).unwrap();
        assert_eq!(em.len(), 64);
        assert_eq!(em[0], 0x00);
        assert_eq!(em[1], 0x01);
        assert!(em[2..].iter().take_while(|&&b| b == 0xff).count() >= 8);
    }

    #[test]
    fn pkcs1_rejects_tiny_modulus() {
        assert!(pkcs1_encode(b"msg", 32).is_err());
    }
}
