//! Block-cipher modes of operation: CTR and CBC (PKCS#7).
//!
//! CTR is the platform's default confidentiality mode (it feeds the
//! encrypt-then-MAC AEAD in [`crate::aead`]); CBC exists because legacy
//! firmware-image formats in the boot substrate use it.

use crate::aes::Aes;
use crate::CryptoError;

/// AES-CTR keystream application: encryption and decryption are identical.
///
/// The 16-byte initial counter block is `nonce (12 bytes) || counter (4
/// bytes, big-endian, starting at 0)`.
///
/// # Example
///
/// ```
/// use cres_crypto::{aes::Aes, modes};
/// let aes = Aes::new(&[1u8; 16]).unwrap();
/// let mut data = b"attack at dawn".to_vec();
/// modes::ctr_xor(&aes, &[2u8; 12], &mut data);
/// modes::ctr_xor(&aes, &[2u8; 12], &mut data);
/// assert_eq!(data, b"attack at dawn");
/// ```
pub fn ctr_xor(cipher: &Aes, nonce: &[u8; 12], data: &mut [u8]) {
    let mut counter: u32 = 0;
    for chunk in data.chunks_mut(16) {
        let mut block = [0u8; 16];
        block[..12].copy_from_slice(nonce);
        block[12..].copy_from_slice(&counter.to_be_bytes());
        cipher.encrypt_block(&mut block);
        for (b, k) in chunk.iter_mut().zip(block.iter()) {
            *b ^= k;
        }
        counter = counter.checked_add(1).expect("CTR counter overflow");
    }
}

/// Encrypts with AES-CBC and PKCS#7 padding. The ciphertext is always a
/// non-zero multiple of 16 bytes (a full padding block is added when the
/// plaintext is already aligned).
pub fn cbc_encrypt(cipher: &Aes, iv: &[u8; 16], plaintext: &[u8]) -> Vec<u8> {
    let pad = 16 - (plaintext.len() % 16);
    let mut data = Vec::with_capacity(plaintext.len() + pad);
    data.extend_from_slice(plaintext);
    data.extend(std::iter::repeat_n(pad as u8, pad));

    let mut prev = *iv;
    for chunk in data.chunks_mut(16) {
        let block: &mut [u8; 16] = chunk.try_into().unwrap();
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        cipher.encrypt_block(block);
        prev = *block;
    }
    data
}

/// Decrypts AES-CBC ciphertext and strips PKCS#7 padding.
///
/// # Errors
///
/// Returns [`CryptoError::MalformedInput`] for empty or misaligned input and
/// [`CryptoError::InvalidPadding`] when the padding bytes are inconsistent.
pub fn cbc_decrypt(cipher: &Aes, iv: &[u8; 16], ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(16) {
        return Err(CryptoError::MalformedInput("CBC ciphertext length"));
    }
    let mut data = ciphertext.to_vec();
    let mut prev = *iv;
    for chunk in data.chunks_mut(16) {
        let block: &mut [u8; 16] = chunk.try_into().unwrap();
        let saved = *block;
        cipher.decrypt_block(block);
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        prev = saved;
    }
    let pad = *data.last().unwrap() as usize;
    if pad == 0 || pad > 16 || pad > data.len() {
        return Err(CryptoError::InvalidPadding);
    }
    if !data[data.len() - pad..].iter().all(|&b| b as usize == pad) {
        return Err(CryptoError::InvalidPadding);
    }
    data.truncate(data.len() - pad);
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt
    #[test]
    fn sp800_38a_ctr_aes128() {
        let key = hex::decode("2b7e151628aed2a6abf7158809cf4f3c").unwrap();
        let aes = Aes::new(&key).unwrap();
        // SP 800-38A uses a full 16-byte initial counter; our API fixes the
        // layout to nonce||ctr0, so reproduce the standard's first block by
        // using its first 12 bytes as nonce and checking offset arithmetic
        // separately. Instead, verify CTR via the identity and position
        // sensitivity properties plus an AES-ECB-derived keystream check.
        let nonce = [0xf0u8; 12];
        let mut block0 = [0u8; 16];
        block0[..12].copy_from_slice(&nonce);
        // counter 0
        let mut ks0 = block0;
        aes.encrypt_block(&mut ks0);
        let mut data = vec![0u8; 16];
        ctr_xor(&aes, &nonce, &mut data);
        assert_eq!(data, ks0.to_vec(), "first CTR block is E_K(nonce||0)");
    }

    #[test]
    fn ctr_round_trip_various_lengths() {
        let aes = Aes::new(&[9u8; 24]).unwrap();
        let nonce = [3u8; 12];
        for len in [0, 1, 15, 16, 17, 31, 32, 100] {
            let original: Vec<u8> = (0..len as u32).map(|i| (i * 7 % 256) as u8).collect();
            let mut data = original.clone();
            ctr_xor(&aes, &nonce, &mut data);
            if len > 0 {
                assert_ne!(data, original, "len {len}");
            }
            ctr_xor(&aes, &nonce, &mut data);
            assert_eq!(data, original, "len {len}");
        }
    }

    #[test]
    fn ctr_different_nonces_different_keystreams() {
        let aes = Aes::new(&[1u8; 16]).unwrap();
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        ctr_xor(&aes, &[1u8; 12], &mut a);
        ctr_xor(&aes, &[2u8; 12], &mut b);
        assert_ne!(a, b);
    }

    // NIST SP 800-38A F.2.1 CBC-AES128.Encrypt, first block (unpadded core).
    #[test]
    fn sp800_38a_cbc_aes128_first_block() {
        let key = hex::decode("2b7e151628aed2a6abf7158809cf4f3c").unwrap();
        let iv: [u8; 16] = hex::decode("000102030405060708090a0b0c0d0e0f")
            .unwrap()
            .try_into()
            .unwrap();
        let pt = hex::decode("6bc1bee22e409f96e93d7e117393172a").unwrap();
        let aes = Aes::new(&key).unwrap();
        let ct = cbc_encrypt(&aes, &iv, &pt);
        // our output = standard ciphertext block + one padding block
        assert_eq!(hex::encode(&ct[..16]), "7649abac8119b246cee98e9b12e9197d");
        assert_eq!(ct.len(), 32);
        assert_eq!(cbc_decrypt(&aes, &iv, &ct).unwrap(), pt);
    }

    #[test]
    fn cbc_round_trip_various_lengths() {
        let aes = Aes::new(&[5u8; 32]).unwrap();
        let iv = [7u8; 16];
        for len in [0, 1, 15, 16, 17, 47, 48, 200] {
            let pt: Vec<u8> = (0..len as u32).map(|i| (i % 251) as u8).collect();
            let ct = cbc_encrypt(&aes, &iv, &pt);
            assert_eq!(ct.len() % 16, 0);
            assert!(ct.len() > pt.len());
            assert_eq!(cbc_decrypt(&aes, &iv, &ct).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn cbc_detects_bad_padding() {
        let aes = Aes::new(&[5u8; 16]).unwrap();
        let iv = [0u8; 16];
        let mut ct = cbc_encrypt(&aes, &iv, b"hello");
        let last = ct.len() - 1;
        ct[last] ^= 0xFF; // corrupt final block → padding check fails
        assert!(matches!(
            cbc_decrypt(&aes, &iv, &ct),
            Err(CryptoError::InvalidPadding) | Err(CryptoError::MalformedInput(_))
        ));
    }

    #[test]
    fn cbc_rejects_misaligned_ciphertext() {
        let aes = Aes::new(&[5u8; 16]).unwrap();
        assert!(cbc_decrypt(&aes, &[0u8; 16], &[0u8; 15]).is_err());
        assert!(cbc_decrypt(&aes, &[0u8; 16], &[]).is_err());
    }

    #[test]
    fn cbc_iv_matters() {
        let aes = Aes::new(&[5u8; 16]).unwrap();
        let ct = cbc_encrypt(&aes, &[1u8; 16], b"secret message!!");
        let wrong = cbc_decrypt(&aes, &[2u8; 16], &ct);
        // wrong IV corrupts the first block; padding may still parse, but
        // the plaintext must differ
        if let Ok(pt) = wrong {
            assert_ne!(pt, b"secret message!!");
        }
    }
}
