//! Hexadecimal encoding and decoding helpers.
//!
//! Used pervasively by tests (known-answer vectors) and by forensic report
//! rendering.

use crate::CryptoError;

/// Encodes bytes as a lowercase hex string.
///
/// # Example
///
/// ```
/// assert_eq!(cres_crypto::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit(u32::from(b >> 4), 16).unwrap());
        s.push(char::from_digit(u32::from(b & 0xf), 16).unwrap());
    }
    s
}

/// Decodes a hex string (upper or lower case) into bytes.
///
/// # Errors
///
/// Returns [`CryptoError::MalformedInput`] if the string has odd length or
/// contains a non-hex character.
///
/// # Example
///
/// ```
/// assert_eq!(cres_crypto::hex::decode("DEad").unwrap(), vec![0xde, 0xad]);
/// ```
pub fn decode(s: &str) -> Result<Vec<u8>, CryptoError> {
    if !s.len().is_multiple_of(2) {
        return Err(CryptoError::MalformedInput("odd-length hex string"));
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or(CryptoError::MalformedInput("non-hex character"))?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or(CryptoError::MalformedInput("non-hex character"))?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn case_insensitive_decode() {
        assert_eq!(decode("aAbB").unwrap(), vec![0xaa, 0xbb]);
    }

    #[test]
    fn rejects_odd_length() {
        assert!(matches!(decode("abc"), Err(CryptoError::MalformedInput(_))));
    }

    #[test]
    fn rejects_non_hex() {
        assert!(matches!(decode("zz"), Err(CryptoError::MalformedInput(_))));
    }
}
