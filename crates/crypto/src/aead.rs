//! Authenticated encryption with associated data: AES-CTR + HMAC-SHA-256,
//! composed encrypt-then-MAC.
//!
//! The MAC covers `aad || nonce || ciphertext || len(aad) as u64-be`, which
//! prevents the classic AAD/ciphertext boundary-sliding ambiguity. Keys for
//! the cipher and the MAC are derived from the caller's single key via HKDF
//! with distinct `info` labels, so a key-separation mistake in calling code
//! cannot alias them.

use crate::aes::Aes;
use crate::ct::ct_eq;
use crate::hkdf;
use crate::hmac::HmacSha256;
use crate::modes::ctr_xor;
use crate::CryptoError;

/// Length of the authentication tag in bytes.
pub const TAG_LEN: usize = 32;
/// Length of the nonce in bytes.
pub const NONCE_LEN: usize = 12;

/// An encrypt-then-MAC AEAD instance bound to one key.
///
/// # Example
///
/// ```
/// use cres_crypto::aead::Aead;
/// let aead = Aead::new(b"device storage key");
/// let nonce = [1u8; 12];
/// let ct = aead.seal(&nonce, b"header", b"secret payload");
/// let pt = aead.open(&nonce, b"header", &ct).unwrap();
/// assert_eq!(pt, b"secret payload");
/// assert!(aead.open(&nonce, b"other header", &ct).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct Aead {
    cipher: Aes,
    mac_key: Vec<u8>,
}

impl Aead {
    /// Derives cipher and MAC subkeys from `key` and builds the instance.
    ///
    /// Any key length is accepted; it is stretched/compressed through HKDF.
    pub fn new(key: &[u8]) -> Self {
        let enc_key = hkdf::derive(b"cres-aead", key, b"enc", 32);
        let mac_key = hkdf::derive(b"cres-aead", key, b"mac", 32);
        Aead {
            cipher: Aes::new(&enc_key).expect("32-byte key is valid"),
            mac_key,
        }
    }

    /// Encrypts `plaintext`, authenticating `aad` alongside it. Returns
    /// `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        ctr_xor(&self.cipher, nonce, &mut out);
        let tag = self.tag(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Verifies and decrypts `ciphertext || tag`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::VerificationFailed`] when the tag does not
    /// match (tampered ciphertext, wrong nonce, wrong AAD or wrong key) and
    /// [`CryptoError::MalformedInput`] when the input is shorter than a tag.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::MalformedInput("sealed input shorter than tag"));
        }
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expect = self.tag(nonce, aad, ct);
        if !ct_eq(&expect, tag) {
            return Err(CryptoError::VerificationFailed);
        }
        let mut pt = ct.to_vec();
        ctr_xor(&self.cipher, nonce, &mut pt);
        Ok(pt)
    }

    fn tag(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ct: &[u8]) -> [u8; TAG_LEN] {
        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(aad);
        mac.update(nonce);
        mac.update(ct);
        mac.update(&(aad.len() as u64).to_be_bytes());
        mac.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let aead = Aead::new(b"k");
        let nonce = [9u8; 12];
        for len in [0, 1, 16, 17, 1000] {
            let pt: Vec<u8> = (0..len as u32).map(|i| (i % 250) as u8).collect();
            let ct = aead.seal(&nonce, b"aad", &pt);
            assert_eq!(ct.len(), pt.len() + TAG_LEN);
            assert_eq!(aead.open(&nonce, b"aad", &ct).unwrap(), pt);
        }
    }

    #[test]
    fn tamper_any_byte_fails() {
        let aead = Aead::new(b"k");
        let nonce = [0u8; 12];
        let ct = aead.seal(&nonce, b"", b"0123456789");
        for i in 0..ct.len() {
            let mut bad = ct.clone();
            bad[i] ^= 1;
            assert!(
                matches!(
                    aead.open(&nonce, b"", &bad),
                    Err(CryptoError::VerificationFailed)
                ),
                "byte {i}"
            );
        }
    }

    #[test]
    fn wrong_aad_or_nonce_fails() {
        let aead = Aead::new(b"k");
        let ct = aead.seal(&[1u8; 12], b"aad", b"data");
        assert!(aead.open(&[1u8; 12], b"bad", &ct).is_err());
        assert!(aead.open(&[2u8; 12], b"aad", &ct).is_err());
    }

    #[test]
    fn wrong_key_fails() {
        let a = Aead::new(b"k1");
        let b = Aead::new(b"k2");
        let ct = a.seal(&[0u8; 12], b"", b"data");
        assert!(b.open(&[0u8; 12], b"", &ct).is_err());
    }

    #[test]
    fn aad_boundary_is_unambiguous() {
        // (aad="ab", pt="c...") must not collide with (aad="a", pt="bc...").
        let aead = Aead::new(b"k");
        let nonce = [0u8; 12];
        let ct1 = aead.seal(&nonce, b"ab", b"");
        assert!(aead.open(&nonce, b"a", &ct1).is_err());
    }

    #[test]
    fn too_short_input_is_malformed() {
        let aead = Aead::new(b"k");
        assert!(matches!(
            aead.open(&[0u8; 12], b"", &[0u8; 31]),
            Err(CryptoError::MalformedInput(_))
        ));
    }

    #[test]
    fn deterministic_for_same_inputs() {
        let a = Aead::new(b"k");
        let b = Aead::new(b"k");
        assert_eq!(
            a.seal(&[5u8; 12], b"x", b"y"),
            b.seal(&[5u8; 12], b"x", b"y")
        );
    }
}
