//! HMAC-DRBG (NIST SP 800-90A) over HMAC-SHA-256.
//!
//! The platform's deterministic source of key material: device provisioning
//! derives per-device keys from an OTP seed, and RSA key generation in
//! [`crate::rsa`] draws candidate primes from a DRBG so experiments are
//! reproducible.

use crate::hmac::HmacSha256;

/// An HMAC-DRBG instance.
///
/// # Example
///
/// ```
/// use cres_crypto::drbg::HmacDrbg;
/// let mut a = HmacDrbg::new(b"seed", b"personalization");
/// let mut b = HmacDrbg::new(b"seed", b"personalization");
/// assert_eq!(a.generate(32), b.generate(32));
/// ```
#[derive(Debug, Clone)]
pub struct HmacDrbg {
    key: [u8; 32],
    value: [u8; 32],
    reseed_counter: u64,
}

impl HmacDrbg {
    /// Instantiates the DRBG from entropy input and a personalization
    /// string.
    pub fn new(entropy: &[u8], personalization: &[u8]) -> Self {
        let mut drbg = HmacDrbg {
            key: [0u8; 32],
            value: [1u8; 32],
            reseed_counter: 1,
        };
        let mut seed = Vec::with_capacity(entropy.len() + personalization.len());
        seed.extend_from_slice(entropy);
        seed.extend_from_slice(personalization);
        drbg.update(Some(&seed));
        drbg
    }

    /// Mixes additional entropy into the state.
    pub fn reseed(&mut self, entropy: &[u8]) {
        self.update(Some(entropy));
        self.reseed_counter = 1;
    }

    /// Generates `len` pseudorandom bytes.
    pub fn generate(&mut self, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            self.value = HmacSha256::mac(&self.key, &self.value);
            let take = (len - out.len()).min(32);
            out.extend_from_slice(&self.value[..take]);
        }
        self.update(None);
        self.reseed_counter += 1;
        out
    }

    /// Fills `buf` with pseudorandom bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        let bytes = self.generate(buf.len());
        buf.copy_from_slice(&bytes);
    }

    /// Generates a uniformly random value below `bound` using rejection
    /// sampling on 64-bit chunks.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let mut b = [0u8; 8];
            self.fill(&mut b);
            let v = u64::from_be_bytes(b);
            if v < zone {
                return v % bound;
            }
        }
    }

    /// SP 800-90A HMAC_DRBG_Update.
    fn update(&mut self, provided: Option<&[u8]>) {
        let mut mac = HmacSha256::new(&self.key);
        mac.update(&self.value);
        mac.update(&[0x00]);
        if let Some(p) = provided {
            mac.update(p);
        }
        self.key = mac.finalize();
        self.value = HmacSha256::mac(&self.key, &self.value);
        if let Some(p) = provided {
            let mut mac = HmacSha256::new(&self.key);
            mac.update(&self.value);
            mac.update(&[0x01]);
            mac.update(p);
            self.key = mac.finalize();
            self.value = HmacSha256::mac(&self.key, &self.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = HmacDrbg::new(b"entropy", b"p13n");
        let mut b = HmacDrbg::new(b"entropy", b"p13n");
        assert_eq!(a.generate(100), b.generate(100));
        assert_eq!(a.generate(7), b.generate(7));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::new(b"e1", b"");
        let mut b = HmacDrbg::new(b"e2", b"");
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn personalization_matters() {
        let mut a = HmacDrbg::new(b"e", b"p1");
        let mut b = HmacDrbg::new(b"e", b"p2");
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn successive_outputs_differ() {
        let mut d = HmacDrbg::new(b"e", b"");
        let x = d.generate(32);
        let y = d.generate(32);
        assert_ne!(x, y);
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::new(b"e", b"");
        let mut b = HmacDrbg::new(b"e", b"");
        let _ = a.generate(16);
        let _ = b.generate(16);
        a.reseed(b"fresh");
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn bounded_generation_respects_bound() {
        let mut d = HmacDrbg::new(b"e", b"");
        for _ in 0..1000 {
            assert!(d.gen_u64_below(17) < 17);
        }
    }

    #[test]
    fn bounded_generation_covers_range() {
        let mut d = HmacDrbg::new(b"e", b"");
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[d.gen_u64_below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn output_distribution_rough_uniformity() {
        // Each bit should be set roughly half the time.
        let mut d = HmacDrbg::new(b"stat", b"");
        let bytes = d.generate(10_000);
        let ones: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        let total = 10_000 * 8;
        let frac = ones as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.02, "bit fraction {frac}");
    }
}
