//! Arbitrary-precision unsigned integer arithmetic.
//!
//! A compact limb-vector implementation supporting exactly the operations
//! RSA needs: comparison, add/sub, schoolbook multiplication, long division
//! with remainder, modular exponentiation (square-and-multiply) and a
//! modular inverse (extended binary GCD). Limbs are 32-bit so products fit
//! in `u64` without carry gymnastics.
//!
//! Performance note: deliberate simplicity over speed — RSA here protects a
//! simulated platform at 512–1024-bit moduli, not production traffic.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// The internal representation is little-endian `u32` limbs with no trailing
/// zero limbs (zero is the empty vector).
///
/// # Example
///
/// ```
/// use cres_crypto::bignum::BigUint;
/// let a = BigUint::from_u64(1 << 40);
/// let b = BigUint::from_u64(1 << 20);
/// assert_eq!(&a / &b, BigUint::from_u64(1 << 20));
/// ```
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct BigUint {
    limbs: Vec<u32>, // little-endian, normalized (no trailing zeros)
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Creates a value from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut limbs = vec![(v & 0xffff_ffff) as u32, (v >> 32) as u32];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Parses a big-endian byte string (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 4 + 1);
        for chunk in bytes.rchunks(4) {
            let mut v: u32 = 0;
            for &b in chunk {
                v = (v << 8) | u32::from(b);
            }
            limbs.push(v);
        }
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Serializes to big-endian bytes with no leading zeros (zero → empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // skip leading zeros of the top limb
                let mut started = false;
                for b in bytes {
                    if b != 0 || started {
                        out.push(b);
                        started = true;
                    }
                }
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to big-endian bytes left-padded with zeros to `len`.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (counting from the least-significant bit).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        let off = i % 32;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to 1.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 32;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % 32);
    }

    /// Converts to `u64`, returning `None` when too large.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u64::from(self.limbs[0])),
            2 => Some(u64::from(self.limbs[0]) | (u64::from(self.limbs[1]) << 32)),
            _ => None,
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let mut out = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry: u64 = 0;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = u64::from(*self.limbs.get(i).unwrap_or(&0));
            let b = u64::from(*other.limbs.get(i).unwrap_or(&0));
            let s = a + b + carry;
            out.push((s & 0xffff_ffff) as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow: i64 = 0;
        for i in 0..self.limbs.len() {
            let a = i64::from(self.limbs[i]);
            let b = i64::from(*other.limbs.get(i).unwrap_or(&0));
            let mut d = a - b - borrow;
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u32);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// `self * other` (schoolbook).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u64 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = u64::from(out[i + j]) + u64::from(a) * u64::from(b) + carry;
                out[i + j] = (cur & 0xffff_ffff) as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = u64::from(out[k]) + carry;
                out[k] = (cur & 0xffff_ffff) as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = n / 32;
        let bit_shift = n % 32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry: u32 = 0;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> BigUint {
        let limb_shift = n / 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = n % 32;
        let mut out: Vec<u32> = self.limbs[limb_shift..].to_vec();
        if bit_shift > 0 {
            let mut carry: u32 = 0;
            for l in out.iter_mut().rev() {
                let new = (*l >> bit_shift) | carry;
                carry = *l << (32 - bit_shift);
                *l = new;
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Division with remainder: returns `(self / divisor, self % divisor)`.
    ///
    /// Uses single-limb short division when the divisor fits one limb and
    /// Knuth Algorithm D otherwise.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let d = u64::from(divisor.limbs[0]);
            let mut q = vec![0u32; self.limbs.len()];
            let mut rem: u64 = 0;
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 32) | u64::from(self.limbs[i]);
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            let mut quotient = BigUint { limbs: q };
            quotient.normalize();
            return (quotient, BigUint::from_u64(rem));
        }
        self.div_rem_knuth(divisor)
    }

    /// Knuth Algorithm D (TAOCP 4.3.1) with 32-bit digits.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        let n = divisor.limbs.len();
        let m = self.limbs.len() - n;
        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs[n - 1].leading_zeros() as usize;
        let v = divisor.shl(shift).limbs;
        let mut u = self.shl(shift).limbs;
        u.resize(self.limbs.len() + 1, 0); // one extra high limb

        let mut q = vec![0u32; m + 1];
        let v_top = u64::from(v[n - 1]);
        let v_next = u64::from(v[n - 2]);

        // D2..D7: main loop.
        for j in (0..=m).rev() {
            // D3: estimate qhat.
            let numerator = (u64::from(u[j + n]) << 32) | u64::from(u[j + n - 1]);
            let mut qhat = numerator / v_top;
            let mut rhat = numerator % v_top;
            while qhat >= 1u64 << 32 || qhat * v_next > (rhat << 32) + u64::from(u[j + n - 2]) {
                qhat -= 1;
                rhat += v_top;
                if rhat >= 1u64 << 32 {
                    break;
                }
            }
            // D4: multiply and subtract u[j..j+n+1] -= qhat * v.
            let mut borrow: i64 = 0;
            let mut carry: u64 = 0;
            for i in 0..n {
                let p = qhat * u64::from(v[i]) + carry;
                carry = p >> 32;
                let sub = i64::from(u[j + i]) - (p & 0xffff_ffff) as i64 - borrow;
                if sub < 0 {
                    u[j + i] = (sub + (1i64 << 32)) as u32;
                    borrow = 1;
                } else {
                    u[j + i] = sub as u32;
                    borrow = 0;
                }
            }
            let sub = i64::from(u[j + n]) - carry as i64 - borrow;
            // D5/D6: if we subtracted too much, add back one divisor.
            if sub < 0 {
                u[j + n] = (sub + (1i64 << 32)) as u32;
                qhat -= 1;
                let mut carry: u64 = 0;
                for i in 0..n {
                    let s = u64::from(u[j + i]) + u64::from(v[i]) + carry;
                    u[j + i] = (s & 0xffff_ffff) as u32;
                    carry = s >> 32;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u32);
            } else {
                u[j + n] = sub as u32;
            }
            q[j] = qhat as u32;
        }

        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        // D8: denormalize the remainder.
        let mut remainder = BigUint {
            limbs: u[..n].to_vec(),
        };
        remainder.normalize();
        remainder = remainder.shr(shift);
        (quotient, remainder)
    }

    /// `self mod m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// Modular exponentiation `self^exp mod m` (left-to-right square and
    /// multiply).
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_pow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modulus must be non-zero");
        if m == &BigUint::one() {
            return BigUint::zero();
        }
        let base = self.rem(m);
        let mut result = BigUint::one();
        let mut acc = base;
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.mul(&acc).rem(m);
            }
            acc = acc.mul(&acc).rem(m);
        }
        result
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a = a.shr(1);
            b = b.shr(1);
            shift += 1;
        }
        while a.is_even() {
            a = a.shr(1);
        }
        loop {
            while b.is_even() {
                b = b.shr(1);
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                break;
            }
        }
        a.shl(shift)
    }

    /// Modular inverse of `self` modulo `m`, or `None` when it does not
    /// exist (gcd ≠ 1). Uses the extended Euclidean algorithm with signed
    /// bookkeeping emulated through modulus-offset arithmetic.
    pub fn mod_inverse(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() || self.is_zero() {
            return None;
        }
        // Extended Euclid on (a, m) tracking x where a*x ≡ gcd (mod m).
        // Represent possibly-negative coefficients as (value mod m).
        let mut r0 = self.rem(m);
        let mut r1 = m.clone();
        let mut x0 = BigUint::one();
        let mut x1 = BigUint::zero();
        while !r1.is_zero() {
            let (q, r) = r0.div_rem(&r1);
            // x_{n+1} = x0 - q*x1  (mod m)
            let qx1 = q.mul(&x1).rem(m);
            let x_next = if x0 >= qx1 {
                x0.sub(&qx1)
            } else {
                m.sub(&qx1.sub(&x0).rem(m))
            }
            .rem(m);
            r0 = r1;
            r1 = r;
            x0 = x1;
            x1 = x_next;
        }
        if r0 == BigUint::one() {
            Some(x0.rem(m))
        } else {
            None
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.limbs.len().cmp(&other.limbs.len()).then_with(|| {
            for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                match a.cmp(b) {
                    Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            Ordering::Equal
        })
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "BigUint(0x0)");
        }
        write!(f, "BigUint(0x")?;
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                write!(f, "{limb:x}")?;
            } else {
                write!(f, "{limb:08x}")?;
            }
        }
        write!(f, ")")
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // hex display; decimal conversion is not needed by the platform
        if self.is_zero() {
            return write!(f, "0x0");
        }
        write!(f, "0x")?;
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                write!(f, "{limb:x}")?;
            } else {
                write!(f, "{limb:08x}")?;
            }
        }
        Ok(())
    }
}

impl std::ops::Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        BigUint::add(self, rhs)
    }
}

impl std::ops::Sub for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        BigUint::sub(self, rhs)
    }
}

impl std::ops::Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::mul(self, rhs)
    }
}

impl std::ops::Div for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

impl std::ops::Rem for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        BigUint::rem(self, rhs)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn construction_and_bytes_round_trip() {
        for v in [0u64, 1, 255, 256, 0xffff_ffff, 0x1_0000_0000, u64::MAX] {
            let big = b(v);
            assert_eq!(big.to_u64(), Some(v));
            assert_eq!(BigUint::from_bytes_be(&big.to_bytes_be()), big);
        }
    }

    #[test]
    fn leading_zero_bytes_ignored() {
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 1, 2]), b(0x0102));
    }

    #[test]
    fn padded_serialization() {
        assert_eq!(b(0x0102).to_bytes_be_padded(4), vec![0, 0, 1, 2]);
        assert_eq!(BigUint::zero().to_bytes_be_padded(2), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_serialization_too_small_panics() {
        b(0x010203).to_bytes_be_padded(2);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = b(u64::MAX).mul(&b(12345));
        let c = b(987654321);
        assert_eq!(a.add(&c).sub(&c), a);
        assert_eq!(a.add(&c).sub(&a), c);
    }

    #[test]
    fn add_with_carry_chain() {
        let a = BigUint::from_bytes_be(&[0xff; 16]);
        let one = BigUint::one();
        let sum = a.add(&one);
        assert_eq!(sum.bit_len(), 129);
        assert_eq!(sum.sub(&one), a);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        b(1).sub(&b(2));
    }

    #[test]
    fn mul_matches_u64() {
        for (x, y) in [
            (0u64, 5u64),
            (3, 4),
            (0xffff_ffff, 0xffff_ffff),
            (123456789, 987654321),
        ] {
            let prod = x.checked_mul(y).expect("cases fit in u64");
            assert_eq!(b(x).mul(&b(y)), b(prod));
        }
    }

    #[test]
    fn mul_large() {
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let a = b(u64::MAX);
        let sq = a.mul(&a);
        let expect = BigUint::one()
            .shl(128)
            .sub(&BigUint::one().shl(65))
            .add(&BigUint::one());
        assert_eq!(sq, expect);
    }

    #[test]
    fn shifts() {
        assert_eq!(b(1).shl(100).shr(100), b(1));
        assert_eq!(b(0b1011).shl(2), b(0b101100));
        assert_eq!(b(0b1011).shr(2), b(0b10));
        assert_eq!(b(5).shr(64), BigUint::zero());
        assert_eq!(b(1).shl(32), BigUint::from_u64(1 << 32));
    }

    #[test]
    fn div_rem_matches_u64() {
        for (x, y) in [
            (100u64, 7u64),
            (0, 5),
            (5, 5),
            (u64::MAX, 3),
            (1 << 40, 1 << 20),
        ] {
            let (q, r) = b(x).div_rem(&b(y));
            assert_eq!(q, b(x / y), "{x}/{y}");
            assert_eq!(r, b(x % y), "{x}%{y}");
        }
    }

    #[test]
    fn div_rem_large_reconstructs() {
        let n = BigUint::from_bytes_be(&[0xAB; 33]);
        let d = BigUint::from_bytes_be(&[0x37; 12]);
        let (q, r) = n.div_rem(&d);
        assert!(r < d);
        assert_eq!(q.mul(&d).add(&r), n);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        b(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn mod_pow_small_cases() {
        // 4^13 mod 497 = 445 (classic example)
        assert_eq!(b(4).mod_pow(&b(13), &b(497)), b(445));
        // Fermat: a^(p-1) mod p = 1 for prime p
        assert_eq!(b(7).mod_pow(&b(1000003 - 1), &b(1000003)), b(1));
        // modulus one → zero
        assert_eq!(b(5).mod_pow(&b(3), &BigUint::one()), BigUint::zero());
        // exponent zero → one
        assert_eq!(b(5).mod_pow(&BigUint::zero(), &b(7)), BigUint::one());
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(17).gcd(&b(13)), b(1));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        assert_eq!(b(5).gcd(&b(0)), b(5));
        assert_eq!(b(48).gcd(&b(36)), b(12));
    }

    #[test]
    fn mod_inverse_cases() {
        // 3 * 4 = 12 ≡ 1 mod 11
        assert_eq!(b(3).mod_inverse(&b(11)), Some(b(4)));
        // even numbers have no inverse mod even modulus
        assert_eq!(b(4).mod_inverse(&b(8)), None);
        // inverse verifies: a * a^-1 ≡ 1
        let m = b(1000003);
        for a in [2u64, 999, 123456] {
            let inv = b(a).mod_inverse(&m).unwrap();
            assert_eq!(b(a).mul(&inv).rem(&m), BigUint::one(), "a={a}");
        }
    }

    #[test]
    fn ordering() {
        assert!(b(5) > b(4));
        assert!(b(0x1_0000_0000) > b(0xffff_ffff));
        assert_eq!(b(7).cmp(&b(7)), Ordering::Equal);
    }

    #[test]
    fn bit_access() {
        let v = b(0b1010);
        assert!(!v.bit(0));
        assert!(v.bit(1));
        assert!(!v.bit(2));
        assert!(v.bit(3));
        assert!(!v.bit(100));
        assert_eq!(v.bit_len(), 4);
        assert_eq!(BigUint::zero().bit_len(), 0);
    }

    #[test]
    fn operator_impls() {
        let a = b(100);
        let c = b(7);
        assert_eq!(&a + &c, b(107));
        assert_eq!(&a - &c, b(93));
        assert_eq!(&a * &c, b(700));
        assert_eq!(&a / &c, b(14));
        assert_eq!(&a % &c, b(2));
    }

    #[test]
    fn debug_display_nonempty() {
        assert_eq!(format!("{}", b(255)), "0xff");
        assert_eq!(format!("{}", BigUint::zero()), "0x0");
        assert!(format!("{:?}", b(1)).contains("BigUint"));
        // multi-limb: inner limbs are zero-padded
        assert_eq!(format!("{}", b(1).shl(32)), "0x100000000");
    }
}
