//! Merkle trees with inclusion proofs.
//!
//! The forensic evidence store periodically seals a batch of evidence
//! records under a Merkle root so that an auditor can verify any single
//! record's inclusion without replaying the whole chain. Leaves and interior
//! nodes are domain-separated (`0x00` / `0x01` prefixes) to prevent
//! second-preimage splicing attacks.

use crate::sha2::Sha256;

/// A 32-byte node hash.
pub type NodeHash = [u8; 32];

/// A Merkle tree over a list of byte-string leaves.
///
/// # Example
///
/// ```
/// use cres_crypto::merkle::MerkleTree;
/// let leaves: Vec<&[u8]> = vec![b"a", b"b", b"c"];
/// let tree = MerkleTree::build(leaves.iter().copied());
/// let proof = tree.prove(1).unwrap();
/// assert!(MerkleTree::verify(&tree.root(), b"b", &proof));
/// assert!(!MerkleTree::verify(&tree.root(), b"x", &proof));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    // levels[0] = leaf hashes, levels.last() = [root]
    levels: Vec<Vec<NodeHash>>,
}

/// One step of an inclusion proof: the sibling hash and which side it is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProofStep {
    /// The sibling node's hash.
    pub sibling: NodeHash,
    /// True when the sibling is on the right of the path node.
    pub sibling_on_right: bool,
}

/// An inclusion proof from a leaf to the root.
pub type InclusionProof = Vec<ProofStep>;

fn hash_leaf(data: &[u8]) -> NodeHash {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(data);
    h.finalize()
}

fn hash_node(left: &NodeHash, right: &NodeHash) -> NodeHash {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left);
    h.update(right);
    h.finalize()
}

impl MerkleTree {
    /// Builds a tree over the given leaves. An odd node at any level is
    /// promoted by pairing it with itself.
    ///
    /// # Panics
    ///
    /// Panics when `leaves` is empty — an empty tree has no meaningful root.
    pub fn build<'a>(leaves: impl IntoIterator<Item = &'a [u8]>) -> Self {
        Self::build_inner(leaves.into_iter().map(hash_leaf))
    }

    /// [`MerkleTree::build`] over borrowed 32-byte leaf digests — the
    /// evidence-store case, where leaves are MAC values that already live
    /// in records. Hashes each leaf in place with the usual `0x00` domain
    /// prefix; no intermediate owned buffers are created.
    ///
    /// # Panics
    ///
    /// Panics when `leaves` is empty.
    pub fn build_from_hashes<'a>(leaves: impl IntoIterator<Item = &'a [u8; 32]>) -> Self {
        Self::build_inner(leaves.into_iter().map(|l| hash_leaf(l.as_slice())))
    }

    fn build_inner(leaf_hashes: impl Iterator<Item = NodeHash>) -> Self {
        let leaf_hashes: Vec<NodeHash> = leaf_hashes.collect();
        assert!(
            !leaf_hashes.is_empty(),
            "Merkle tree needs at least one leaf"
        );
        let mut levels = vec![leaf_hashes];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let left = &pair[0];
                let right = pair.get(1).unwrap_or(left);
                next.push(hash_node(left, right));
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root hash.
    pub fn root(&self) -> NodeHash {
        self.levels.last().unwrap()[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Produces an inclusion proof for leaf `index`, or `None` when out of
    /// range.
    pub fn prove(&self, index: usize) -> Option<InclusionProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut proof = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = if idx.is_multiple_of(2) {
                idx + 1
            } else {
                idx - 1
            };
            let sibling = *level.get(sibling_idx).unwrap_or(&level[idx]);
            proof.push(ProofStep {
                sibling,
                sibling_on_right: idx.is_multiple_of(2),
            });
            idx /= 2;
        }
        Some(proof)
    }

    /// Verifies that `leaf_data` is included under `root` via `proof`.
    #[must_use]
    pub fn verify(root: &NodeHash, leaf_data: &[u8], proof: &InclusionProof) -> bool {
        let mut acc = hash_leaf(leaf_data);
        for step in proof {
            acc = if step.sibling_on_right {
                hash_node(&acc, &step.sibling)
            } else {
                hash_node(&step.sibling, &acc)
            };
        }
        &acc == root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_tree() {
        let tree = MerkleTree::build([b"only".as_slice()]);
        assert_eq!(tree.leaf_count(), 1);
        let proof = tree.prove(0).unwrap();
        assert!(proof.is_empty());
        assert!(MerkleTree::verify(&tree.root(), b"only", &proof));
    }

    #[test]
    fn all_proofs_verify_various_sizes() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 33] {
            let data = leaves(n);
            let tree = MerkleTree::build(data.iter().map(|v| v.as_slice()));
            for (i, leaf) in data.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                assert!(
                    MerkleTree::verify(&tree.root(), leaf, &proof),
                    "n={n} leaf={i}"
                );
            }
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf() {
        let data = leaves(8);
        let tree = MerkleTree::build(data.iter().map(|v| v.as_slice()));
        let proof = tree.prove(3).unwrap();
        assert!(!MerkleTree::verify(&tree.root(), b"leaf-4", &proof));
    }

    #[test]
    fn proof_fails_for_wrong_root() {
        let data = leaves(4);
        let tree = MerkleTree::build(data.iter().map(|v| v.as_slice()));
        let proof = tree.prove(0).unwrap();
        let mut bad_root = tree.root();
        bad_root[0] ^= 1;
        assert!(!MerkleTree::verify(&bad_root, b"leaf-0", &proof));
    }

    #[test]
    fn proof_fails_when_tampered() {
        let data = leaves(8);
        let tree = MerkleTree::build(data.iter().map(|v| v.as_slice()));
        let mut proof = tree.prove(2).unwrap();
        proof[1].sibling[5] ^= 1;
        assert!(!MerkleTree::verify(&tree.root(), b"leaf-2", &proof));
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let data = leaves(3);
        let tree = MerkleTree::build(data.iter().map(|v| v.as_slice()));
        assert!(tree.prove(3).is_none());
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let base = leaves(6);
        let tree = MerkleTree::build(base.iter().map(|v| v.as_slice()));
        for i in 0..6 {
            let mut changed = base.clone();
            changed[i][0] ^= 1;
            let t2 = MerkleTree::build(changed.iter().map(|v| v.as_slice()));
            assert_ne!(tree.root(), t2.root(), "leaf {i}");
        }
    }

    #[test]
    fn leaf_interior_domain_separation() {
        // A tree over [h] where h encodes an interior node must not equal
        // the parent of that interior node — the 0x00/0x01 prefixes prevent
        // the classic splice.
        let a = hash_leaf(b"a");
        let b = hash_leaf(b"b");
        let interior = hash_node(&a, &b);
        let tree_over_interior = MerkleTree::build([interior.as_slice()]);
        let two_leaf_tree = MerkleTree::build([b"a".as_slice(), b"b".as_slice()]);
        assert_ne!(tree_over_interior.root(), two_leaf_tree.root());
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_tree_panics() {
        let _ = MerkleTree::build(std::iter::empty::<&[u8]>());
    }
}
