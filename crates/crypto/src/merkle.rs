//! Merkle trees with inclusion proofs.
//!
//! The forensic evidence store periodically seals a batch of evidence
//! records under a Merkle root so that an auditor can verify any single
//! record's inclusion without replaying the whole chain. Leaves and interior
//! nodes are domain-separated (`0x00` / `0x01` prefixes) to prevent
//! second-preimage splicing attacks.

use crate::sha2::Sha256;

/// A 32-byte node hash.
pub type NodeHash = [u8; 32];

/// A Merkle tree over a list of byte-string leaves.
///
/// # Example
///
/// ```
/// use cres_crypto::merkle::MerkleTree;
/// let leaves: Vec<&[u8]> = vec![b"a", b"b", b"c"];
/// let tree = MerkleTree::build(leaves.iter().copied());
/// let proof = tree.prove(1).unwrap();
/// assert!(MerkleTree::verify(&tree.root(), b"b", &proof));
/// assert!(!MerkleTree::verify(&tree.root(), b"x", &proof));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    // levels[0] = leaf hashes, levels.last() = [root]
    levels: Vec<Vec<NodeHash>>,
}

/// One step of an inclusion proof: the sibling hash and which side it is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProofStep {
    /// The sibling node's hash.
    pub sibling: NodeHash,
    /// True when the sibling is on the right of the path node.
    pub sibling_on_right: bool,
}

/// An inclusion proof from a leaf to the root.
pub type InclusionProof = Vec<ProofStep>;

fn hash_leaf(data: &[u8]) -> NodeHash {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(data);
    h.finalize()
}

fn hash_node(left: &NodeHash, right: &NodeHash) -> NodeHash {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left);
    h.update(right);
    h.finalize()
}

impl MerkleTree {
    /// Builds a tree over the given leaves. An odd node at any level is
    /// promoted by pairing it with itself.
    ///
    /// # Panics
    ///
    /// Panics when `leaves` is empty — an empty tree has no meaningful root.
    pub fn build<'a>(leaves: impl IntoIterator<Item = &'a [u8]>) -> Self {
        Self::build_inner(leaves.into_iter().map(hash_leaf))
    }

    /// [`MerkleTree::build`] over borrowed 32-byte leaf digests — the
    /// evidence-store case, where leaves are MAC values that already live
    /// in records. Hashes each leaf in place with the usual `0x00` domain
    /// prefix; no intermediate owned buffers are created.
    ///
    /// # Panics
    ///
    /// Panics when `leaves` is empty.
    pub fn build_from_hashes<'a>(leaves: impl IntoIterator<Item = &'a [u8; 32]>) -> Self {
        Self::build_inner(leaves.into_iter().map(|l| hash_leaf(l.as_slice())))
    }

    fn build_inner(leaf_hashes: impl Iterator<Item = NodeHash>) -> Self {
        let leaf_hashes: Vec<NodeHash> = leaf_hashes.collect();
        assert!(
            !leaf_hashes.is_empty(),
            "Merkle tree needs at least one leaf"
        );
        let mut levels = vec![leaf_hashes];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let left = &pair[0];
                let right = pair.get(1).unwrap_or(left);
                next.push(hash_node(left, right));
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root hash.
    pub fn root(&self) -> NodeHash {
        self.levels.last().unwrap()[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Produces an inclusion proof for leaf `index`, or `None` when out of
    /// range.
    pub fn prove(&self, index: usize) -> Option<InclusionProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut proof = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = if idx.is_multiple_of(2) {
                idx + 1
            } else {
                idx - 1
            };
            let sibling = *level.get(sibling_idx).unwrap_or(&level[idx]);
            proof.push(ProofStep {
                sibling,
                sibling_on_right: idx.is_multiple_of(2),
            });
            idx /= 2;
        }
        Some(proof)
    }

    /// Verifies that `leaf_data` is included under `root` via `proof`.
    #[must_use]
    pub fn verify(root: &NodeHash, leaf_data: &[u8], proof: &InclusionProof) -> bool {
        let mut acc = hash_leaf(leaf_data);
        for step in proof {
            acc = if step.sibling_on_right {
                hash_node(&acc, &step.sibling)
            } else {
                hash_node(&step.sibling, &acc)
            };
        }
        &acc == root
    }

    /// [`MerkleTree::prove`] under its auditor-facing name: the inclusion
    /// proof for leaf `index`, or `None` when out of range. Paired with
    /// [`MerkleTree::verify_proof`].
    pub fn inclusion_proof(&self, index: usize) -> Option<InclusionProof> {
        self.prove(index)
    }

    /// [`MerkleTree::verify`] under its auditor-facing name: checks that
    /// `leaf_data` is included under `root` via `proof`.
    #[must_use]
    pub fn verify_proof(root: &NodeHash, leaf_data: &[u8], proof: &InclusionProof) -> bool {
        Self::verify(root, leaf_data, proof)
    }
}

/// An append-only Merkle accumulator: the "mountain range" of perfect
/// subtree peaks over everything appended so far.
///
/// [`MerkleTree`] rebuilds the whole tree from scratch on every seal —
/// O(n) hashes per seal, O(n²) over the life of a store that seals
/// periodically. The accumulator instead keeps at most one peak per power
/// of two (like binary addition: appending a leaf "carries" equal-height
/// peaks upward), so an append costs O(log n) amortised hashes and a seal
/// costs O(log n) — no re-hashing of history.
///
/// [`MerkleAccumulator::root`] is **identical to the batch tree's root**
/// for the same leaf sequence: the fold replicates the tree's
/// duplicate-odd-promotion rule (an unpaired node at any level pairs with
/// itself) rather than classic mountain-range "bagging", so existing
/// inclusion proofs and sealed roots stay compatible.
///
/// The structure is fixed-size (no heap), so it can live inside hot-path
/// state without violating the allocation budget.
///
/// # Example
///
/// ```
/// use cres_crypto::merkle::{MerkleAccumulator, MerkleTree};
/// let mut acc = MerkleAccumulator::new();
/// for leaf in [b"a".as_slice(), b"b", b"c"] {
///     acc.append(leaf);
/// }
/// let tree = MerkleTree::build([b"a".as_slice(), b"b", b"c"]);
/// assert_eq!(acc.root(), Some(tree.root()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MerkleAccumulator {
    // peaks[h] = root of a perfect subtree of 2^h leaves, or None. At most
    // one peak per height — exactly the binary representation of `leaves`.
    peaks: [Option<NodeHash>; 64],
    leaves: u64,
}

impl Default for MerkleAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl MerkleAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        MerkleAccumulator {
            peaks: [None; 64],
            leaves: 0,
        }
    }

    /// Number of leaves appended so far.
    pub fn leaf_count(&self) -> u64 {
        self.leaves
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.leaves == 0
    }

    /// Forgets everything, returning to the empty state.
    pub fn clear(&mut self) {
        self.peaks = [None; 64];
        self.leaves = 0;
    }

    /// Appends a raw leaf (domain-separated exactly like
    /// [`MerkleTree::build`]).
    pub fn append(&mut self, leaf_data: &[u8]) {
        self.push(hash_leaf(leaf_data));
    }

    /// Appends a borrowed 32-byte digest leaf — the evidence-store case,
    /// matching [`MerkleTree::build_from_hashes`].
    pub fn append_digest(&mut self, digest: &[u8; 32]) {
        self.push(hash_leaf(digest.as_slice()));
    }

    fn push(&mut self, mut node: NodeHash) {
        // Binary carry: merge equal-height peaks upward until a free slot.
        let mut height = 0usize;
        while let Some(peak) = self.peaks[height].take() {
            node = hash_node(&peak, &node);
            height += 1;
        }
        self.peaks[height] = Some(node);
        self.leaves += 1;
    }

    /// The root over all leaves appended so far, equal to
    /// `MerkleTree::build(..).root()` for the same sequence; `None` when
    /// empty.
    ///
    /// Folding ascending by height: the running remainder (everything to
    /// the right of the current peak) is first *promoted* to the peak's
    /// height by pairing it with itself at each missing level — the batch
    /// tree's odd-node rule — then combined with the peak on the left.
    pub fn root(&self) -> Option<NodeHash> {
        let mut acc: Option<(NodeHash, usize)> = None;
        for (height, peak) in self.peaks.iter().enumerate() {
            let Some(peak) = peak else { continue };
            acc = Some(match acc {
                None => (*peak, height),
                Some((mut rem, mut rem_h)) => {
                    while rem_h < height {
                        rem = hash_node(&rem, &rem);
                        rem_h += 1;
                    }
                    (hash_node(peak, &rem), height + 1)
                }
            });
        }
        acc.map(|(root, _)| root)
    }

    /// An inclusion proof for digest leaf `index` against this
    /// accumulator's root.
    ///
    /// The accumulator keeps only O(log n) peaks, not the leaf history, so
    /// the caller supplies the digest sequence it accumulated (the evidence
    /// store's record MACs). The proof is rebuilt through the batch tree —
    /// whose root is bit-identical to [`MerkleAccumulator::root`] — and the
    /// call returns `None` when `index` is out of range, when the leaf
    /// count disagrees with what was appended, or when the supplied leaves
    /// no longer reproduce the accumulated root (tampered history).
    pub fn inclusion_proof<'a>(
        &self,
        leaves: impl IntoIterator<Item = &'a [u8; 32]>,
        index: u64,
    ) -> Option<InclusionProof> {
        if self.is_empty() || index >= self.leaves {
            return None;
        }
        let tree = MerkleTree::build_from_hashes(leaves);
        if tree.leaf_count() as u64 != self.leaves || Some(tree.root()) != self.root() {
            return None;
        }
        tree.inclusion_proof(index as usize)
    }

    /// Verifies that `digest` is a leaf of this accumulator via `proof`
    /// (the counterpart of [`MerkleAccumulator::inclusion_proof`]).
    #[must_use]
    pub fn verify_proof(&self, digest: &[u8; 32], proof: &InclusionProof) -> bool {
        self.root()
            .is_some_and(|root| MerkleTree::verify_proof(&root, digest.as_slice(), proof))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_tree() {
        let tree = MerkleTree::build([b"only".as_slice()]);
        assert_eq!(tree.leaf_count(), 1);
        let proof = tree.prove(0).unwrap();
        assert!(proof.is_empty());
        assert!(MerkleTree::verify(&tree.root(), b"only", &proof));
    }

    #[test]
    fn all_proofs_verify_various_sizes() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 33] {
            let data = leaves(n);
            let tree = MerkleTree::build(data.iter().map(|v| v.as_slice()));
            for (i, leaf) in data.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                assert!(
                    MerkleTree::verify(&tree.root(), leaf, &proof),
                    "n={n} leaf={i}"
                );
            }
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf() {
        let data = leaves(8);
        let tree = MerkleTree::build(data.iter().map(|v| v.as_slice()));
        let proof = tree.prove(3).unwrap();
        assert!(!MerkleTree::verify(&tree.root(), b"leaf-4", &proof));
    }

    #[test]
    fn proof_fails_for_wrong_root() {
        let data = leaves(4);
        let tree = MerkleTree::build(data.iter().map(|v| v.as_slice()));
        let proof = tree.prove(0).unwrap();
        let mut bad_root = tree.root();
        bad_root[0] ^= 1;
        assert!(!MerkleTree::verify(&bad_root, b"leaf-0", &proof));
    }

    #[test]
    fn proof_fails_when_tampered() {
        let data = leaves(8);
        let tree = MerkleTree::build(data.iter().map(|v| v.as_slice()));
        let mut proof = tree.prove(2).unwrap();
        proof[1].sibling[5] ^= 1;
        assert!(!MerkleTree::verify(&tree.root(), b"leaf-2", &proof));
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let data = leaves(3);
        let tree = MerkleTree::build(data.iter().map(|v| v.as_slice()));
        assert!(tree.prove(3).is_none());
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let base = leaves(6);
        let tree = MerkleTree::build(base.iter().map(|v| v.as_slice()));
        for i in 0..6 {
            let mut changed = base.clone();
            changed[i][0] ^= 1;
            let t2 = MerkleTree::build(changed.iter().map(|v| v.as_slice()));
            assert_ne!(tree.root(), t2.root(), "leaf {i}");
        }
    }

    #[test]
    fn leaf_interior_domain_separation() {
        // A tree over [h] where h encodes an interior node must not equal
        // the parent of that interior node — the 0x00/0x01 prefixes prevent
        // the classic splice.
        let a = hash_leaf(b"a");
        let b = hash_leaf(b"b");
        let interior = hash_node(&a, &b);
        let tree_over_interior = MerkleTree::build([interior.as_slice()]);
        let two_leaf_tree = MerkleTree::build([b"a".as_slice(), b"b".as_slice()]);
        assert_ne!(tree_over_interior.root(), two_leaf_tree.root());
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_tree_panics() {
        let _ = MerkleTree::build(std::iter::empty::<&[u8]>());
    }

    #[test]
    fn accumulator_empty_root_is_none() {
        assert_eq!(MerkleAccumulator::new().root(), None);
        assert!(MerkleAccumulator::new().is_empty());
    }

    #[test]
    fn accumulator_matches_batch_tree_all_sizes() {
        let data = leaves(130);
        let mut acc = MerkleAccumulator::new();
        for (n, leaf) in data.iter().enumerate() {
            acc.append(leaf);
            let tree = MerkleTree::build(data[..=n].iter().map(|v| v.as_slice()));
            assert_eq!(acc.root(), Some(tree.root()), "n={}", n + 1);
            assert_eq!(acc.leaf_count(), (n + 1) as u64);
        }
    }

    #[test]
    fn accumulator_digest_leaves_match_build_from_hashes() {
        let digests: Vec<NodeHash> = (0..37u8).map(|i| Sha256::digest(&[i])).collect();
        let mut acc = MerkleAccumulator::new();
        for (n, d) in digests.iter().enumerate() {
            acc.append_digest(d);
            let tree = MerkleTree::build_from_hashes(digests[..=n].iter());
            assert_eq!(acc.root(), Some(tree.root()), "n={}", n + 1);
        }
    }

    #[test]
    fn tree_inclusion_proof_pair_matches_prove_verify() {
        let data = leaves(9);
        let tree = MerkleTree::build(data.iter().map(|v| v.as_slice()));
        for (i, leaf) in data.iter().enumerate() {
            let proof = tree.inclusion_proof(i).unwrap();
            assert_eq!(proof, tree.prove(i).unwrap());
            assert!(MerkleTree::verify_proof(&tree.root(), leaf, &proof));
        }
        assert!(tree.inclusion_proof(9).is_none());
    }

    #[test]
    fn accumulator_proofs_verify_exhaustively() {
        // Every leaf of every size 1..=130 — the same exhaustive sweep the
        // accumulator/batch-tree root equivalence is pinned with.
        let digests: Vec<NodeHash> = (0..130u8).map(|i| Sha256::digest(&[i])).collect();
        let mut acc = MerkleAccumulator::new();
        for (n, d) in digests.iter().enumerate() {
            acc.append_digest(d);
            let covered = &digests[..=n];
            for (i, leaf) in covered.iter().enumerate() {
                let proof = acc.inclusion_proof(covered.iter(), i as u64).unwrap();
                assert!(acc.verify_proof(leaf, &proof), "n={} leaf={i}", n + 1);
            }
            assert!(acc
                .inclusion_proof(covered.iter(), (n + 1) as u64)
                .is_none());
        }
    }

    #[test]
    fn accumulator_proof_rejects_tampered_history() {
        let digests: Vec<NodeHash> = (0..13u8).map(|i| Sha256::digest(&[i])).collect();
        let mut acc = MerkleAccumulator::new();
        for d in &digests {
            acc.append_digest(d);
        }
        // swapped leaf: the supplied history no longer matches the root
        let mut forged = digests.clone();
        forged[4][0] ^= 1;
        assert!(acc.inclusion_proof(forged.iter(), 4).is_none());
        // truncated history: leaf count disagrees
        assert!(acc.inclusion_proof(digests[..12].iter(), 3).is_none());
        // wrong-leaf verification fails
        let proof = acc.inclusion_proof(digests.iter(), 4).unwrap();
        assert!(acc.verify_proof(&digests[4], &proof));
        assert!(!acc.verify_proof(&digests[5], &proof));
        // empty accumulator has nothing to prove or verify
        let empty = MerkleAccumulator::new();
        assert!(empty.inclusion_proof(std::iter::empty(), 0).is_none());
        assert!(!empty.verify_proof(&digests[0], &proof));
    }

    #[test]
    fn accumulator_clear_restarts() {
        let mut acc = MerkleAccumulator::new();
        acc.append(b"old");
        acc.clear();
        assert!(acc.is_empty());
        acc.append(b"only");
        let tree = MerkleTree::build([b"only".as_slice()]);
        assert_eq!(acc.root(), Some(tree.root()));
    }
}
