//! Constant-time comparison helpers.
//!
//! Authentication-tag and signature comparisons must not leak how many
//! leading bytes matched; these helpers accumulate a difference mask over
//! the whole input before deciding.

/// Compares two byte slices in time independent of where they differ.
///
/// Slices of different lengths compare unequal (the length check itself is
/// not secret — lengths are public in every protocol this crate serves).
///
/// # Example
///
/// ```
/// use cres_crypto::ct::ct_eq;
/// assert!(ct_eq(b"tag", b"tag"));
/// assert!(!ct_eq(b"tag", b"tab"));
/// assert!(!ct_eq(b"tag", b"tagg"));
/// ```
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff: u8 = 0;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Collapse to 0/1 without a data-dependent branch.
    diff == 0
}

/// Conditionally selects `a` (when `choice` is true) or `b` without
/// branching on `choice` per element.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn ct_select(choice: bool, a: &[u8], b: &[u8]) -> Vec<u8> {
    assert_eq!(a.len(), b.len(), "ct_select requires equal lengths");
    let mask = (choice as u8).wrapping_neg(); // 0xFF or 0x00
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x & mask) | (y & !mask))
        .collect()
}

/// Zeroises a buffer. A best-effort `write_volatile` keeps the compiler from
/// eliding the wipes that key-zeroisation countermeasures rely on.
pub fn zeroize(buf: &mut [u8]) {
    for b in buf.iter_mut() {
        // SAFETY: `b` is a valid, aligned, exclusive reference.
        unsafe { std::ptr::write_volatile(b, 0) };
    }
    std::sync::atomic::compiler_fence(std::sync::atomic::Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_basic() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
    }

    #[test]
    fn eq_detects_difference_anywhere() {
        let a = vec![7u8; 64];
        for i in 0..64 {
            let mut b = a.clone();
            b[i] ^= 1;
            assert!(!ct_eq(&a, &b), "difference at {i} missed");
        }
    }

    #[test]
    fn select_picks_correctly() {
        assert_eq!(ct_select(true, b"aaa", b"bbb"), b"aaa");
        assert_eq!(ct_select(false, b"aaa", b"bbb"), b"bbb");
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn select_rejects_mismatched_lengths() {
        let _ = ct_select(true, b"a", b"bb");
    }

    #[test]
    fn zeroize_clears() {
        let mut buf = vec![0xAAu8; 32];
        zeroize(&mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }
}
