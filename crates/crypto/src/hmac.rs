//! HMAC (RFC 2104) over SHA-256 and SHA-512.
//!
//! Validated against the RFC 4231 test vectors. HMAC-SHA-256 is the
//! workhorse of the platform: it keys the evidence hash chain in the system
//! security manager and authenticates the AEAD in [`crate::aead`].

use crate::ct::ct_eq;
use crate::sha2::{Sha256, Sha512};

/// Streaming HMAC-SHA-256.
///
/// # Example
///
/// ```
/// use cres_crypto::hmac::HmacSha256;
/// let tag = HmacSha256::mac(b"key", b"message");
/// assert!(HmacSha256::verify(b"key", b"message", &tag));
/// assert!(!HmacSha256::verify(b"key", b"tampered", &tag));
/// ```
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; 64],
}

impl HmacSha256 {
    /// Output length in bytes.
    pub const OUTPUT_LEN: usize = 32;

    /// Creates a keyed MAC instance. Keys longer than the block size are
    /// hashed first, per RFC 2104.
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; 64];
        if key.len() > 64 {
            block_key[..32].copy_from_slice(&Sha256::digest(key));
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; 64];
        let mut opad = [0u8; 64];
        for i in 0..64 {
            ipad[i] = block_key[i] ^ 0x36;
            opad[i] = block_key[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the 32-byte tag.
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot MAC.
    pub fn mac(key: &[u8], message: &[u8]) -> [u8; 32] {
        let mut h = HmacSha256::new(key);
        h.update(message);
        h.finalize()
    }

    /// Constant-time verification of a tag (which may be truncated, minimum
    /// 16 bytes).
    #[must_use]
    pub fn verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
        if tag.len() < 16 || tag.len() > 32 {
            return false;
        }
        let full = Self::mac(key, message);
        ct_eq(&full[..tag.len()], tag)
    }
}

/// Streaming HMAC-SHA-512.
#[derive(Debug, Clone)]
pub struct HmacSha512 {
    inner: Sha512,
    opad_key: [u8; 128],
}

impl HmacSha512 {
    /// Output length in bytes.
    pub const OUTPUT_LEN: usize = 64;

    /// Creates a keyed MAC instance.
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; 128];
        if key.len() > 128 {
            block_key[..64].copy_from_slice(&Sha512::digest(key));
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; 128];
        let mut opad = [0u8; 128];
        for i in 0..128 {
            ipad[i] = block_key[i] ^ 0x36;
            opad[i] = block_key[i] ^ 0x5c;
        }
        let mut inner = Sha512::new();
        inner.update(&ipad);
        HmacSha512 {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the 64-byte tag.
    pub fn finalize(self) -> [u8; 64] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha512::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot MAC.
    pub fn mac(key: &[u8], message: &[u8]) -> [u8; 64] {
        let mut h = HmacSha512::new(key);
        h.update(message);
        h.finalize()
    }

    /// Constant-time verification of a tag (minimum 16 bytes).
    #[must_use]
    pub fn verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
        if tag.len() < 16 || tag.len() > 64 {
            return false;
        }
        let full = Self::mac(key, message);
        ct_eq(&full[..tag.len()], tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        let msg = b"Hi There";
        assert_eq!(
            hex::encode(&HmacSha256::mac(&key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex::encode(&HmacSha512::mac(&key, msg)),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let key = b"Jefe";
        let msg = b"what do ya want for nothing?";
        assert_eq!(
            hex::encode(&HmacSha256::mac(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_case3() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        assert_eq!(
            hex::encode(&HmacSha256::mac(&key, &msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6 (key longer than block size).
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131];
        let msg = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hex::encode(&HmacSha256::mac(&key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key = b"stream-key";
        let msg: Vec<u8> = (0..500u16).map(|i| (i % 256) as u8).collect();
        let mut h = HmacSha256::new(key);
        for c in msg.chunks(13) {
            h.update(c);
        }
        assert_eq!(h.finalize(), HmacSha256::mac(key, &msg));
    }

    #[test]
    fn verify_accepts_truncated_tags() {
        let tag = HmacSha256::mac(b"k", b"m");
        assert!(HmacSha256::verify(b"k", b"m", &tag[..16]));
        assert!(!HmacSha256::verify(b"k", b"m", &tag[..8])); // too short
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let tag = HmacSha256::mac(b"k1", b"m");
        assert!(!HmacSha256::verify(b"k2", b"m", &tag));
    }

    #[test]
    fn sha512_verify_round_trip() {
        let tag = HmacSha512::mac(b"key", b"msg");
        assert!(HmacSha512::verify(b"key", b"msg", &tag));
        assert!(!HmacSha512::verify(b"key", b"msh", &tag));
    }
}
