//! No attack is unreachable from the DSL or the generator: every
//! `AttackKind` variant (and every inject-point variant) is constructible
//! from scenario text by name, and appears in at least one scenario of
//! the default generated corpus.

use cres_attacks::catalog;
use cres_attacks::AttackKind;
use cres_scenario::{compile, generate, name_pool, GenKnobs};

/// Minimal scenario text scheduling one attack by name.
fn text_for(attack: &str) -> String {
    format!(
        "[scenario]\nname = \"probe\"\nduration = 500_000\n\n\
         [[stage]]\nattack = \"{attack}\"\nstart = 100_000\n"
    )
}

#[test]
fn every_attack_kind_is_constructible_from_the_dsl() {
    let mut kinds_seen = Vec::new();
    for name in name_pool() {
        let spec = compile(&text_for(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        let scenario = spec
            .materialise(&catalog::try_build)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(scenario.attacks.len(), 1, "{name}");
        let kind = catalog::kind_of(name).unwrap_or_else(|| panic!("{name} has no kind"));
        if !kinds_seen.contains(&kind) {
            kinds_seen.push(kind);
        }
    }
    assert_eq!(
        kinds_seen.len(),
        AttackKind::ALL.len(),
        "name pool must span every AttackKind variant"
    );
}

#[test]
fn unknown_names_are_rejected_at_compile_time() {
    let err = compile(&text_for("meltdown")).expect_err("must not compile");
    assert!(err.to_string().contains("meltdown"), "{err}");
}

#[test]
fn default_corpus_reaches_every_attack() {
    let corpus = generate(42, &GenKnobs::default());
    assert!(corpus.len() >= 100);
    for kind in AttackKind::ALL {
        let base = catalog::canonical_name(kind);
        assert!(
            corpus.iter().any(|doc| doc
                .stages
                .iter()
                .any(|s| catalog::kind_of(&s.attack) == Some(kind))),
            "no generated scenario exercises {base}"
        );
    }
    for variant in catalog::VARIANTS {
        assert!(
            corpus
                .iter()
                .any(|doc| doc.stages.iter().any(|s| s.attack == variant)),
            "no generated scenario exercises inject-point variant {variant}"
        );
    }
}
