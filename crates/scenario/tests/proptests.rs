//! Property tests for the scenario DSL, generator and shrinker:
//! parse→serialize→parse identity over arbitrary documents, seed
//! determinism of the generator, thread-count invariance of corpus
//! classification, and miss preservation through shrinking.

use cres_platform::PlatformProfile;
use cres_scenario::doc::{Classification, Expectation};
use cres_scenario::{
    classify, generate, name_pool, parse, run_corpus, serialize, shrink, GenKnobs, Outcome,
    ScenarioDoc, StageDoc,
};
use proptest::prelude::*;

/// Builds an arbitrary (syntactically valid) document from drawn data.
/// `stage_data` entries are `(name index, start per-mille, interval)`.
fn build_doc(
    duration: u64,
    benign: u64,
    training: u64,
    flags: u64,
    stage_data: &[(usize, u64, u64)],
) -> ScenarioDoc {
    let pool = name_pool();
    let mut doc = ScenarioDoc::new("prop");
    doc.duration = duration;
    doc.training_rounds = (training % 100) as u32;
    doc.default_workload = flags & 1 != 0;
    doc.expose_slots = flags & 2 != 0;
    doc.benign_packet_period = if benign.is_multiple_of(4) {
        None
    } else {
        Some(500 + benign % 8_000)
    };
    for (k, &(name_idx, start_pm, interval)) in stage_data.iter().enumerate() {
        doc.stages.push(StageDoc {
            attack: pool[name_idx % pool.len()].to_string(),
            start: duration * (start_pm % 1000) / 1000,
            interval: 1 + interval % 16_000,
            decoy: k > 0 && (flags >> (2 + k)) & 1 != 0,
        });
    }
    // sometimes carry an expect block, built from the scored stages
    if flags & 4 != 0 && doc.scored_stages().count() > 0 {
        let mut missed: Vec<String> = doc.scored_stages().map(|s| s.attack.clone()).collect();
        missed.sort();
        missed.dedup();
        let classification = match flags % 3 {
            0 => Classification::Detected,
            1 => Classification::Degraded,
            _ => Classification::Missed,
        };
        doc.expect = Some(Expectation {
            profile: PlatformProfile::ALL[(flags % 3) as usize],
            seed: flags,
            classification,
            missed,
        });
    }
    doc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parse_serialize_parse_is_identity(
        duration in 1_000u64..5_000_000,
        benign: u64,
        training: u64,
        flags: u64,
        stage_data in proptest::collection::vec(
            (0usize..22, 0u64..1000, 0u64..20_000),
            0..6,
        ),
    ) {
        let doc = build_doc(duration, benign, training, flags, &stage_data);
        let text = serialize(&doc);
        let reparsed = parse(&text).expect("canonical text parses");
        prop_assert_eq!(&reparsed, &doc);
        // canonical text is a fixed point of serialize∘parse
        prop_assert_eq!(serialize(&reparsed), text);
    }

    #[test]
    fn generator_is_seed_deterministic(seed: u64) {
        let knobs = GenKnobs { count: 8, ..GenKnobs::default() };
        let a: Vec<String> = generate(seed, &knobs).iter().map(serialize).collect();
        let b: Vec<String> = generate(seed, &knobs).iter().map(serialize).collect();
        prop_assert_eq!(a, b, "same seed must yield a byte-identical corpus");
    }

    #[test]
    fn shrinker_always_preserves_the_miss(
        duration in 200_000u64..2_000_000,
        benign: u64,
        training: u64,
        flags: u64,
        mask: u64,
        stage_data in proptest::collection::vec(
            (0usize..22, 0u64..1000, 0u64..20_000),
            1..6,
        ),
    ) {
        // synthetic oracle: whether a name is missed is a pure function of
        // (name, mask), so shrinking candidates score consistently
        let missed_by_oracle = |name: &str| {
            let h = name.bytes().fold(0u64, |acc, b| {
                acc.wrapping_mul(131).wrapping_add(u64::from(b))
            });
            (h ^ mask) & 1 == 0
        };
        let oracle = |doc: &ScenarioDoc| {
            let mut missed: Vec<String> = doc
                .scored_stages()
                .filter(|s| missed_by_oracle(&s.attack))
                .map(|s| s.attack.clone())
                .collect();
            missed.sort();
            missed.dedup();
            let scored = doc.scored_stages().count();
            let classification = if missed.is_empty() {
                Classification::Detected
            } else if doc.scored_stages().all(|s| missed_by_oracle(&s.attack)) {
                Classification::Missed
            } else {
                let _ = scored;
                Classification::Degraded
            };
            Outcome { classification, missed }
        };

        let doc = build_doc(duration, benign, training, flags, &stage_data);
        let target = oracle(&doc).missed;
        let mut run = oracle;
        let shrunk = shrink(&doc, &mut run);
        let after = oracle(&shrunk);
        for name in &target {
            prop_assert!(
                after.missed.contains(name),
                "shrinking lost the miss of {} (doc {:?} -> {:?})",
                name,
                doc,
                shrunk
            );
        }
        prop_assert!(shrunk.stages.len() <= doc.stages.len());
    }
}

/// The acceptance-criteria determinism matrix: classifying the same
/// generated corpus on 1, 2 and 8 campaign jobs yields identical outcomes
/// *and* byte-identical reports.
#[test]
fn corpus_classification_is_thread_count_invariant() {
    let knobs = GenKnobs {
        count: 6,
        base_duration: 300_000,
        max_stages: 2,
        ..GenKnobs::default()
    };
    let corpus = generate(42, &knobs);
    let reference = run_corpus(&corpus, PlatformProfile::CyberResilient, 42, 1)
        .expect("generated names resolve");
    for threads in [2, 8] {
        let runs = run_corpus(&corpus, PlatformProfile::CyberResilient, 42, threads)
            .expect("generated names resolve");
        assert_eq!(runs.len(), reference.len());
        for (a, b) in reference.iter().zip(&runs) {
            assert_eq!(a.name, b.name, "{threads} threads");
            assert_eq!(a.outcome, b.outcome, "{threads} threads: {}", a.name);
            assert_eq!(
                a.report.to_json(),
                b.report.to_json(),
                "{threads} threads: {} report bytes",
                a.name
            );
        }
    }
    // classify() is itself deterministic given the same report
    for run in &reference {
        let doc = corpus.iter().find(|d| d.name == run.name).unwrap();
        assert_eq!(classify(doc, &run.report), run.outcome);
    }
}
