#![warn(missing_docs)]

//! Scenario DSL + generative attack fuzzing for the CRES platform.
//!
//! ROADMAP item 4: turn the attack surface from *enumerated* (a hand-coded
//! gauntlet) into *generative*. Four pieces:
//!
//! * [`doc`] — the semantic scenario model ([`ScenarioDoc`]): stages,
//!   timing, decoy/noise knobs, compiled to the campaign engine's
//!   [`ScenarioSpec`](cres_platform::campaign::ScenarioSpec);
//! * [`text`] — the TOML-shaped DSL ([`parse`]/[`serialize`]), canonical
//!   and lossless so fixtures round-trip byte-for-byte;
//! * [`gen`] — the seed-driven generator ([`generate`]): composes catalog
//!   attack primitives into novel multi-stage campaigns, deterministically
//!   from a single seed;
//! * [`gauntlet`] + [`mod@shrink`] — run a corpus, classify every scenario as
//!   detected/degraded/missed, minimize any miss while preserving it, and
//!   pin the minimized scenario as a replayable regression fixture.
//!
//! ```
//! use cres_scenario::{parse, serialize, Classification};
//!
//! let doc = parse(
//!     "[scenario]\nname = \"demo\"\nduration = 500_000\n\
//!      [[stage]]\nattack = \"network-flood\"\nstart = 100_000\n",
//! )
//! .expect("valid scenario text");
//! assert_eq!(doc.stages.len(), 1);
//! assert_eq!(parse(&serialize(&doc)).unwrap(), doc);
//! assert_eq!(Classification::parse("missed").unwrap().name(), "missed");
//! ```

pub mod doc;
pub mod gauntlet;
pub mod gen;
pub mod shrink;
pub mod text;

pub use doc::{Classification, Expectation, ScenarioDoc, StageDoc};
pub use gauntlet::{classify, run_corpus, run_one, verify_pinned, CorpusRun, Outcome};
pub use gen::{generate, name_pool, GenKnobs};
pub use shrink::{pin, shrink};
pub use text::{compile, parse, serialize, ParseError};
