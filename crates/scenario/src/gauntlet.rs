//! The gauntlet: run scenario documents through the platform and classify
//! each as detected / degraded / missed.
//!
//! Stage ↔ outcome alignment is positional: `ScenarioSpec::materialise`
//! preserves attack order, and `RunReport.attacks` is index-aligned with
//! the spec, so stage `k`'s outcome is `report.attacks[k]`. Decoy stages
//! participate in the run (they load the monitors like any other attack)
//! but are excluded from scoring.

use crate::doc::{Classification, ScenarioDoc};
use cres_attacks::catalog;
use cres_attacks::UnknownAttack;
use cres_platform::campaign::{Campaign, CampaignError};
use cres_platform::{PlatformProfile, RunReport, ScenarioRunner};

/// A scored scenario: the classification plus exactly which scored attack
/// names went undetected (sorted, deduplicated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Whole-scenario classification over the scored stages.
    pub classification: Classification,
    /// Scored attack names with no matching incident.
    pub missed: Vec<String>,
}

/// One corpus entry's result: the scenario name, its outcome and the full
/// run report behind it.
#[derive(Debug)]
pub struct CorpusRun {
    /// `ScenarioDoc::name` of the scenario that ran.
    pub name: String,
    /// Its scored outcome.
    pub outcome: Outcome,
    /// The underlying platform report.
    pub report: RunReport,
}

/// Scores a report against its scenario document.
///
/// # Panics
///
/// Panics if `report.attacks` is not index-aligned with `doc.stages` —
/// that means the report was produced from a different scenario.
pub fn classify(doc: &ScenarioDoc, report: &RunReport) -> Outcome {
    assert_eq!(
        doc.stages.len(),
        report.attacks.len(),
        "report/stage misalignment for scenario {:?}",
        doc.name
    );
    let mut scored = 0usize;
    let mut detected = 0usize;
    let mut missed: Vec<String> = Vec::new();
    for (stage, outcome) in doc.stages.iter().zip(&report.attacks) {
        if stage.decoy {
            continue;
        }
        scored += 1;
        if outcome.detected() {
            detected += 1;
        } else {
            missed.push(stage.attack.clone());
        }
    }
    missed.sort();
    missed.dedup();
    let classification = if scored == 0 || detected == scored {
        Classification::Detected
    } else if detected == 0 {
        Classification::Missed
    } else {
        Classification::Degraded
    };
    Outcome {
        classification,
        missed,
    }
}

/// Runs one scenario on the calling thread.
pub fn run_one(
    doc: &ScenarioDoc,
    profile: PlatformProfile,
    seed: u64,
) -> Result<RunReport, UnknownAttack> {
    let scenario = doc.spec().materialise(&catalog::try_build)?;
    Ok(ScenarioRunner::new(doc.config(profile, seed)).run(scenario))
}

/// Runs a whole corpus through the campaign engine on `threads` workers
/// and classifies every scenario. Results are in corpus order.
pub fn run_corpus(
    corpus: &[ScenarioDoc],
    profile: PlatformProfile,
    seed: u64,
    threads: usize,
) -> Result<Vec<CorpusRun>, CampaignError> {
    let mut campaign = Campaign::new(catalog::try_build);
    for doc in corpus {
        campaign.submit(doc.name.clone(), doc.config(profile, seed), doc.spec());
    }
    let summary = campaign.run_parallel(threads)?;
    Ok(summary
        .results
        .into_iter()
        .zip(corpus)
        .map(|(result, doc)| CorpusRun {
            name: result.label,
            outcome: classify(doc, &result.report),
            report: result.report,
        })
        .collect())
}

/// Replays a pinned regression fixture and checks the recorded
/// expectation still holds: same classification, same missed set.
///
/// `Err` carries a human-readable divergence description (also used by
/// `e13_fuzz` to fail the nightly run).
pub fn verify_pinned(doc: &ScenarioDoc) -> Result<Outcome, String> {
    doc.validate()?;
    let Some(expect) = &doc.expect else {
        return Err(format!(
            "scenario {:?} has no [expect] block — not a pinned fixture",
            doc.name
        ));
    };
    let report = run_one(doc, expect.profile, expect.seed).map_err(|e| e.to_string())?;
    let outcome = classify(doc, &report);
    if outcome.classification != expect.classification {
        return Err(format!(
            "scenario {:?}: classification {} diverged from pinned {} \
             (detection behaviour changed — re-bless the fixture if intentional)",
            doc.name,
            outcome.classification.name(),
            expect.classification.name()
        ));
    }
    if outcome.missed != expect.missed {
        return Err(format!(
            "scenario {:?}: missed set {:?} diverged from pinned {:?}",
            doc.name, outcome.missed, expect.missed
        ));
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::StageDoc;

    fn flood_doc() -> ScenarioDoc {
        let mut doc = ScenarioDoc::new("flood");
        doc.duration = 400_000;
        doc.stages.push(StageDoc {
            attack: "network-flood".into(),
            start: 100_000,
            interval: 2_000,
            decoy: false,
        });
        doc
    }

    #[test]
    fn resilient_profile_detects_the_flood() {
        let doc = flood_doc();
        let report = run_one(&doc, PlatformProfile::CyberResilient, 42).unwrap();
        let outcome = classify(&doc, &report);
        assert_eq!(outcome.classification, Classification::Detected);
        assert!(outcome.missed.is_empty());
    }

    #[test]
    fn passive_profile_misses_it() {
        let doc = flood_doc();
        let report = run_one(&doc, PlatformProfile::PassiveTrust, 42).unwrap();
        let outcome = classify(&doc, &report);
        assert_eq!(outcome.classification, Classification::Missed);
        assert_eq!(outcome.missed, vec!["network-flood".to_string()]);
    }

    #[test]
    fn decoys_do_not_count() {
        let mut doc = flood_doc();
        doc.stages[0].decoy = true;
        doc.stages.push(StageDoc {
            attack: "sensor-spoof".into(),
            start: 200_000,
            interval: 1_000,
            decoy: false,
        });
        let report = run_one(&doc, PlatformProfile::PassiveTrust, 42).unwrap();
        let outcome = classify(&doc, &report);
        // only the scored sensor-spoof stage counts
        assert_eq!(outcome.missed, vec!["sensor-spoof".to_string()]);
        assert_eq!(outcome.classification, Classification::Missed);
    }

    #[test]
    fn corpus_runs_classify_in_order() {
        let docs = vec![flood_doc(), {
            let mut d = flood_doc();
            d.name = "flood-2".into();
            d
        }];
        let runs = run_corpus(&docs, PlatformProfile::CyberResilient, 7, 2).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].name, "flood");
        assert_eq!(runs[1].name, "flood-2");
        assert!(runs
            .iter()
            .all(|r| r.outcome.classification == Classification::Detected));
    }
}
