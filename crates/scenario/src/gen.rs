//! The seed-driven scenario generator: composes catalog attack primitives
//! into novel multi-stage campaigns, deterministically from a single seed.
//!
//! Determinism contract: [`generate`] is a pure function of
//! `(seed, knobs)`. Each scenario draws from its own forked RNG stream
//! (`fork("scn-NNN")`, the same splitmix64-seeded generator the rest of
//! the workspace uses), so inserting or removing one scenario never
//! perturbs the others. Stage 0 of scenario *i* walks the full catalog
//! round-robin, which guarantees every base name *and* every inject-point
//! variant appears in any corpus of at least
//! `catalog::NAMES.len() + catalog::VARIANTS.len()` scenarios — the
//! exhaustiveness tests pin this.

use crate::doc::{ScenarioDoc, StageDoc};
use cres_attacks::catalog;
use cres_attacks::AttackKind;
use cres_sim::DetRng;

/// Generator knobs. The defaults produce the standard 120-scenario corpus
/// the E13 gauntlet runs.
#[derive(Debug, Clone, PartialEq)]
pub struct GenKnobs {
    /// Scenarios to generate.
    pub count: usize,
    /// Nominal duration; each scenario jitters within 0.8×..1.3×.
    pub base_duration: u64,
    /// Maximum attack stages per scenario (min is 1).
    pub max_stages: usize,
    /// Probability that a follow-on stage is a decoy.
    pub decoy_chance: f64,
    /// Probability a scenario escalates: stages bunch together over time
    /// with shrinking step intervals, modelling an attacker ramping up.
    pub escalation_chance: f64,
}

impl Default for GenKnobs {
    fn default() -> Self {
        GenKnobs {
            count: 120,
            base_duration: 1_000_000,
            max_stages: 4,
            decoy_chance: 0.3,
            escalation_chance: 0.25,
        }
    }
}

/// The full name pool the generator draws from: every catalog base name
/// followed by every inject-point variant.
pub fn name_pool() -> Vec<&'static str> {
    catalog::NAMES
        .iter()
        .chain(catalog::VARIANTS.iter())
        .copied()
        .collect()
}

/// Step intervals the generator samples (cycles between attack steps).
const INTERVALS: [u64; 5] = [500, 1_000, 2_000, 4_000, 8_000];

/// Benign background-traffic periods the generator samples.
const BENIGN_PERIODS: [u64; 3] = [1_000, 2_000, 4_000];

fn needs_slot_access(name: &str) -> bool {
    matches!(
        catalog::kind_of(name),
        Some(AttackKind::FirmwareTamper | AttackKind::Downgrade)
    )
}

/// Generates a deterministic corpus of `knobs.count` scenarios from a
/// single seed. Same seed, same knobs ⇒ byte-identical corpus.
pub fn generate(seed: u64, knobs: &GenKnobs) -> Vec<ScenarioDoc> {
    let pool = name_pool();
    let mut parent = DetRng::seed_from(seed);
    let mut corpus = Vec::with_capacity(knobs.count);
    for i in 0..knobs.count {
        let mut rng = parent.fork(&format!("scn-{i:03}"));
        let duration = knobs.base_duration * rng.range_u64(8, 14) / 10;
        let stage_count = 1 + rng.index(knobs.max_stages.max(1));
        let escalation = rng.chance(knobs.escalation_chance);

        // stage 0 walks the catalog round-robin (coverage guarantee);
        // follow-on stages are free composition
        let mut names: Vec<&str> = vec![pool[i % pool.len()]];
        for _ in 1..stage_count {
            names.push(*rng.choose(&pool));
        }

        let n = names.len() as u64;
        let mut stages = Vec::with_capacity(names.len());
        for (k, name) in names.iter().enumerate() {
            // evenly spread anchors with ±duration/32 jitter; escalation
            // compresses the schedule into the first half of the run
            let span = if escalation { duration / 2 } else { duration };
            let anchor = span * (k as u64 + 1) / (n + 1);
            let jitter = duration / 32;
            let start = (anchor.saturating_sub(jitter / 2) + rng.range_u64(0, jitter.max(1)))
                .min(duration - 1);
            let interval = if escalation {
                INTERVALS[INTERVALS.len() - 1 - k.min(INTERVALS.len() - 1)]
            } else {
                *rng.choose(&INTERVALS)
            };
            let decoy = k > 0 && rng.chance(knobs.decoy_chance);
            stages.push(StageDoc {
                attack: (*name).to_string(),
                start,
                interval,
                decoy,
            });
        }
        stages.sort_by_key(|s| s.start);
        // scoring needs at least one non-decoy stage
        if stages.iter().all(|s| s.decoy) {
            stages[0].decoy = false;
        }

        let mut doc = ScenarioDoc::new(format!("gen-{seed}-{i:03}"));
        doc.duration = duration;
        doc.benign_packet_period = if rng.chance(0.2) {
            None
        } else {
            Some(*rng.choose(&BENIGN_PERIODS))
        };
        doc.expose_slots = stages.iter().any(|s| needs_slot_access(&s.attack));
        doc.stages = stages;
        debug_assert_eq!(doc.validate(), Ok(()));
        corpus.push(doc);
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::serialize;

    #[test]
    fn corpus_is_seed_deterministic() {
        let knobs = GenKnobs::default();
        let a: Vec<String> = generate(42, &knobs).iter().map(serialize).collect();
        let b: Vec<String> = generate(42, &knobs).iter().map(serialize).collect();
        assert_eq!(a, b);
        let c: Vec<String> = generate(43, &knobs).iter().map(serialize).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn every_catalog_name_appears_in_the_default_corpus() {
        let corpus = generate(42, &GenKnobs::default());
        assert!(corpus.len() >= 100, "default corpus must be 100+ scenarios");
        for name in name_pool() {
            assert!(
                corpus
                    .iter()
                    .any(|doc| doc.stages.iter().any(|s| s.attack == name)),
                "{name} unreachable from the generator"
            );
        }
    }

    #[test]
    fn every_scenario_validates_and_scores_something() {
        for doc in generate(7, &GenKnobs::default()) {
            doc.validate().unwrap_or_else(|e| panic!("{e}"));
            assert!(doc.scored_stages().count() >= 1, "{}", doc.name);
            assert!(
                !doc.stages.is_empty() && doc.stages.len() <= 4,
                "{}",
                doc.name
            );
        }
    }

    #[test]
    fn slot_exposure_follows_firmware_stages() {
        for doc in generate(11, &GenKnobs::default()) {
            let needs = doc.stages.iter().any(|s| needs_slot_access(&s.attack));
            assert_eq!(doc.expose_slots, needs, "{}", doc.name);
        }
    }

    #[test]
    fn stages_are_schedule_ordered_inside_the_run() {
        for doc in generate(3, &GenKnobs::default()) {
            assert!(
                doc.stages.windows(2).all(|w| w[0].start <= w[1].start),
                "{}",
                doc.name
            );
            assert!(doc.stages.iter().all(|s| s.start < doc.duration));
        }
    }
}
