//! The textual scenario format: a deliberately small TOML-shaped dialect.
//!
//! ```text
//! [scenario]
//! name = "flood-then-spoof"
//! duration = 1_000_000
//! training_rounds = 50
//! default_workload = true
//! benign_packet_period = 2_000        # or "none" for a silent network
//! expose_slots = false
//!
//! [[stage]]
//! attack = "network-flood"            # catalog name, ":variant" selects
//! start = 250_000                     # an alternative inject point
//! interval = 2_000
//! decoy = false                       # decoys are excluded from scoring
//!
//! [expect]                            # present only on pinned fixtures
//! profile = "cres"
//! seed = 42
//! classification = "missed"
//! missed = ["firmware-downgrade"]
//! ```
//!
//! [`serialize`] is *canonical*: every key is written, in a fixed order,
//! with `_`-grouped integers — so `parse(serialize(doc)) == doc` and a
//! re-serialized file is byte-stable. The parser accepts omitted optional
//! keys (defaults from [`crate::doc`]), `#` comments and blank lines, and
//! reports every error with its line number.

use crate::doc::{
    parse_profile, profile_name, Classification, Expectation, ScenarioDoc, StageDoc,
    DEFAULT_INTERVAL,
};
use cres_platform::campaign::ScenarioSpec;
use std::fmt;

/// A syntax error in scenario text, located by 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Value {
    Int(u64),
    Bool(bool),
    Str(String),
    List(Vec<String>),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Bool(_) => "boolean",
            Value::Str(_) => "string",
            Value::List(_) => "string list",
        }
    }
}

/// Strips a trailing `# comment`, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(raw: &str, line: usize) -> Result<String, ParseError> {
    let inner = raw
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or(ParseError {
            line,
            message: format!("expected a double-quoted string, got {raw:?}"),
        })?;
    if inner.contains(['"', '\\']) || inner.chars().any(|c| (c as u32) < 0x20) {
        return err(line, format!("unsupported characters in string {inner:?}"));
    }
    Ok(inner.to_string())
}

fn parse_int(raw: &str, line: usize) -> Result<u64, ParseError> {
    let digits: String = raw.chars().filter(|&c| c != '_').collect();
    if digits.is_empty() || !digits.chars().all(|c| c.is_ascii_digit()) {
        return err(line, format!("expected an integer, got {raw:?}"));
    }
    digits.parse().map_err(|_| ParseError {
        line,
        message: format!("integer {raw:?} out of range"),
    })
}

fn parse_value(raw: &str, line: usize) -> Result<Value, ParseError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return err(line, "missing value after `=`");
    }
    if raw.starts_with('"') {
        return Ok(Value::Str(parse_string(raw, line)?));
    }
    if raw == "true" {
        return Ok(Value::Bool(true));
    }
    if raw == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = raw.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or(ParseError {
                line,
                message: "unterminated list (missing `]`)".into(),
            })?
            .trim();
        let mut items = Vec::new();
        if !body.is_empty() {
            for item in body.split(',') {
                items.push(parse_string(item.trim(), line)?);
            }
        }
        return Ok(Value::List(items));
    }
    Ok(Value::Int(parse_int(raw, line)?))
}

fn expect_str(value: Value, key: &str, line: usize) -> Result<String, ParseError> {
    match value {
        Value::Str(s) => Ok(s),
        other => err(line, format!("{key} takes a string, got {}", other.kind())),
    }
}

fn expect_int(value: Value, key: &str, line: usize) -> Result<u64, ParseError> {
    match value {
        Value::Int(n) => Ok(n),
        other => err(
            line,
            format!("{key} takes an integer, got {}", other.kind()),
        ),
    }
}

fn expect_bool(value: Value, key: &str, line: usize) -> Result<bool, ParseError> {
    match value {
        Value::Bool(b) => Ok(b),
        other => err(line, format!("{key} takes a boolean, got {}", other.kind())),
    }
}

#[derive(Default)]
struct PendingStage {
    header_line: usize,
    attack: Option<String>,
    start: Option<u64>,
    interval: Option<u64>,
    decoy: Option<bool>,
}

impl PendingStage {
    fn finish(self) -> Result<StageDoc, ParseError> {
        let line = self.header_line;
        Ok(StageDoc {
            attack: self.attack.ok_or(ParseError {
                line,
                message: "[[stage]] is missing required key `attack`".into(),
            })?,
            start: self.start.ok_or(ParseError {
                line,
                message: "[[stage]] is missing required key `start`".into(),
            })?,
            interval: self.interval.unwrap_or(DEFAULT_INTERVAL),
            decoy: self.decoy.unwrap_or(false),
        })
    }
}

#[derive(Default)]
struct PendingExpect {
    header_line: usize,
    profile: Option<String>,
    seed: Option<u64>,
    classification: Option<String>,
    missed: Option<Vec<String>>,
}

impl PendingExpect {
    fn finish(self) -> Result<Expectation, ParseError> {
        let line = self.header_line;
        let missing = |key: &str| ParseError {
            line,
            message: format!("[expect] is missing required key `{key}`"),
        };
        let profile_raw = self.profile.ok_or_else(|| missing("profile"))?;
        let profile = parse_profile(&profile_raw).ok_or(ParseError {
            line,
            message: format!(
                "unknown profile {profile_raw:?} (expected cres, passive or tee-shared)"
            ),
        })?;
        let class_raw = self
            .classification
            .ok_or_else(|| missing("classification"))?;
        let classification = Classification::parse(&class_raw).ok_or(ParseError {
            line,
            message: format!(
                "unknown classification {class_raw:?} (expected detected, degraded or missed)"
            ),
        })?;
        Ok(Expectation {
            profile,
            seed: self.seed.ok_or_else(|| missing("seed"))?,
            classification,
            missed: self.missed.unwrap_or_default(),
        })
    }
}

#[derive(PartialEq)]
enum Section {
    Preamble,
    Scenario,
    Stage,
    Expect,
}

/// Parses scenario text into its document form.
///
/// Syntax only — semantic checks (catalog names, timing bounds) live in
/// [`ScenarioDoc::validate`].
pub fn parse(text: &str) -> Result<ScenarioDoc, ParseError> {
    let mut section = Section::Preamble;
    let mut seen_keys: Vec<String> = Vec::new();
    let mut doc: Option<ScenarioDoc> = None;
    let mut have_name = false;
    let mut have_duration = false;
    let mut stage: Option<PendingStage> = None;
    let mut expect: Option<PendingExpect> = None;

    for (index, raw_line) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }

        if line.starts_with('[') {
            if let Some(pending) = stage.take() {
                doc.as_mut()
                    .expect("stage section implies scenario section")
                    .stages
                    .push(pending.finish()?);
            }
            match line {
                "[scenario]" => {
                    if doc.is_some() {
                        return err(line_no, "duplicate [scenario] section");
                    }
                    doc = Some(ScenarioDoc::new(String::new()));
                    section = Section::Scenario;
                }
                "[[stage]]" => {
                    if doc.is_none() {
                        return err(line_no, "[[stage]] before the [scenario] section");
                    }
                    stage = Some(PendingStage {
                        header_line: line_no,
                        ..PendingStage::default()
                    });
                    section = Section::Stage;
                }
                "[expect]" => {
                    if doc.is_none() {
                        return err(line_no, "[expect] before the [scenario] section");
                    }
                    if expect.is_some() {
                        return err(line_no, "duplicate [expect] section");
                    }
                    expect = Some(PendingExpect {
                        header_line: line_no,
                        ..PendingExpect::default()
                    });
                    section = Section::Expect;
                }
                other => return err(line_no, format!("unknown section {other:?}")),
            }
            seen_keys.clear();
            continue;
        }

        let Some((key, value_raw)) = line.split_once('=') else {
            return err(line_no, format!("expected `key = value`, got {line:?}"));
        };
        let key = key.trim();
        if seen_keys.iter().any(|k| k == key) {
            return err(line_no, format!("duplicate key `{key}`"));
        }
        seen_keys.push(key.to_string());
        let value = parse_value(value_raw, line_no)?;

        match section {
            Section::Preamble => {
                return err(line_no, "key/value before the [scenario] section");
            }
            Section::Scenario => {
                let doc = doc.as_mut().expect("section implies doc");
                match key {
                    "name" => {
                        doc.name = expect_str(value, key, line_no)?;
                        have_name = true;
                    }
                    "duration" => {
                        doc.duration = expect_int(value, key, line_no)?;
                        have_duration = true;
                    }
                    "training_rounds" => {
                        let n = expect_int(value, key, line_no)?;
                        doc.training_rounds = u32::try_from(n).map_err(|_| ParseError {
                            line: line_no,
                            message: format!("training_rounds {n} out of range"),
                        })?;
                    }
                    "default_workload" => doc.default_workload = expect_bool(value, key, line_no)?,
                    "benign_packet_period" => {
                        doc.benign_packet_period = match value {
                            Value::Int(n) => Some(n),
                            Value::Str(s) if s == "none" => None,
                            other => {
                                return err(
                                    line_no,
                                    format!(
                                        "benign_packet_period takes an integer or \"none\", got {}",
                                        other.kind()
                                    ),
                                )
                            }
                        };
                    }
                    "expose_slots" => doc.expose_slots = expect_bool(value, key, line_no)?,
                    other => {
                        return err(line_no, format!("unknown [scenario] key `{other}`"));
                    }
                }
            }
            Section::Stage => {
                let stage = stage.as_mut().expect("section implies stage");
                match key {
                    "attack" => stage.attack = Some(expect_str(value, key, line_no)?),
                    "start" => stage.start = Some(expect_int(value, key, line_no)?),
                    "interval" => stage.interval = Some(expect_int(value, key, line_no)?),
                    "decoy" => stage.decoy = Some(expect_bool(value, key, line_no)?),
                    other => return err(line_no, format!("unknown [[stage]] key `{other}`")),
                }
            }
            Section::Expect => {
                let expect = expect.as_mut().expect("section implies expect");
                match key {
                    "profile" => expect.profile = Some(expect_str(value, key, line_no)?),
                    "seed" => expect.seed = Some(expect_int(value, key, line_no)?),
                    "classification" => {
                        expect.classification = Some(expect_str(value, key, line_no)?)
                    }
                    "missed" => {
                        expect.missed = Some(match value {
                            Value::List(items) => items,
                            other => {
                                return err(
                                    line_no,
                                    format!("missed takes a string list, got {}", other.kind()),
                                )
                            }
                        })
                    }
                    other => return err(line_no, format!("unknown [expect] key `{other}`")),
                }
            }
        }
    }

    if let Some(pending) = stage.take() {
        doc.as_mut()
            .expect("stage section implies scenario section")
            .stages
            .push(pending.finish()?);
    }
    let mut doc = match doc {
        Some(doc) => doc,
        None => return err(1, "missing [scenario] section"),
    };
    if !have_name {
        return err(1, "[scenario] is missing required key `name`");
    }
    if !have_duration {
        return err(1, "[scenario] is missing required key `duration`");
    }
    if let Some(pending) = expect {
        doc.expect = Some(pending.finish()?);
    }
    Ok(doc)
}

/// Formats an integer with `_` grouping every three digits (`1_200_000`).
fn fmt_int(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    let lead = digits.len() % 3;
    for (i, c) in digits.chars().enumerate() {
        if i != 0 && (i + 3 - lead).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

/// Serializes a document to canonical scenario text: every key written,
/// fixed order, grouped integers. `parse(serialize(doc)) == doc`.
pub fn serialize(doc: &ScenarioDoc) -> String {
    let mut out = String::new();
    out.push_str("[scenario]\n");
    out.push_str(&format!("name = \"{}\"\n", doc.name));
    out.push_str(&format!("duration = {}\n", fmt_int(doc.duration)));
    out.push_str(&format!(
        "training_rounds = {}\n",
        fmt_int(u64::from(doc.training_rounds))
    ));
    out.push_str(&format!("default_workload = {}\n", doc.default_workload));
    match doc.benign_packet_period {
        Some(period) => out.push_str(&format!("benign_packet_period = {}\n", fmt_int(period))),
        None => out.push_str("benign_packet_period = \"none\"\n"),
    }
    out.push_str(&format!("expose_slots = {}\n", doc.expose_slots));
    for stage in &doc.stages {
        out.push_str("\n[[stage]]\n");
        out.push_str(&format!("attack = \"{}\"\n", stage.attack));
        out.push_str(&format!("start = {}\n", fmt_int(stage.start)));
        out.push_str(&format!("interval = {}\n", fmt_int(stage.interval)));
        out.push_str(&format!("decoy = {}\n", stage.decoy));
    }
    if let Some(expect) = &doc.expect {
        out.push_str("\n[expect]\n");
        out.push_str(&format!("profile = \"{}\"\n", profile_name(expect.profile)));
        out.push_str(&format!("seed = {}\n", fmt_int(expect.seed)));
        out.push_str(&format!(
            "classification = \"{}\"\n",
            expect.classification.name()
        ));
        let missed: Vec<String> = expect.missed.iter().map(|m| format!("\"{m}\"")).collect();
        out.push_str(&format!("missed = [{}]\n", missed.join(", ")));
    }
    out
}

/// Parses scenario text straight to a campaign [`ScenarioSpec`] — the
/// one-stop entry point for callers that do not care about the document
/// form. The spec loses `expose_slots`/`expect`; use [`parse`] +
/// [`ScenarioDoc::spec`] when those matter.
pub fn compile(text: &str) -> Result<ScenarioSpec, ParseError> {
    let doc = parse(text)?;
    doc.validate()
        .map_err(|message| ParseError { line: 0, message })?;
    Ok(doc.spec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cres_platform::PlatformProfile;
    use cres_sim::{SimDuration, SimTime};

    const EXAMPLE: &str = r#"
# a hand-written scenario
[scenario]
name = "flood-then-spoof"
duration = 1_000_000       # one simulated megacycle

[[stage]]
attack = "network-flood"
start = 250_000

[[stage]]
attack = "sensor-spoof:jitter"
start = 600_000
interval = 1_000
decoy = true

[expect]
profile = "cres"
seed = 42
classification = "detected"
missed = []
"#;

    #[test]
    fn parses_the_example_with_defaults() {
        let doc = parse(EXAMPLE).unwrap();
        assert_eq!(doc.name, "flood-then-spoof");
        assert_eq!(doc.duration, 1_000_000);
        assert_eq!(doc.training_rounds, ScenarioDoc::new("x").training_rounds);
        assert_eq!(doc.stages.len(), 2);
        assert_eq!(doc.stages[0].interval, DEFAULT_INTERVAL);
        assert!(!doc.stages[0].decoy);
        assert!(doc.stages[1].decoy);
        let expect = doc.expect.as_ref().unwrap();
        assert_eq!(expect.profile, PlatformProfile::CyberResilient);
        assert_eq!(expect.classification, Classification::Detected);
        assert!(expect.missed.is_empty());
        doc.validate().unwrap();
    }

    #[test]
    fn round_trips_through_canonical_text() {
        let doc = parse(EXAMPLE).unwrap();
        let canonical = serialize(&doc);
        let reparsed = parse(&canonical).unwrap();
        assert_eq!(reparsed, doc);
        // canonical text is a fixed point
        assert_eq!(serialize(&reparsed), canonical);
    }

    #[test]
    fn benign_none_round_trips() {
        let mut doc = parse(EXAMPLE).unwrap();
        doc.benign_packet_period = None;
        let reparsed = parse(&serialize(&doc)).unwrap();
        assert_eq!(reparsed.benign_packet_period, None);
    }

    #[test]
    fn compile_produces_the_spec() {
        let spec = compile(EXAMPLE).unwrap();
        assert_eq!(spec.attacks.len(), 2);
        assert_eq!(spec.attacks[1].name, "sensor-spoof:jitter");
        assert_eq!(spec.duration, SimDuration::cycles(1_000_000));
        assert_eq!(spec.attacks[0].start, SimTime::at_cycle(250_000));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("x = 1", 1, "before the [scenario]"),
            ("[scenario]\nname = \"a\"\nduration = \"x\"", 3, "integer"),
            ("[scenario]\nname = \"a\"\nname = \"b\"", 3, "duplicate key"),
            (
                "[scenario]\nname = \"a\"\nbogus = 1",
                3,
                "unknown [scenario] key",
            ),
            (
                "[scenario]\nname = \"a\"\nduration = 5\n[[stage]]\nstart = 1",
                4,
                "missing required key `attack`",
            ),
            ("[bogus]", 1, "unknown section"),
            ("[scenario]\nduration = 5", 1, "missing required key `name`"),
        ];
        for (text, line, needle) in cases {
            let e = parse(text).expect_err(text);
            assert_eq!(e.line, *line, "{text:?} -> {e}");
            assert!(e.to_string().contains(needle), "{text:?} -> {e}");
        }
    }

    #[test]
    fn integers_group_canonically() {
        assert_eq!(fmt_int(0), "0");
        assert_eq!(fmt_int(999), "999");
        assert_eq!(fmt_int(1_000), "1_000");
        assert_eq!(fmt_int(1_234_567), "1_234_567");
        assert_eq!(fmt_int(42), "42");
    }
}
