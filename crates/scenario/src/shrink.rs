//! The miss-minimizing shrinker: given a scenario the platform failed to
//! detect, find a smaller scenario that *still* reproduces the miss, fit
//! for pinning as a checked-in regression fixture.
//!
//! Shrinking is greedy fixed-point iteration over semantic
//! transformations — drop stages, strip benign noise, zero training,
//! widen step intervals, shorten the run — where a candidate is accepted
//! only if every originally-missed attack name is still missed. The
//! runner is a caller-supplied closure, so tests can shrink against a
//! synthetic oracle without touching the simulator.

use crate::doc::{Expectation, ScenarioDoc};
use crate::gauntlet::Outcome;
use cres_platform::PlatformProfile;

/// Interval cap the widening transformation stops at.
const MAX_INTERVAL: u64 = 16_000;

/// Cycles kept after the last stage start when shortening the run — room
/// for the slowest injector to finish stepping and the monitors to react.
const TAIL_MARGIN: u64 = 150_000;

fn preserves(target: &[String], outcome: &Outcome) -> bool {
    target.iter().all(|name| outcome.missed.contains(name))
}

/// Minimizes `original` while preserving its miss: every attack name in
/// the original run's missed set is still missed by the result. Returns
/// the original (sans `expect` block) unchanged when nothing was missed.
///
/// `run` is invoked once per candidate; for the real pipeline pass a
/// closure over [`crate::gauntlet::run_one`] + [`crate::gauntlet::classify`].
pub fn shrink<F>(original: &ScenarioDoc, run: &mut F) -> ScenarioDoc
where
    F: FnMut(&ScenarioDoc) -> Outcome,
{
    let mut doc = original.clone();
    doc.expect = None;
    let target = run(&doc).missed;
    if target.is_empty() {
        return doc;
    }

    for _pass in 0..16 {
        let mut changed = false;

        // drop stages, back to front so indices stay stable
        for index in (0..doc.stages.len()).rev() {
            if doc.stages.len() == 1 {
                break;
            }
            let mut candidate = doc.clone();
            candidate.stages.remove(index);
            if candidate.scored_stages().count() == 0 {
                continue;
            }
            if preserves(&target, &run(&candidate)) {
                doc = candidate;
                changed = true;
            }
        }

        // strip benign background traffic
        if doc.benign_packet_period.is_some() {
            let mut candidate = doc.clone();
            candidate.benign_packet_period = None;
            if preserves(&target, &run(&candidate)) {
                doc = candidate;
                changed = true;
            }
        }

        // drop syscall-model training
        if doc.training_rounds > 0 {
            let mut candidate = doc.clone();
            candidate.training_rounds = 0;
            if preserves(&target, &run(&candidate)) {
                doc = candidate;
                changed = true;
            }
        }

        // a miss that does not need the slot store exposed is stronger
        if doc.expose_slots {
            let mut candidate = doc.clone();
            candidate.expose_slots = false;
            if preserves(&target, &run(&candidate)) {
                doc = candidate;
                changed = true;
            }
        }

        // widen step intervals: slower attacks that still go unseen make
        // tighter fixtures
        for index in 0..doc.stages.len() {
            let interval = doc.stages[index].interval;
            if interval >= MAX_INTERVAL {
                continue;
            }
            let mut candidate = doc.clone();
            candidate.stages[index].interval = (interval * 2).min(MAX_INTERVAL);
            if preserves(&target, &run(&candidate)) {
                doc = candidate;
                changed = true;
            }
        }

        // shorten the run to just past the last stage
        let last_start = doc.stages.iter().map(|s| s.start).max().unwrap_or(0);
        let floor = last_start.saturating_add(TAIL_MARGIN);
        for shorter in [doc.duration / 2, floor] {
            if shorter >= doc.duration || shorter <= last_start {
                continue;
            }
            let mut candidate = doc.clone();
            candidate.duration = shorter;
            if preserves(&target, &run(&candidate)) {
                doc = candidate;
                changed = true;
                break;
            }
        }

        if !changed {
            break;
        }
    }
    doc
}

/// Stamps a shrunk scenario with its recorded outcome, producing the
/// document to check in under `tests/fixtures/regressions/`.
pub fn pin(
    doc: &ScenarioDoc,
    profile: PlatformProfile,
    seed: u64,
    outcome: &Outcome,
) -> ScenarioDoc {
    let mut pinned = doc.clone();
    pinned.expect = Some(Expectation {
        profile,
        seed,
        classification: outcome.classification,
        missed: outcome.missed.clone(),
    });
    pinned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::{Classification, StageDoc};

    /// Synthetic oracle: `log-wipe` is always missed, everything else is
    /// always detected. No simulator involved.
    fn oracle(doc: &ScenarioDoc) -> Outcome {
        let mut missed: Vec<String> = doc
            .scored_stages()
            .filter(|s| s.attack.starts_with("log-wipe"))
            .map(|s| s.attack.clone())
            .collect();
        missed.sort();
        missed.dedup();
        let scored = doc.scored_stages().count();
        let classification = if missed.is_empty() {
            Classification::Detected
        } else if missed.len() == scored {
            Classification::Missed
        } else {
            Classification::Degraded
        };
        Outcome {
            classification,
            missed,
        }
    }

    fn noisy_doc() -> ScenarioDoc {
        let mut doc = ScenarioDoc::new("noisy");
        doc.duration = 1_000_000;
        doc.expose_slots = true;
        for (k, (attack, decoy)) in [
            ("network-flood", false),
            ("log-wipe", false),
            ("sensor-spoof", true),
            ("exfiltration", false),
            ("exploit-traffic", true),
        ]
        .into_iter()
        .enumerate()
        {
            doc.stages.push(StageDoc {
                attack: attack.into(),
                start: 100_000 * (k as u64 + 1),
                interval: 1_000,
                decoy,
            });
        }
        doc
    }

    #[test]
    fn shrinks_to_the_minimal_missing_stage() {
        let shrunk = shrink(&noisy_doc(), &mut oracle);
        assert_eq!(shrunk.stages.len(), 1, "{shrunk:?}");
        assert_eq!(shrunk.stages[0].attack, "log-wipe");
        assert_eq!(shrunk.benign_packet_period, None);
        assert_eq!(shrunk.training_rounds, 0);
        assert!(!shrunk.expose_slots);
        assert!(shrunk.duration < 1_000_000);
        // the shrunk scenario still reproduces the miss
        let outcome = oracle(&shrunk);
        assert_eq!(outcome.classification, Classification::Missed);
        assert_eq!(outcome.missed, vec!["log-wipe".to_string()]);
    }

    #[test]
    fn counts_oracle_calls_not_passes() {
        let mut calls = 0usize;
        let mut counting = |doc: &ScenarioDoc| {
            calls += 1;
            oracle(doc)
        };
        shrink(&noisy_doc(), &mut counting);
        assert!(calls > 1, "shrinker must probe candidates");
        assert!(calls < 200, "shrinker must converge, used {calls} runs");
    }

    #[test]
    fn detected_scenarios_come_back_unchanged() {
        let mut doc = noisy_doc();
        doc.stages.retain(|s| s.attack != "log-wipe");
        let mut expected = doc.clone();
        expected.expect = None;
        assert_eq!(shrink(&doc, &mut oracle), expected);
    }

    #[test]
    fn pin_stamps_the_expectation() {
        let shrunk = shrink(&noisy_doc(), &mut oracle);
        let outcome = oracle(&shrunk);
        let pinned = pin(&shrunk, PlatformProfile::CyberResilient, 42, &outcome);
        let expect = pinned.expect.unwrap();
        assert_eq!(expect.seed, 42);
        assert_eq!(expect.classification, Classification::Missed);
        assert_eq!(expect.missed, vec!["log-wipe".to_string()]);
    }
}
