//! The scenario document model: what a `.toml` scenario file *means*,
//! independent of its textual shape.
//!
//! A [`ScenarioDoc`] is the DSL's semantic form. It compiles down to the
//! campaign engine's [`ScenarioSpec`] (plus the platform knobs a spec
//! cannot carry) via [`ScenarioDoc::spec`] / [`ScenarioDoc::config`], and
//! round-trips through the text format in `crate::text` losslessly.

use cres_attacks::catalog;
use cres_platform::campaign::ScenarioSpec;
use cres_platform::{PlatformConfig, PlatformProfile};
use cres_sim::{SimDuration, SimTime};

/// Default simulated duration for a scenario that does not say otherwise.
pub const DEFAULT_DURATION: u64 = 1_000_000;

/// Default step interval for a stage that does not say otherwise.
pub const DEFAULT_INTERVAL: u64 = 2_000;

/// How a whole scenario scored against the platform's detection pipeline.
///
/// Only *scored* stages count — decoy stages are noise by construction and
/// detecting (or missing) them says nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// Every scored stage was detected.
    Detected,
    /// Some scored stages were detected, some were not.
    Degraded,
    /// No scored stage was detected.
    Missed,
}

impl Classification {
    /// The DSL keyword for this classification.
    pub fn name(self) -> &'static str {
        match self {
            Classification::Detected => "detected",
            Classification::Degraded => "degraded",
            Classification::Missed => "missed",
        }
    }

    /// Parses a DSL keyword.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "detected" => Classification::Detected,
            "degraded" => Classification::Degraded,
            "missed" => Classification::Missed,
            _ => return None,
        })
    }
}

/// One scheduled attack within a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageDoc {
    /// Catalog name (base or `name:variant` inject point).
    pub attack: String,
    /// Absolute cycle of the first step.
    pub start: u64,
    /// Cycles between steps.
    pub interval: u64,
    /// Decoy stages are deliberate noise and excluded from scoring.
    pub decoy: bool,
}

/// The expected outcome block a pinned regression fixture carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expectation {
    /// Platform profile the expectation was recorded on.
    pub profile: PlatformProfile,
    /// Determinism seed the expectation was recorded at.
    pub seed: u64,
    /// Recorded whole-scenario classification.
    pub classification: Classification,
    /// Scored attack names that went undetected, sorted and deduplicated.
    pub missed: Vec<String>,
}

/// A parsed scenario: header knobs, attack stages and (for pinned
/// regression fixtures) the recorded expectation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioDoc {
    /// Scenario name (campaign job label).
    pub name: String,
    /// Simulated duration in cycles.
    pub duration: u64,
    /// Pre-deployment syscall-model training rounds.
    pub training_rounds: u32,
    /// Install the default three-task workload.
    pub default_workload: bool,
    /// Period of benign background traffic (`None` = silent network).
    pub benign_packet_period: Option<u64>,
    /// Expose the firmware slot store to attack injectors (needed for the
    /// firmware-tamper/downgrade stages to act on anything).
    pub expose_slots: bool,
    /// The attack stages, in schedule order.
    pub stages: Vec<StageDoc>,
    /// Recorded outcome, present only on pinned fixtures.
    pub expect: Option<Expectation>,
}

impl ScenarioDoc {
    /// A stage-free scenario with the engine's quiet-run defaults.
    pub fn new(name: impl Into<String>) -> Self {
        let quiet = ScenarioSpec::quiet(SimDuration::cycles(DEFAULT_DURATION));
        ScenarioDoc {
            name: name.into(),
            duration: DEFAULT_DURATION,
            training_rounds: quiet.training_rounds,
            default_workload: quiet.default_workload,
            benign_packet_period: quiet.benign_packet_period.map(SimDuration::as_cycles),
            expose_slots: false,
            stages: Vec::new(),
            expect: None,
        }
    }

    /// Compiles to the campaign engine's scenario description.
    pub fn spec(&self) -> ScenarioSpec {
        let mut spec = ScenarioSpec::quiet(SimDuration::cycles(self.duration));
        spec.benign_packet_period = self.benign_packet_period.map(SimDuration::cycles);
        spec.training_rounds = self.training_rounds;
        spec.default_workload = self.default_workload;
        for stage in &self.stages {
            spec = spec.attack(
                stage.attack.clone(),
                SimTime::at_cycle(stage.start),
                SimDuration::cycles(stage.interval),
            );
        }
        spec
    }

    /// The platform configuration this scenario runs under.
    pub fn config(&self, profile: PlatformProfile, seed: u64) -> PlatformConfig {
        let mut config = PlatformConfig::new(profile, seed);
        config.expose_slots_to_attacker = self.expose_slots;
        config
    }

    /// Semantic validation beyond what the parser enforces: non-empty
    /// name, a positive duration, every stage inside it and every attack
    /// name resolvable in the catalog.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario name must not be empty".into());
        }
        if self.duration == 0 {
            return Err(format!(
                "scenario {:?}: duration must be positive",
                self.name
            ));
        }
        for (index, stage) in self.stages.iter().enumerate() {
            if !catalog::is_known(&stage.attack) {
                return Err(format!(
                    "scenario {:?} stage #{index}: unknown attack {:?}",
                    self.name, stage.attack
                ));
            }
            if stage.start >= self.duration {
                return Err(format!(
                    "scenario {:?} stage #{index} ({}): start {} is past the {}-cycle duration",
                    self.name, stage.attack, stage.start, self.duration
                ));
            }
            if stage.interval == 0 {
                return Err(format!(
                    "scenario {:?} stage #{index} ({}): interval must be positive",
                    self.name, stage.attack
                ));
            }
        }
        if let Some(expect) = &self.expect {
            let mut sorted = expect.missed.clone();
            sorted.sort();
            sorted.dedup();
            if sorted != expect.missed {
                return Err(format!(
                    "scenario {:?}: expect.missed must be sorted and deduplicated",
                    self.name
                ));
            }
            for name in &expect.missed {
                if !self.stages.iter().any(|s| !s.decoy && s.attack == *name) {
                    return Err(format!(
                        "scenario {:?}: expect.missed names {:?} which is not a scored stage",
                        self.name, name
                    ));
                }
            }
        }
        Ok(())
    }

    /// The scored (non-decoy) stages.
    pub fn scored_stages(&self) -> impl Iterator<Item = &StageDoc> {
        self.stages.iter().filter(|s| !s.decoy)
    }
}

/// The canonical DSL keyword for a platform profile.
pub fn profile_name(profile: PlatformProfile) -> &'static str {
    match profile {
        PlatformProfile::CyberResilient => "cres",
        PlatformProfile::PassiveTrust => "passive",
        PlatformProfile::TeeShared => "tee-shared",
    }
}

/// Parses a DSL profile keyword.
pub fn parse_profile(s: &str) -> Option<PlatformProfile> {
    Some(match s {
        "cres" => PlatformProfile::CyberResilient,
        "passive" => PlatformProfile::PassiveTrust,
        "tee-shared" => PlatformProfile::TeeShared,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> ScenarioDoc {
        let mut doc = ScenarioDoc::new("t");
        doc.stages.push(StageDoc {
            attack: "network-flood".into(),
            start: 100_000,
            interval: 2_000,
            decoy: false,
        });
        doc
    }

    #[test]
    fn defaults_mirror_the_quiet_scenario() {
        let quiet = ScenarioSpec::quiet(SimDuration::cycles(DEFAULT_DURATION));
        assert_eq!(ScenarioDoc::new("x").spec(), quiet);
    }

    #[test]
    fn spec_carries_stages_in_order() {
        let mut d = doc();
        d.stages.push(StageDoc {
            attack: "sensor-spoof".into(),
            start: 300_000,
            interval: 1_000,
            decoy: true,
        });
        let spec = d.spec();
        assert_eq!(spec.attacks.len(), 2);
        assert_eq!(spec.attacks[0].name, "network-flood");
        assert_eq!(spec.attacks[1].name, "sensor-spoof");
        assert_eq!(spec.attacks[1].start, SimTime::at_cycle(300_000));
    }

    #[test]
    fn validate_rejects_unknown_attacks_and_bad_timing() {
        assert!(doc().validate().is_ok());
        let mut bad = doc();
        bad.stages[0].attack = "meltdown".into();
        assert!(bad.validate().unwrap_err().contains("meltdown"));
        let mut late = doc();
        late.stages[0].start = late.duration;
        assert!(late.validate().is_err());
        let mut zero = doc();
        zero.stages[0].interval = 0;
        assert!(zero.validate().is_err());
    }

    #[test]
    fn expose_slots_lands_in_the_config() {
        let mut d = doc();
        d.expose_slots = true;
        assert!(
            d.config(PlatformProfile::CyberResilient, 1)
                .expose_slots_to_attacker
        );
        assert!(
            !doc()
                .config(PlatformProfile::CyberResilient, 1)
                .expose_slots_to_attacker
        );
    }

    #[test]
    fn profile_names_round_trip() {
        for profile in PlatformProfile::ALL {
            assert_eq!(parse_profile(profile_name(profile)), Some(profile));
        }
        assert_eq!(parse_profile("tee"), None);
    }
}
