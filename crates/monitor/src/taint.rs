//! Dynamic information-flow (taint) tracking over bus transactions.
//!
//! The region-granular model of the DIFT hardware the paper's landscape
//! cites (ARMHEx \[21\], Dover \[20\]): configured **source** regions hold
//! secrets; a master that reads a tainted region becomes tainted; a
//! tainted master's writes taint the regions they touch; taint reaching a
//! configured **sink** region (an egress surface such as peripheral MMIO)
//! raises an alert. Taint on masters ages out after a configurable TTL so
//! a long-lived core is not tainted forever by one old read.
//!
//! This monitor sees only transaction *metadata* — like its hardware
//! counterparts it tracks possibility of flow, not byte equality, trading
//! false positives for zero payload inspection.

use crate::detail::Detail;
use crate::event::{MonitorEvent, ResourceMonitor, Severity, Subject};
use cres_policy::DetectionCapability;
use cres_sim::{SimDuration, SimTime};
use cres_soc::addr::{BusOp, MasterId, RegionId};
use cres_soc::bus::{TxnCursor, TxnOutcome};
use cres_soc::Soc;
use std::collections::HashMap;

/// The information-flow monitor.
#[derive(Debug, Clone)]
pub struct TaintMonitor {
    sources: Vec<RegionId>,
    sinks: Vec<RegionId>,
    ttl: SimDuration,
    cursor: TxnCursor,
    tainted_masters: HashMap<MasterId, SimTime>,
    tainted_regions: HashMap<RegionId, SimTime>,
    flows_flagged: u64,
}

impl TaintMonitor {
    /// Creates a monitor with the given source/sink regions and a master
    /// taint TTL.
    ///
    /// # Panics
    ///
    /// Panics when a region is both source and sink (the flow would be
    /// trivially self-alerting) or the TTL is zero.
    pub fn new(sources: Vec<RegionId>, sinks: Vec<RegionId>, ttl: SimDuration) -> Self {
        assert!(!ttl.is_zero(), "taint TTL must be non-zero");
        for s in &sources {
            assert!(!sinks.contains(s), "region {s} is both source and sink");
        }
        TaintMonitor {
            sources,
            sinks,
            ttl,
            cursor: TxnCursor::default(),
            tainted_masters: HashMap::new(),
            tainted_regions: HashMap::new(),
            flows_flagged: 0,
        }
    }

    /// Total source→sink flows flagged.
    pub fn flows_flagged(&self) -> u64 {
        self.flows_flagged
    }

    /// True when `master` carries live taint at `now`.
    pub fn is_master_tainted(&self, master: MasterId, now: SimTime) -> bool {
        self.tainted_masters
            .get(&master)
            .is_some_and(|since| now.saturating_since(*since) <= self.ttl)
    }

    fn region_tainted(&self, region: RegionId, at: SimTime) -> bool {
        self.sources.contains(&region)
            || self
                .tainted_regions
                .get(&region)
                .is_some_and(|since| at.saturating_since(*since) <= self.ttl)
    }
}

impl ResourceMonitor for TaintMonitor {
    fn name(&self) -> &'static str {
        "info-flow"
    }

    fn capability(&self) -> DetectionCapability {
        DetectionCapability::InformationFlow
    }

    fn sample_into(&mut self, soc: &mut Soc, _now: SimTime, events: &mut Vec<MonitorEvent>) {
        let (records, _) = soc.bus.poll_iter(&mut self.cursor);
        let mut flagged = 0;
        for rec in records {
            if !matches!(rec.outcome, TxnOutcome::Granted) {
                continue;
            }
            let Some(region) = rec.region else { continue };
            match rec.op {
                BusOp::Read | BusOp::Exec => {
                    if self.region_tainted(region, rec.at) {
                        self.tainted_masters.insert(rec.master, rec.at);
                    }
                }
                BusOp::Write => {
                    if self.is_master_tainted(rec.master, rec.at) {
                        if self.sinks.contains(&region) {
                            flagged += 1;
                            events.push(MonitorEvent::new(
                                rec.at,
                                self.capability(),
                                Severity::Critical,
                                Subject::Master(rec.master),
                                Detail::TaintedEgress {
                                    master: rec.master,
                                    region,
                                    addr: rec.addr,
                                },
                            ));
                        } else {
                            self.tainted_regions.insert(region, rec.at);
                        }
                    }
                }
            }
        }
        self.flows_flagged += flagged;
    }

    fn sample_cost(&self) -> u64 {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cres_soc::addr::{Addr, Perms};
    use cres_soc::soc::SocBuilder;

    fn soc() -> Soc {
        SocBuilder::new()
            .region("secret", Addr(0x1000), 0x100, Perms::rw())
            .region("scratch", Addr(0x2000), 0x100, Perms::rw())
            .region("egress", Addr(0x3000), 0x100, Perms::rw())
            .build()
    }

    fn monitor(soc: &Soc) -> TaintMonitor {
        let r = |n: &str| soc.mem.region_by_name(n).unwrap().id();
        TaintMonitor::new(
            vec![r("secret")],
            vec![r("egress")],
            SimDuration::cycles(10_000),
        )
    }

    fn t(c: u64) -> SimTime {
        SimTime::at_cycle(c)
    }

    #[test]
    fn direct_source_to_sink_flow_flagged() {
        let mut s = soc();
        let mut m = monitor(&s);
        s.bus
            .read(t(1), MasterId::CPU0, Addr(0x1000), 16, &s.mem)
            .unwrap();
        s.bus
            .write(t(2), MasterId::CPU0, Addr(0x3000), &[0; 16], &mut s.mem)
            .unwrap();
        let events = m.sample(&mut s, t(3));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].severity, Severity::Critical);
        assert!(events[0].detail.contains("egress sink"));
        assert_eq!(m.flows_flagged(), 1);
    }

    #[test]
    fn indirect_flow_through_staging_region_flagged() {
        let mut s = soc();
        let mut m = monitor(&s);
        // CPU0 stages the secret in scratch; CPU1 ships it out later
        s.bus
            .read(t(1), MasterId::CPU0, Addr(0x1000), 16, &s.mem)
            .unwrap();
        s.bus
            .write(t(2), MasterId::CPU0, Addr(0x2000), &[0; 16], &mut s.mem)
            .unwrap();
        s.bus
            .read(t(3), MasterId::CPU1, Addr(0x2000), 16, &s.mem)
            .unwrap();
        s.bus
            .write(t(4), MasterId::CPU1, Addr(0x3000), &[0; 16], &mut s.mem)
            .unwrap();
        let events = m.sample(&mut s, t(5));
        assert_eq!(events.len(), 1, "laundering through scratch missed");
        assert_eq!(events[0].subject, Subject::Master(MasterId::CPU1));
    }

    #[test]
    fn clean_traffic_is_silent() {
        let mut s = soc();
        let mut m = monitor(&s);
        // untainted master moving scratch data out is fine
        s.bus
            .read(t(1), MasterId::CPU0, Addr(0x2000), 16, &s.mem)
            .unwrap();
        s.bus
            .write(t(2), MasterId::CPU0, Addr(0x3000), &[0; 16], &mut s.mem)
            .unwrap();
        assert!(m.sample(&mut s, t(3)).is_empty());
    }

    #[test]
    fn taint_ages_out() {
        let mut s = soc();
        let mut m = monitor(&s);
        s.bus
            .read(t(1), MasterId::CPU0, Addr(0x1000), 16, &s.mem)
            .unwrap();
        m.sample(&mut s, t(2));
        assert!(m.is_master_tainted(MasterId::CPU0, t(2)));
        // write to the sink long after the TTL
        s.bus
            .write(
                t(50_000),
                MasterId::CPU0,
                Addr(0x3000),
                &[0; 16],
                &mut s.mem,
            )
            .unwrap();
        assert!(
            m.sample(&mut s, t(50_001)).is_empty(),
            "stale taint still alerts"
        );
        assert!(!m.is_master_tainted(MasterId::CPU0, t(50_000)));
    }

    #[test]
    fn denied_reads_do_not_taint() {
        let mut s = soc();
        let secret = s.mem.region_by_name("secret").unwrap().id();
        s.mem.revoke(MasterId::CPU1, secret);
        let mut m = monitor(&s);
        let _ = s.bus.read(t(1), MasterId::CPU1, Addr(0x1000), 16, &s.mem);
        s.bus
            .write(t(2), MasterId::CPU1, Addr(0x3000), &[0; 16], &mut s.mem)
            .unwrap();
        assert!(m.sample(&mut s, t(3)).is_empty());
    }

    #[test]
    #[should_panic(expected = "both source and sink")]
    fn overlapping_source_sink_panics() {
        let s = soc();
        let r = s.mem.region_by_name("secret").unwrap().id();
        TaintMonitor::new(vec![r], vec![r], SimDuration::cycles(10));
    }
}
