//! Execution monitors: control-flow integrity and syscall sequences.
//!
//! These two monitors observe *software behaviour* rather than bus traffic,
//! so they cannot be fed purely by sampling the SoC — the platform reports
//! each task step into them ([`CfiMonitor::report_edge`],
//! [`SyscallMonitor::report_syscalls`]) and `sample` drains the accumulated
//! observations. The hardware analogue is an ARMHEx-style trace-port
//! checker (Table I's academic landscape).

use crate::detail::Detail;
use crate::event::{MonitorEvent, ResourceMonitor, Severity, Subject};
use cres_policy::DetectionCapability;
use cres_sim::SimTime;
use cres_soc::task::{BlockId, Syscall, TaskId};
use cres_soc::Soc;
use std::collections::{HashMap, HashSet};

/// Control-flow integrity over per-task basic-block edge sets.
///
/// Provisioned statically from each task's program (the "static" half of
/// Table I's "Static & Dynamic Flow Integrity"); the dynamic half is the
/// runtime edge check.
#[derive(Debug, Clone, Default)]
pub struct CfiMonitor {
    edge_sets: HashMap<TaskId, HashSet<(BlockId, BlockId)>>,
    pending: Vec<MonitorEvent>,
    violations: u64,
    edges_checked: u64,
}

impl CfiMonitor {
    /// Creates an empty monitor; provision tasks with
    /// [`CfiMonitor::provision`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the legal edge set for a task.
    pub fn provision(&mut self, task: TaskId, edges: HashSet<(BlockId, BlockId)>) {
        self.edge_sets.insert(task, edges);
    }

    /// True when a task has been provisioned.
    pub fn is_provisioned(&self, task: TaskId) -> bool {
        self.edge_sets.contains_key(&task)
    }

    /// Reports one executed edge. An edge outside the provisioned set (or
    /// any edge from an unprovisioned task) raises a critical event.
    pub fn report_edge(&mut self, now: SimTime, task: TaskId, edge: (BlockId, BlockId)) {
        self.edges_checked += 1;
        let legal = self
            .edge_sets
            .get(&task)
            .is_some_and(|set| set.contains(&edge));
        if !legal {
            self.violations += 1;
            self.pending.push(MonitorEvent::new(
                now,
                DetectionCapability::ControlFlowIntegrity,
                Severity::Critical,
                Subject::Task(task),
                Detail::IllegalEdge {
                    from: edge.0,
                    to: edge.1,
                },
            ));
        }
    }

    /// Total violations observed.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Total edges checked.
    pub fn edges_checked(&self) -> u64 {
        self.edges_checked
    }
}

impl ResourceMonitor for CfiMonitor {
    fn name(&self) -> &'static str {
        "cfi"
    }

    fn capability(&self) -> DetectionCapability {
        DetectionCapability::ControlFlowIntegrity
    }

    fn sample_into(&mut self, _soc: &mut Soc, _now: SimTime, out: &mut Vec<MonitorEvent>) {
        // append drains `pending` while keeping its capacity for next time
        out.append(&mut self.pending);
    }

    fn sample_cost(&self) -> u64 {
        1
    }
}

/// Syscall-sequence anomaly detection via learned bigrams.
///
/// In training mode the monitor learns the set of observed syscall bigrams
/// per task; after [`SyscallMonitor::finish_training`], any unseen bigram
/// or any syscall from the deny list raises an event.
#[derive(Debug, Clone, Default)]
pub struct SyscallMonitor {
    bigrams: HashMap<TaskId, HashSet<(Syscall, Syscall)>>,
    last: HashMap<TaskId, Syscall>,
    deny: HashSet<Syscall>,
    training: bool,
    pending: Vec<MonitorEvent>,
    anomalies: u64,
}

impl SyscallMonitor {
    /// Creates a monitor in training mode with a deny list that fires even
    /// during training (e.g. [`Syscall::PrivEscalate`] is never benign).
    pub fn new(deny: impl IntoIterator<Item = Syscall>) -> Self {
        SyscallMonitor {
            bigrams: HashMap::new(),
            last: HashMap::new(),
            deny: deny.into_iter().collect(),
            training: true,
            pending: Vec::new(),
            anomalies: 0,
        }
    }

    /// Ends the learning phase; subsequent unseen bigrams are anomalies.
    pub fn finish_training(&mut self) {
        self.training = false;
    }

    /// True while learning.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Number of learned bigrams for a task.
    pub fn learned_bigrams(&self, task: TaskId) -> usize {
        self.bigrams.get(&task).map_or(0, HashSet::len)
    }

    /// Reports the syscalls a task issued in one step.
    pub fn report_syscalls(&mut self, now: SimTime, task: TaskId, calls: &[Syscall]) {
        for &call in calls {
            if self.deny.contains(&call) {
                self.anomalies += 1;
                self.pending.push(MonitorEvent::new(
                    now,
                    DetectionCapability::SyscallSequence,
                    Severity::Critical,
                    Subject::Task(task),
                    Detail::DenyListedSyscall { call },
                ));
                continue;
            }
            if let Some(&prev) = self.last.get(&task) {
                let bigram = (prev, call);
                if self.training {
                    self.bigrams.entry(task).or_default().insert(bigram);
                } else {
                    let known = self
                        .bigrams
                        .get(&task)
                        .is_some_and(|set| set.contains(&bigram));
                    if !known {
                        self.anomalies += 1;
                        self.pending.push(MonitorEvent::new(
                            now,
                            DetectionCapability::SyscallSequence,
                            Severity::Alert,
                            Subject::Task(task),
                            Detail::UnseenSyscallSequence { prev, call },
                        ));
                    }
                }
            }
            self.last.insert(task, call);
        }
    }

    /// Total anomalies observed.
    pub fn anomalies(&self) -> u64 {
        self.anomalies
    }
}

impl ResourceMonitor for SyscallMonitor {
    fn name(&self) -> &'static str {
        "syscall"
    }

    fn capability(&self) -> DetectionCapability {
        DetectionCapability::SyscallSequence
    }

    fn sample_into(&mut self, _soc: &mut Soc, _now: SimTime, out: &mut Vec<MonitorEvent>) {
        out.append(&mut self.pending);
    }

    fn sample_cost(&self) -> u64 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cres_soc::soc::SocBuilder;

    fn t(c: u64) -> SimTime {
        SimTime::at_cycle(c)
    }

    fn drain(m: &mut dyn ResourceMonitor) -> Vec<MonitorEvent> {
        let mut soc = SocBuilder::with_standard_layout(0).build();
        m.sample(&mut soc, SimTime::ZERO)
    }

    #[test]
    fn cfi_accepts_legal_edges() {
        let mut cfi = CfiMonitor::new();
        let edges: HashSet<_> = [(BlockId(0), BlockId(1)), (BlockId(1), BlockId(0))]
            .into_iter()
            .collect();
        cfi.provision(TaskId(1), edges);
        cfi.report_edge(t(1), TaskId(1), (BlockId(0), BlockId(1)));
        cfi.report_edge(t(2), TaskId(1), (BlockId(1), BlockId(0)));
        assert!(drain(&mut cfi).is_empty());
        assert_eq!(cfi.violations(), 0);
        assert_eq!(cfi.edges_checked(), 2);
    }

    #[test]
    fn cfi_flags_illegal_edge() {
        let mut cfi = CfiMonitor::new();
        cfi.provision(TaskId(1), [(BlockId(0), BlockId(1))].into_iter().collect());
        cfi.report_edge(t(5), TaskId(1), (BlockId(0), BlockId(7)));
        let events = drain(&mut cfi);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].severity, Severity::Critical);
        assert!(events[0].detail.contains("bb0 -> bb7"));
        assert_eq!(cfi.violations(), 1);
    }

    #[test]
    fn cfi_flags_unprovisioned_task() {
        let mut cfi = CfiMonitor::new();
        cfi.report_edge(t(1), TaskId(9), (BlockId(0), BlockId(1)));
        assert_eq!(drain(&mut cfi).len(), 1);
        assert!(!cfi.is_provisioned(TaskId(9)));
    }

    #[test]
    fn cfi_events_drain_once() {
        let mut cfi = CfiMonitor::new();
        cfi.report_edge(t(1), TaskId(9), (BlockId(0), BlockId(1)));
        assert_eq!(drain(&mut cfi).len(), 1);
        assert!(drain(&mut cfi).is_empty());
    }

    #[test]
    fn syscall_training_then_detection() {
        let mut sm = SyscallMonitor::new([Syscall::PrivEscalate]);
        // benign trace: SensorRead -> Actuate -> NetSend (looped)
        let benign = [Syscall::SensorRead, Syscall::Actuate, Syscall::NetSend];
        for _ in 0..10 {
            sm.report_syscalls(t(1), TaskId(1), &benign);
        }
        assert!(drain(&mut sm).is_empty());
        assert!(sm.learned_bigrams(TaskId(1)) >= 3);
        sm.finish_training();
        assert!(!sm.is_training());
        // same trace: silent
        sm.report_syscalls(t(2), TaskId(1), &benign);
        assert!(drain(&mut sm).is_empty());
        // novel sequence: firmware write after sensor read
        sm.report_syscalls(
            t(3),
            TaskId(1),
            &[Syscall::SensorRead, Syscall::FirmwareWrite],
        );
        let events = drain(&mut sm);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].severity, Severity::Alert);
        assert!(events[0].detail.contains("FirmwareWrite"));
    }

    #[test]
    fn deny_list_fires_even_during_training() {
        let mut sm = SyscallMonitor::new([Syscall::PrivEscalate]);
        assert!(sm.is_training());
        sm.report_syscalls(t(1), TaskId(2), &[Syscall::PrivEscalate]);
        let events = drain(&mut sm);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].severity, Severity::Critical);
        assert_eq!(sm.anomalies(), 1);
    }

    #[test]
    fn syscall_sequences_are_per_task() {
        let mut sm = SyscallMonitor::new([]);
        sm.report_syscalls(t(1), TaskId(1), &[Syscall::SensorRead, Syscall::Actuate]);
        sm.report_syscalls(t(1), TaskId(2), &[Syscall::NetRecv, Syscall::NetSend]);
        sm.finish_training();
        // task 2 doing task 1's sequence is anomalous
        sm.report_syscalls(t(2), TaskId(2), &[Syscall::SensorRead, Syscall::Actuate]);
        let events = drain(&mut sm);
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.subject == Subject::Task(TaskId(2))));
    }
}
