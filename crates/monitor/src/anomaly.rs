//! Streaming anomaly statistics shared by the behavioural monitors.
//!
//! Three detectors cover the shapes of misbehaviour the monitors need:
//! [`Ewma`] (level shifts against a smoothed baseline), [`Cusum`]
//! (small persistent drifts), and [`WindowStats`] (stuck-at via collapsed
//! variance, bursts via windowed rate).

use serde::{Deserialize, Serialize};

/// Exponentially weighted moving average with z-score queries.
///
/// # Example
///
/// ```
/// use cres_monitor::anomaly::Ewma;
/// let mut e = Ewma::new(0.1);
/// for _ in 0..100 {
///     e.update(50.0);
/// }
/// assert!(e.z_score(50.0).abs() < 1.0);
/// assert!(e.z_score(90.0) > 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    mean: f64,
    var: f64,
    initialized: bool,
    count: u64,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics for alpha outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma {
            alpha,
            mean: 0.0,
            var: 0.0,
            initialized: false,
            count: 0,
        }
    }

    /// Feeds one observation.
    pub fn update(&mut self, x: f64) {
        self.count += 1;
        if !self.initialized {
            self.mean = x;
            self.var = 0.0;
            self.initialized = true;
            return;
        }
        let diff = x - self.mean;
        let incr = self.alpha * diff;
        self.mean += incr;
        self.var = (1.0 - self.alpha) * (self.var + self.alpha * diff * diff);
    }

    /// The smoothed mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The smoothed standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.var.sqrt()
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Standard score of `x` against the current baseline. Uses a floor on
    /// the deviation so an over-quiet baseline cannot make everything
    /// anomalous.
    pub fn z_score(&self, x: f64) -> f64 {
        let sd = self.std_dev().max(1e-6 + self.mean.abs() * 1e-4);
        (x - self.mean) / sd
    }

    /// True once enough samples have arrived to trust the baseline.
    pub fn warmed_up(&self) -> bool {
        self.count >= 10
    }
}

/// Two-sided CUSUM drift detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cusum {
    target: f64,
    slack: f64,
    threshold: f64,
    pos: f64,
    neg: f64,
}

impl Cusum {
    /// Creates a CUSUM around `target` tolerating `slack` per-sample noise,
    /// alarming when the cumulative excess passes `threshold`.
    pub fn new(target: f64, slack: f64, threshold: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        Cusum {
            target,
            slack,
            threshold,
            pos: 0.0,
            neg: 0.0,
        }
    }

    /// Feeds one observation; returns true when the drift alarm fires (and
    /// resets the accumulators).
    pub fn update(&mut self, x: f64) -> bool {
        self.pos = (self.pos + x - self.target - self.slack).max(0.0);
        self.neg = (self.neg + self.target - x - self.slack).max(0.0);
        if self.pos > self.threshold || self.neg > self.threshold {
            self.pos = 0.0;
            self.neg = 0.0;
            true
        } else {
            false
        }
    }

    /// Current accumulator magnitudes `(positive, negative)`.
    pub fn pressure(&self) -> (f64, f64) {
        (self.pos, self.neg)
    }

    /// Re-centres the detector on a new target.
    pub fn retarget(&mut self, target: f64) {
        self.target = target;
        self.pos = 0.0;
        self.neg = 0.0;
    }
}

/// Fixed-size sliding window with mean/variance and range queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    window: Vec<f64>,
    capacity: usize,
    next: usize,
    filled: bool,
}

impl WindowStats {
    /// Creates a window of `capacity` observations.
    ///
    /// # Panics
    ///
    /// Panics for zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be non-zero");
        WindowStats {
            window: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            filled: false,
        }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        if self.window.len() < self.capacity {
            self.window.push(x);
            if self.window.len() == self.capacity {
                self.filled = true;
            }
        } else {
            self.window[self.next] = x;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// True once the window is full.
    pub fn is_full(&self) -> bool {
        self.filled
    }

    /// Observations currently held.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when no observations are held.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Mean of the window (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        self.window.iter().sum::<f64>() / self.window.len() as f64
    }

    /// Population variance of the window.
    pub fn variance(&self) -> f64 {
        if self.window.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        self.window.iter().map(|x| (x - m).powi(2)).sum::<f64>() / self.window.len() as f64
    }

    /// `(min, max)` of the window, `None` when empty.
    pub fn range(&self) -> Option<(f64, f64)> {
        if self.window.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in &self.window {
            min = min.min(x);
            max = max.max(x);
        }
        Some((min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_tracks_level() {
        let mut e = Ewma::new(0.2);
        for _ in 0..200 {
            e.update(10.0);
        }
        assert!((e.mean() - 10.0).abs() < 1e-9);
        assert!(e.std_dev() < 1e-6);
        assert!(e.warmed_up());
    }

    #[test]
    fn ewma_flags_level_shift() {
        let mut e = Ewma::new(0.1);
        // noisy baseline around 100 ± 2
        let noise = [1.5, -0.7, 0.3, -1.9, 0.9, 1.1, -0.2, -1.3];
        for i in 0..200 {
            e.update(100.0 + noise[i % noise.len()]);
        }
        assert!(e.z_score(101.0).abs() < 3.0, "in-band value flagged");
        assert!(e.z_score(150.0) > 8.0, "gross shift missed");
        assert!(e.z_score(50.0) < -8.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    fn cusum_ignores_noise_catches_drift() {
        let mut c = Cusum::new(50.0, 1.0, 10.0);
        let noise = [0.5, -0.5, 0.8, -0.9, 0.2, -0.1];
        for i in 0..500 {
            assert!(
                !c.update(50.0 + noise[i % noise.len()]),
                "noise fired at {i}"
            );
        }
        // small persistent drift of +2 units
        let mut fired = false;
        for _ in 0..50 {
            if c.update(52.0) {
                fired = true;
                break;
            }
        }
        assert!(fired, "drift never detected");
    }

    #[test]
    fn cusum_detects_negative_drift_and_retargets() {
        let mut c = Cusum::new(50.0, 0.5, 5.0);
        let mut fired = false;
        for _ in 0..50 {
            if c.update(48.0) {
                fired = true;
                break;
            }
        }
        assert!(fired);
        c.retarget(48.0);
        for _ in 0..20 {
            assert!(!c.update(48.1));
        }
    }

    #[test]
    fn window_stats_basic() {
        let mut w = WindowStats::new(4);
        assert!(w.is_empty());
        for x in [1.0, 2.0, 3.0, 4.0] {
            w.push(x);
        }
        assert!(w.is_full());
        assert_eq!(w.mean(), 2.5);
        assert_eq!(w.range(), Some((1.0, 4.0)));
        assert!((w.variance() - 1.25).abs() < 1e-12);
        // eviction: oldest replaced
        w.push(9.0);
        assert_eq!(w.range(), Some((2.0, 9.0)));
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn window_stuck_at_has_zero_variance() {
        let mut w = WindowStats::new(8);
        for _ in 0..8 {
            w.push(42.0);
        }
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn window_zero_capacity_panics() {
        WindowStats::new(0);
    }
}
