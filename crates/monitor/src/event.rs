//! Monitor event types and the [`ResourceMonitor`] trait.

use cres_policy::DetectionCapability;
use cres_sim::{SimTime, Stage, StageSink};
use cres_soc::addr::{MasterId, RegionId};
use cres_soc::task::TaskId;
use cres_soc::Soc;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How serious an observation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Routine telemetry.
    Info,
    /// Unusual but possibly benign.
    Warning,
    /// Strong indication of malicious activity.
    Alert,
    /// Unambiguous compromise or safety hazard.
    Critical,
}

impl Severity {
    /// One band lower (`Info` stays `Info`) — the fault plane uses this to
    /// model interconnect corruption that mangles an event's urgency in
    /// transit without inventing severities out of thin air.
    pub const fn downgrade(self) -> Severity {
        match self {
            Severity::Critical => Severity::Alert,
            Severity::Alert => Severity::Warning,
            Severity::Warning | Severity::Info => Severity::Info,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// What resource an event concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Subject {
    /// A bus master.
    Master(MasterId),
    /// A software task.
    Task(TaskId),
    /// A memory region.
    Region(RegionId),
    /// The network interface.
    Network,
    /// Physical sensor by index.
    Sensor(usize),
    /// The environmental block.
    Environment,
    /// The platform as a whole.
    Platform,
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subject::Master(m) => write!(f, "master:{m}"),
            Subject::Task(t) => write!(f, "task:{t}"),
            Subject::Region(r) => write!(f, "{r}"),
            Subject::Network => write!(f, "network"),
            Subject::Sensor(i) => write!(f, "sensor:{i}"),
            Subject::Environment => write!(f, "environment"),
            Subject::Platform => write!(f, "platform"),
        }
    }
}

/// One observation reported to the system security manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorEvent {
    /// When the observation was made.
    pub at: SimTime,
    /// Name of the reporting monitor.
    pub monitor: String,
    /// The detection capability that produced it.
    pub capability: DetectionCapability,
    /// Severity band.
    pub severity: Severity,
    /// The resource concerned.
    pub subject: Subject,
    /// Human/forensic detail line.
    pub detail: String,
}

impl MonitorEvent {
    /// Convenience constructor.
    pub fn new(
        at: SimTime,
        monitor: &str,
        capability: DetectionCapability,
        severity: Severity,
        subject: Subject,
        detail: impl Into<String>,
    ) -> Self {
        MonitorEvent {
            at,
            monitor: monitor.to_string(),
            capability,
            severity,
            subject,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for MonitorEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} {} — {}",
            self.at, self.severity, self.monitor, self.subject, self.detail
        )
    }
}

/// An active runtime resource monitor.
///
/// Monitors are driven periodically by the platform: `sample` inspects the
/// SoC (mutably — sampling a sensor consumes its noise stream, polling the
/// bus tap advances a cursor) and returns any new observations.
pub trait ResourceMonitor {
    /// Stable monitor name (appears in events and forensic records).
    fn name(&self) -> &str;

    /// The Table-I detection capability this monitor realises.
    fn capability(&self) -> DetectionCapability;

    /// Inspects the SoC and returns new observations.
    fn sample(&mut self, soc: &mut Soc, now: SimTime) -> Vec<MonitorEvent>;

    /// Approximate cost of one sample in bus cycles — used by the
    /// monitoring-overhead experiment (E8). Default: 2 cycles.
    fn sample_cost(&self) -> u64 {
        2
    }

    /// [`ResourceMonitor::sample`] with telemetry: records one
    /// `monitor-sample` span (arg = events produced, cycles =
    /// [`ResourceMonitor::sample_cost`]) plus one `event-emit` span per
    /// event (arg = severity rank). Pass [`cres_sim::NullSink`] to trace
    /// nothing — the default platform path when telemetry is disabled.
    fn sample_traced(
        &mut self,
        soc: &mut Soc,
        now: SimTime,
        sink: &mut dyn StageSink,
    ) -> Vec<MonitorEvent> {
        let events = self.sample(soc, now);
        sink.record_span(
            now,
            Stage::MonitorSample,
            events.len() as u32,
            self.sample_cost(),
        );
        for event in &events {
            sink.record_span(event.at, Stage::EventEmit, event.severity as u32, 1);
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_is_ordered() {
        assert!(Severity::Critical > Severity::Alert);
        assert!(Severity::Alert > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn severity_downgrade_steps_one_band_and_floors_at_info() {
        assert_eq!(Severity::Critical.downgrade(), Severity::Alert);
        assert_eq!(Severity::Alert.downgrade(), Severity::Warning);
        assert_eq!(Severity::Warning.downgrade(), Severity::Info);
        assert_eq!(Severity::Info.downgrade(), Severity::Info);
    }

    #[test]
    fn event_display_is_informative() {
        let e = MonitorEvent::new(
            SimTime::at_cycle(42),
            "bus",
            DetectionCapability::BusPolicing,
            Severity::Alert,
            Subject::Master(MasterId::DMA),
            "out-of-policy read",
        );
        let s = e.to_string();
        assert!(s.contains("@42"));
        assert!(s.contains("Alert"));
        assert!(s.contains("DMA"));
        assert!(s.contains("out-of-policy read"));
    }

    #[test]
    fn subject_display_variants() {
        assert_eq!(Subject::Network.to_string(), "network");
        assert_eq!(Subject::Sensor(3).to_string(), "sensor:3");
        assert_eq!(Subject::Platform.to_string(), "platform");
        assert_eq!(Subject::Task(TaskId(1)).to_string(), "task:task#1");
    }
}
