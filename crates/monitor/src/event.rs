//! Monitor event types and the [`ResourceMonitor`] trait.

use crate::detail::Detail;
use cres_policy::DetectionCapability;
use cres_sim::{MonitorId, SimTime, Stage, StageSink};
use cres_soc::addr::{MasterId, RegionId};
use cres_soc::task::TaskId;
use cres_soc::Soc;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How serious an observation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Routine telemetry.
    Info,
    /// Unusual but possibly benign.
    Warning,
    /// Strong indication of malicious activity.
    Alert,
    /// Unambiguous compromise or safety hazard.
    Critical,
}

impl Severity {
    /// One band lower (`Info` stays `Info`) — the fault plane uses this to
    /// model interconnect corruption that mangles an event's urgency in
    /// transit without inventing severities out of thin air.
    pub const fn downgrade(self) -> Severity {
        match self {
            Severity::Critical => Severity::Alert,
            Severity::Alert => Severity::Warning,
            Severity::Warning | Severity::Info => Severity::Info,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// What resource an event concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Subject {
    /// A bus master.
    Master(MasterId),
    /// A software task.
    Task(TaskId),
    /// A memory region.
    Region(RegionId),
    /// The network interface.
    Network,
    /// Physical sensor by index.
    Sensor(usize),
    /// The environmental block.
    Environment,
    /// The platform as a whole.
    Platform,
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subject::Master(m) => write!(f, "master:{m}"),
            Subject::Task(t) => write!(f, "task:{t}"),
            Subject::Region(r) => write!(f, "{r}"),
            Subject::Network => write!(f, "network"),
            Subject::Sensor(i) => write!(f, "sensor:{i}"),
            Subject::Environment => write!(f, "environment"),
            Subject::Platform => write!(f, "platform"),
        }
    }
}

/// One observation reported to the system security manager.
///
/// `Copy` on purpose: the steady-state monitor→SSM tick must be
/// allocation-free, so events carry an interned [`MonitorId`] and a compact
/// [`Detail`] payload instead of `String`s. Text is rendered only at the
/// cold edges via [`MonitorEvent::rendered`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorEvent {
    /// When the observation was made.
    pub at: SimTime,
    /// Interned id of the reporting monitor — stamped by the platform
    /// after sampling; [`MonitorId::UNBOUND`] until then.
    pub monitor: MonitorId,
    /// The detection capability that produced it.
    pub capability: DetectionCapability,
    /// Severity band.
    pub severity: Severity,
    /// The resource concerned.
    pub subject: Subject,
    /// Compact detail payload, rendered lazily.
    pub detail: Detail,
    /// Set by the fault plane when the event was mangled in transit; the
    /// rendered detail line gains a `[corrupted in transit]` prefix.
    pub corrupted: bool,
}

impl MonitorEvent {
    /// Convenience constructor. The producing monitor is stamped later by
    /// the platform (monitors don't know their own interned id).
    pub fn new(
        at: SimTime,
        capability: DetectionCapability,
        severity: Severity,
        subject: Subject,
        detail: Detail,
    ) -> Self {
        MonitorEvent {
            at,
            monitor: MonitorId::UNBOUND,
            capability,
            severity,
            subject,
            detail,
            corrupted: false,
        }
    }

    /// Builder-style monitor stamp — test and wiring convenience.
    #[inline]
    pub fn with_monitor(mut self, monitor: MonitorId) -> Self {
        self.monitor = monitor;
        self
    }

    /// The lazily rendered detail line, including the corruption prefix
    /// when the fault plane mangled the event. Byte-identical to the
    /// eagerly formatted `detail` string this type used to carry.
    #[inline]
    pub fn rendered(&self) -> RenderedDetail<'_> {
        RenderedDetail { event: self }
    }
}

/// Display adapter for an event's detail line (see
/// [`MonitorEvent::rendered`]).
#[derive(Debug, Clone, Copy)]
pub struct RenderedDetail<'a> {
    event: &'a MonitorEvent,
}

impl fmt::Display for RenderedDetail<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.event.corrupted {
            f.write_str("[corrupted in transit] ")?;
        }
        self.event.detail.fmt(f)
    }
}

impl fmt::Display for MonitorEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} {} — {}",
            self.at,
            self.severity,
            self.capability,
            self.subject,
            self.rendered()
        )
    }
}

/// An active runtime resource monitor.
///
/// Monitors are driven periodically by the platform: sampling inspects the
/// SoC (mutably — sampling a sensor consumes its noise stream, polling the
/// bus tap advances a cursor) and reports any new observations.
pub trait ResourceMonitor {
    /// Stable monitor name (interned at wiring time, appears in forensic
    /// records).
    fn name(&self) -> &'static str;

    /// The Table-I detection capability this monitor realises.
    fn capability(&self) -> DetectionCapability;

    /// Inspects the SoC and appends new observations to `out`.
    ///
    /// Taking the buffer instead of returning a `Vec` lets the platform
    /// reuse one allocation across every monitor and every tick — the
    /// steady-state sampling pass performs no heap allocation at all.
    fn sample_into(&mut self, soc: &mut Soc, now: SimTime, out: &mut Vec<MonitorEvent>);

    /// Allocating convenience around [`ResourceMonitor::sample_into`] for
    /// tests and one-shot callers.
    fn sample(&mut self, soc: &mut Soc, now: SimTime) -> Vec<MonitorEvent> {
        let mut out = Vec::new();
        self.sample_into(soc, now, &mut out);
        out
    }

    /// Approximate cost of one sample in bus cycles — used by the
    /// monitoring-overhead experiment (E8). Default: 2 cycles.
    fn sample_cost(&self) -> u64 {
        2
    }

    /// [`ResourceMonitor::sample_into`] with telemetry: records one
    /// `monitor-sample` span (arg = events produced, cycles =
    /// [`ResourceMonitor::sample_cost`]) plus one `event-emit` span per
    /// event (arg = severity rank). Pass [`cres_sim::NullSink`] to trace
    /// nothing — the default platform path when telemetry is disabled.
    fn sample_into_traced(
        &mut self,
        soc: &mut Soc,
        now: SimTime,
        out: &mut Vec<MonitorEvent>,
        sink: &mut dyn StageSink,
    ) {
        let start = out.len();
        self.sample_into(soc, now, out);
        sink.record_span(
            now,
            Stage::MonitorSample,
            (out.len() - start) as u32,
            self.sample_cost(),
        );
        for event in &out[start..] {
            sink.record_span(event.at, Stage::EventEmit, event.severity as u32, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_is_ordered() {
        assert!(Severity::Critical > Severity::Alert);
        assert!(Severity::Alert > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn severity_downgrade_steps_one_band_and_floors_at_info() {
        assert_eq!(Severity::Critical.downgrade(), Severity::Alert);
        assert_eq!(Severity::Alert.downgrade(), Severity::Warning);
        assert_eq!(Severity::Warning.downgrade(), Severity::Info);
        assert_eq!(Severity::Info.downgrade(), Severity::Info);
    }

    #[test]
    fn event_display_is_informative() {
        let e = MonitorEvent::new(
            SimTime::at_cycle(42),
            DetectionCapability::BusPolicing,
            Severity::Alert,
            Subject::Master(MasterId::DMA),
            Detail::Text("out-of-policy read"),
        );
        let s = e.to_string();
        assert!(s.contains("@42"));
        assert!(s.contains("Alert"));
        assert!(s.contains("DMA"));
        assert!(s.contains("out-of-policy read"));
    }

    #[test]
    fn corrupted_events_render_with_prefix() {
        let mut e = MonitorEvent::new(
            SimTime::at_cycle(1),
            DetectionCapability::BusPolicing,
            Severity::Alert,
            Subject::Platform,
            Detail::Text("original line"),
        );
        assert_eq!(e.rendered().to_string(), "original line");
        e.corrupted = true;
        assert_eq!(
            e.rendered().to_string(),
            "[corrupted in transit] original line"
        );
    }

    #[test]
    fn events_are_copy_and_default_unbound() {
        let e = MonitorEvent::new(
            SimTime::ZERO,
            DetectionCapability::BusPolicing,
            Severity::Info,
            Subject::Platform,
            Detail::StuckAt,
        );
        let f = e; // Copy
        assert_eq!(e, f);
        assert!(!e.monitor.is_bound());
        assert!(e.with_monitor(MonitorId::UNBOUND).monitor == MonitorId::UNBOUND);
    }

    #[test]
    fn subject_display_variants() {
        assert_eq!(Subject::Network.to_string(), "network");
        assert_eq!(Subject::Sensor(3).to_string(), "sensor:3");
        assert_eq!(Subject::Platform.to_string(), "platform");
        assert_eq!(Subject::Task(TaskId(1)).to_string(), "task:task#1");
    }
}
