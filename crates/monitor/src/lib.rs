#![deny(missing_docs)]

//! Active Runtime Resource Monitors — the paper's second microarchitectural
//! characteristic.
//!
//! > "Active runtime resource monitors shall actively monitor resource
//! > specific behaviour to detect malicious activity and report it to the
//! > System Security Manager. … These active monitors shall generate
//! > fine-grained resource specific information."
//!
//! Each monitor is a hardware-probe model attached to one resource class.
//! Monitors *sample* — the platform drives them on a configurable period —
//! and emit [`MonitorEvent`]s the SSM ingests. The set implemented here
//! covers the Detect row of Table I:
//!
//! | Monitor | Capability |
//! |---|---|
//! | [`BusPolicyMonitor`] | bus transaction policing |
//! | [`MemoryGuardMonitor`] | illegal-access detection on protected regions |
//! | [`CfiMonitor`] | static & dynamic control-flow integrity |
//! | [`SyscallMonitor`] | syscall-sequence anomaly detection |
//! | [`NetworkMonitor`] | flood, signature and exfiltration detection |
//! | [`SensorMonitor`] | sensor plausibility (range/rate/stuck-at) |
//! | [`EnvMonitor`] | voltage/clock/temperature envelopes |
//! | [`TaintMonitor`] | DIFT-style information-flow tracking |
//! | [`WatchdogMonitor`] | liveness (the passive baseline's only detector) |
//!
//! [`anomaly`] provides the streaming statistics (EWMA, CUSUM, windowed
//! variance) the behavioural monitors share.

pub mod anomaly;
pub mod bus_mon;
pub mod detail;
pub mod event;
pub mod exec_mon;
pub mod io_mon;
pub mod taint;

pub use bus_mon::{AccessWindow, BusPolicyMonitor, MemoryGuardMonitor};
pub use detail::{Detail, EnvQuantity};
pub use event::{MonitorEvent, ResourceMonitor, Severity, Subject};
pub use exec_mon::{CfiMonitor, SyscallMonitor};
pub use io_mon::{EnvMonitor, NetworkMonitor, SensorMonitor, WatchdogMonitor};
pub use taint::TaintMonitor;
