//! I/O and physical-domain monitors: network, sensor, environment and
//! watchdog.

use crate::anomaly::{Ewma, WindowStats};
use crate::detail::{Detail, EnvQuantity};
use crate::event::{MonitorEvent, ResourceMonitor, Severity, Subject};
use cres_policy::DetectionCapability;
use cres_sim::SimTime;
use cres_soc::periph::PacketKind;
use cres_soc::Soc;

/// Flood, signature and exfiltration detection on the NIC taps.
#[derive(Debug, Clone)]
pub struct NetworkMonitor {
    rx_cursor: usize,
    tx_cursor: usize,
    /// Ingress packets per sample above this are a flood.
    flood_threshold: u32,
    rate_baseline: Ewma,
    exfil_bytes_threshold: u64,
}

impl NetworkMonitor {
    /// Creates a monitor alarming at `flood_threshold` ingress packets per
    /// sample and `exfil_bytes_threshold` anomalous outbound bytes per
    /// sample.
    pub fn new(flood_threshold: u32, exfil_bytes_threshold: u64) -> Self {
        assert!(flood_threshold > 0);
        NetworkMonitor {
            rx_cursor: 0,
            tx_cursor: 0,
            flood_threshold,
            rate_baseline: Ewma::new(0.2),
            exfil_bytes_threshold,
        }
    }
}

impl ResourceMonitor for NetworkMonitor {
    fn name(&self) -> &'static str {
        "network"
    }

    fn capability(&self) -> DetectionCapability {
        // Rate is the headline capability; signature events carry their own
        // capability tag below.
        DetectionCapability::NetworkRate
    }

    fn sample_into(&mut self, soc: &mut Soc, now: SimTime, events: &mut Vec<MonitorEvent>) {
        let rx = soc.nic.rx_log();
        let new_rx = &rx[self.rx_cursor.min(rx.len())..];
        self.rx_cursor = rx.len();

        // Rate: ingress volume this sample vs threshold and baseline.
        let count = new_rx.len() as u32;
        if count > self.flood_threshold {
            events.push(MonitorEvent::new(
                now,
                DetectionCapability::NetworkRate,
                Severity::Alert,
                Subject::Network,
                Detail::IngressFlood {
                    count: u64::from(count),
                    threshold: u64::from(self.flood_threshold),
                    baseline: self.rate_baseline.mean(),
                },
            ));
        }
        self.rate_baseline.update(f64::from(count));

        // Signature: malformed ingress.
        let malformed = new_rx
            .iter()
            .filter(|p| p.kind == PacketKind::Malformed)
            .count();
        if malformed > 0 {
            events.push(MonitorEvent::new(
                now,
                DetectionCapability::NetworkSignature,
                Severity::Alert,
                Subject::Network,
                Detail::MalformedPackets {
                    count: malformed as u64,
                },
            ));
        }

        // Exfiltration: anomalous outbound volume.
        let tx = soc.nic.tx_log();
        let new_tx = &tx[self.tx_cursor.min(tx.len())..];
        self.tx_cursor = tx.len();
        let exfil_bytes: u64 = new_tx
            .iter()
            .filter(|p| p.kind == PacketKind::Exfil)
            .map(|p| u64::from(p.len))
            .sum();
        if exfil_bytes > self.exfil_bytes_threshold {
            events.push(MonitorEvent::new(
                now,
                DetectionCapability::NetworkSignature,
                Severity::Critical,
                Subject::Network,
                Detail::OutboundExfiltration { bytes: exfil_bytes },
            ));
        }
    }

    fn sample_cost(&self) -> u64 {
        4
    }
}

/// Per-sensor plausibility configuration.
#[derive(Debug, Clone, Copy)]
pub struct SensorEnvelope {
    /// Physically plausible minimum.
    pub min: f64,
    /// Physically plausible maximum.
    pub max: f64,
    /// Largest plausible change between consecutive samples.
    pub max_step: f64,
}

/// Sensor plausibility: range, rate-of-change, stuck-at and drift.
#[derive(Debug, Clone)]
pub struct SensorMonitor {
    sensor_idx: usize,
    envelope: SensorEnvelope,
    baseline: Ewma,
    window: WindowStats,
    last: Option<f64>,
}

impl SensorMonitor {
    /// Creates a monitor for sensor `sensor_idx` with the given envelope.
    pub fn new(sensor_idx: usize, envelope: SensorEnvelope) -> Self {
        assert!(envelope.min < envelope.max, "bad envelope");
        SensorMonitor {
            sensor_idx,
            envelope,
            baseline: Ewma::new(0.05),
            window: WindowStats::new(16),
            last: None,
        }
    }
}

impl ResourceMonitor for SensorMonitor {
    fn name(&self) -> &'static str {
        "sensor-plausibility"
    }

    fn capability(&self) -> DetectionCapability {
        DetectionCapability::SensorPlausibility
    }

    fn sample_into(&mut self, soc: &mut Soc, now: SimTime, events: &mut Vec<MonitorEvent>) {
        let value = soc.read_sensor(self.sensor_idx, now);
        let subject = Subject::Sensor(self.sensor_idx);

        if value < self.envelope.min || value > self.envelope.max || !value.is_finite() {
            events.push(MonitorEvent::new(
                now,
                self.capability(),
                Severity::Critical,
                subject,
                Detail::SensorOutOfEnvelope {
                    value,
                    min: self.envelope.min,
                    max: self.envelope.max,
                },
            ));
        }
        if let Some(last) = self.last {
            let step = (value - last).abs();
            if step > self.envelope.max_step {
                events.push(MonitorEvent::new(
                    now,
                    self.capability(),
                    Severity::Alert,
                    subject,
                    Detail::ImplausibleStep {
                        step,
                        max_step: self.envelope.max_step,
                    },
                ));
            }
        }
        if self.baseline.warmed_up() {
            let z = self.baseline.z_score(value);
            if z.abs() > 8.0 {
                events.push(MonitorEvent::new(
                    now,
                    self.capability(),
                    Severity::Alert,
                    subject,
                    Detail::BaselineDrift { z },
                ));
            }
        }
        if self.window.is_full() && self.window.variance() == 0.0 {
            events.push(MonitorEvent::new(
                now,
                self.capability(),
                Severity::Alert,
                subject,
                Detail::StuckAt,
            ));
        }
        self.baseline.update(value);
        self.window.push(value);
        self.last = Some(value);
    }

    fn sample_cost(&self) -> u64 {
        3
    }
}

/// Voltage / clock / temperature envelope monitoring.
#[derive(Debug, Clone)]
pub struct EnvMonitor {
    voltage: (f64, f64),
    clock_mhz: (f64, f64),
    temp_c: (f64, f64),
}

impl Default for EnvMonitor {
    fn default() -> Self {
        EnvMonitor {
            voltage: (3.0, 3.6),
            clock_mhz: (90.0, 110.0),
            temp_c: (-10.0, 85.0),
        }
    }
}

impl EnvMonitor {
    /// Creates a monitor with explicit envelopes.
    pub fn new(voltage: (f64, f64), clock_mhz: (f64, f64), temp_c: (f64, f64)) -> Self {
        EnvMonitor {
            voltage,
            clock_mhz,
            temp_c,
        }
    }
}

impl ResourceMonitor for EnvMonitor {
    fn name(&self) -> &'static str {
        "environment"
    }

    fn capability(&self) -> DetectionCapability {
        DetectionCapability::Environmental
    }

    fn sample_into(&mut self, soc: &mut Soc, now: SimTime, events: &mut Vec<MonitorEvent>) {
        let r = soc.read_env(now);
        let mut check =
            |quantity: EnvQuantity, value: f64, (lo, hi): (f64, f64), severity: Severity| {
                if value < lo || value > hi {
                    events.push(MonitorEvent::new(
                        now,
                        DetectionCapability::Environmental,
                        severity,
                        Subject::Environment,
                        Detail::EnvOutOfRange {
                            quantity,
                            value,
                            lo,
                            hi,
                        },
                    ));
                }
            };
        check(
            EnvQuantity::Voltage,
            r.voltage,
            self.voltage,
            Severity::Critical,
        );
        check(
            EnvQuantity::Clock,
            r.clock_mhz,
            self.clock_mhz,
            Severity::Critical,
        );
        check(
            EnvQuantity::Temperature,
            r.temp_c,
            self.temp_c,
            Severity::Alert,
        );
    }
}

/// Watchdog liveness — the passive baseline's only "detector".
#[derive(Debug, Clone, Default)]
pub struct WatchdogMonitor;

impl WatchdogMonitor {
    /// Creates the monitor.
    pub fn new() -> Self {
        WatchdogMonitor
    }
}

impl ResourceMonitor for WatchdogMonitor {
    fn name(&self) -> &'static str {
        "watchdog"
    }

    fn capability(&self) -> DetectionCapability {
        DetectionCapability::WatchdogLiveness
    }

    fn sample_into(&mut self, soc: &mut Soc, now: SimTime, events: &mut Vec<MonitorEvent>) {
        if soc.watchdog.fire_and_rearm(now) {
            events.push(MonitorEvent::new(
                now,
                self.capability(),
                Severity::Critical,
                Subject::Platform,
                Detail::WatchdogExpired,
            ));
        }
    }

    fn sample_cost(&self) -> u64 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cres_sim::SimDuration;
    use cres_soc::periph::{EnvTamper, Packet, Sensor, SensorSpoof};
    use cres_soc::soc::SocBuilder;

    fn soc() -> Soc {
        SocBuilder::with_standard_layout(3)
            .sensor(Sensor::new("freq", 50.0, 0.05, 100_000, 0.002))
            .build()
    }

    fn pkt(at: u64, kind: PacketKind, len: u32) -> Packet {
        Packet {
            src: 7,
            dst: 1,
            len,
            kind,
            at: SimTime::at_cycle(at),
        }
    }

    #[test]
    fn quiet_network_is_silent() {
        let mut s = soc();
        let mut mon = NetworkMonitor::new(50, 10_000);
        for i in 0..10 {
            s.nic.deliver(pkt(i, PacketKind::Command, 64));
        }
        let events = mon.sample(&mut s, SimTime::at_cycle(100));
        assert!(events.is_empty(), "{events:?}");
    }

    #[test]
    fn flood_detected() {
        let mut s = soc();
        let mut mon = NetworkMonitor::new(50, 10_000);
        mon.sample(&mut s, SimTime::ZERO); // establish baseline
        for i in 0..500 {
            s.nic.deliver(pkt(i, PacketKind::Command, 64));
        }
        let events = mon.sample(&mut s, SimTime::at_cycle(100));
        assert!(events.iter().any(|e| e.detail.contains("flood")));
    }

    #[test]
    fn malformed_signature_detected() {
        let mut s = soc();
        let mut mon = NetworkMonitor::new(50, 10_000);
        s.nic.deliver(pkt(0, PacketKind::Malformed, 64));
        let events = mon.sample(&mut s, SimTime::at_cycle(10));
        assert!(events.iter().any(|e| e.detail.contains("malformed")));
        assert!(events
            .iter()
            .any(|e| e.capability == DetectionCapability::NetworkSignature));
    }

    #[test]
    fn exfiltration_detected_even_quarantine_missed() {
        let mut s = soc();
        let mut mon = NetworkMonitor::new(50, 1_000);
        for i in 0..10 {
            s.nic.send(pkt(i, PacketKind::Exfil, 4096));
        }
        let events = mon.sample(&mut s, SimTime::at_cycle(10));
        assert!(events
            .iter()
            .any(|e| e.severity == Severity::Critical && e.detail.contains("exfiltration")));
    }

    #[test]
    fn telemetry_tx_is_not_exfil() {
        let mut s = soc();
        let mut mon = NetworkMonitor::new(50, 1_000);
        for i in 0..10 {
            s.nic.send(pkt(i, PacketKind::Telemetry, 4096));
        }
        assert!(mon.sample(&mut s, SimTime::at_cycle(10)).is_empty());
    }

    #[test]
    fn honest_sensor_is_silent() {
        let mut s = soc();
        let mut mon = SensorMonitor::new(
            0,
            SensorEnvelope {
                min: 45.0,
                max: 55.0,
                max_step: 1.0,
            },
        );
        for i in 0..100 {
            let events = mon.sample(&mut s, SimTime::at_cycle(i * 1000));
            assert!(events.is_empty(), "step {i}: {events:?}");
        }
    }

    #[test]
    fn out_of_envelope_sensor_is_critical() {
        let mut s = soc();
        s.sensors[0].spoof(SensorSpoof::Fixed(62.0));
        let mut mon = SensorMonitor::new(
            0,
            SensorEnvelope {
                min: 45.0,
                max: 55.0,
                max_step: 1.0,
            },
        );
        let events = mon.sample(&mut s, SimTime::ZERO);
        assert!(events.iter().any(|e| e.severity == Severity::Critical));
    }

    #[test]
    fn stuck_sensor_detected() {
        let mut s = soc();
        s.sensors[0].spoof(SensorSpoof::Fixed(50.0)); // inside envelope, but frozen
        let mut mon = SensorMonitor::new(
            0,
            SensorEnvelope {
                min: 45.0,
                max: 55.0,
                max_step: 1.0,
            },
        );
        let mut stuck = false;
        for i in 0..40 {
            let events = mon.sample(&mut s, SimTime::at_cycle(i * 1000));
            stuck |= events.iter().any(|e| e.detail.contains("stuck-at"));
        }
        assert!(stuck, "frozen sensor never flagged");
    }

    #[test]
    fn sudden_jump_detected_as_step() {
        let mut s = soc();
        let mut mon = SensorMonitor::new(
            0,
            SensorEnvelope {
                min: 0.0,
                max: 100.0,
                max_step: 0.5,
            },
        );
        mon.sample(&mut s, SimTime::ZERO);
        s.sensors[0].spoof(SensorSpoof::Fixed(80.0)); // in range but a huge jump
        let events = mon.sample(&mut s, SimTime::at_cycle(1000));
        assert!(events.iter().any(|e| e.detail.contains("implausible step")));
    }

    #[test]
    fn env_monitor_nominal_silent_glitch_critical() {
        let mut s = soc();
        let mut mon = EnvMonitor::default();
        assert!(mon.sample(&mut s, SimTime::ZERO).is_empty());
        s.env.tamper(EnvTamper::VoltageGlitch(1.1));
        let events = mon.sample(&mut s, SimTime::at_cycle(1));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].severity, Severity::Critical);
        assert!(events[0].detail.contains("voltage"));
    }

    #[test]
    fn env_monitor_thermal_alert() {
        let mut s = soc();
        let mut mon = EnvMonitor::default();
        s.env.tamper(EnvTamper::Thermal(120.0));
        let events = mon.sample(&mut s, SimTime::ZERO);
        assert!(events.iter().any(|e| e.detail.contains("temperature")));
    }

    #[test]
    fn watchdog_monitor_fires_once_per_expiry() {
        let mut s = SocBuilder::with_standard_layout(0)
            .watchdog_timeout(SimDuration::cycles(100))
            .build();
        let mut mon = WatchdogMonitor::new();
        assert!(mon.sample(&mut s, SimTime::at_cycle(50)).is_empty());
        let events = mon.sample(&mut s, SimTime::at_cycle(150));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].severity, Severity::Critical);
        // rearmed: silent immediately after
        assert!(mon.sample(&mut s, SimTime::at_cycle(200)).is_empty());
        assert!(!mon.sample(&mut s, SimTime::at_cycle(300)).is_empty());
    }
}
