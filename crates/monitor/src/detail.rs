//! Compact, `Copy` event detail payloads rendered to text lazily.
//!
//! The paper's ARMs are hardware monitors: producing telemetry must not
//! perturb the monitored system. In the simulator that translates to a
//! heap-allocation-free sampling path, so events carry a [`Detail`] — a
//! small discriminant plus the raw numeric/typed arguments — instead of a
//! pre-formatted `String`. The human-readable line (identical byte-for-byte
//! to the old `format!` output, pinned by the property suite) is produced
//! only at the cold edges: evidence-append serialization, console output
//! and report export.

use cres_soc::addr::{Addr, BusOp, MasterId, RegionId};
use cres_soc::bus::BusError;
use cres_soc::task::{BlockId, Syscall};
use std::fmt;

/// Which environmental quantity an [`Detail::EnvOutOfRange`] concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnvQuantity {
    /// Supply voltage (V).
    Voltage,
    /// Core clock (MHz).
    Clock,
    /// Die temperature (°C).
    Temperature,
}

impl EnvQuantity {
    /// The name used in rendered detail lines.
    pub const fn name(self) -> &'static str {
        match self {
            EnvQuantity::Voltage => "voltage",
            EnvQuantity::Clock => "clock",
            EnvQuantity::Temperature => "temperature",
        }
    }
}

/// The payload of a [`crate::MonitorEvent`]: one variant per distinct
/// observation a monitor can make, carrying the raw arguments.
///
/// Kept `Copy` and small on purpose — constructing one on the hot sampling
/// path costs a register move, not an allocation. [`Detail`] implements
/// [`fmt::Display`] with output byte-identical to the eagerly formatted
/// strings it replaced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Detail {
    /// The bus tap ring overflowed; `lost` records were evicted unseen.
    BusTapOverflow {
        /// Records lost to eviction.
        lost: u64,
    },
    /// Any DEBUG-master activity on a production device.
    DebugPortActive {
        /// Operation performed.
        op: BusOp,
        /// Target address.
        addr: Addr,
    },
    /// A granted access outside the mission policy windows.
    OutOfPolicy {
        /// Operation performed.
        op: BusOp,
        /// Master that issued it.
        master: MasterId,
        /// Target address.
        addr: Addr,
        /// Region hit.
        region: RegionId,
    },
    /// A bus-level denial (MPU, gating, unmapped address).
    AccessDenied {
        /// Operation attempted.
        op: BusOp,
        /// Master that issued it.
        master: MasterId,
        /// Target address.
        addr: Addr,
        /// Why the interconnect refused.
        err: BusError,
    },
    /// A denied probe of a guarded region (secret scanning).
    GuardedProbe {
        /// Guarded region probed.
        region: RegionId,
        /// Master that probed.
        master: MasterId,
        /// Operation attempted.
        op: BusOp,
        /// Target address.
        addr: Addr,
    },
    /// A *granted* write into a write-guarded region (firmware tamper).
    GuardedWrite {
        /// Write-guarded region written.
        region: RegionId,
        /// Master that wrote.
        master: MasterId,
        /// Target address.
        addr: Addr,
    },
    /// Ingress packet rate above the flood threshold.
    IngressFlood {
        /// Packets seen this sample.
        count: u64,
        /// Configured flood threshold.
        threshold: u64,
        /// EWMA rate baseline at detection time.
        baseline: f64,
    },
    /// Malformed packets matching exploit signatures.
    MalformedPackets {
        /// Matching packets this sample.
        count: u64,
    },
    /// Outbound bytes beyond the exfiltration profile.
    OutboundExfiltration {
        /// Off-profile byte count.
        bytes: u64,
    },
    /// Sensor reading outside its physical envelope.
    SensorOutOfEnvelope {
        /// The reading.
        value: f64,
        /// Envelope minimum.
        min: f64,
        /// Envelope maximum.
        max: f64,
    },
    /// Sensor step larger than physically plausible.
    ImplausibleStep {
        /// Observed step.
        step: f64,
        /// Maximum plausible step.
        max_step: f64,
    },
    /// Sensor drift from the learned baseline.
    BaselineDrift {
        /// Z-score against the EWMA baseline.
        z: f64,
    },
    /// Sensor stuck at a constant value (zero variance over the window).
    StuckAt,
    /// Environmental quantity outside its envelope (fault injection).
    EnvOutOfRange {
        /// Which quantity.
        quantity: EnvQuantity,
        /// The reading.
        value: f64,
        /// Envelope low bound.
        lo: f64,
        /// Envelope high bound.
        hi: f64,
    },
    /// Watchdog expired: the system stopped kicking it.
    WatchdogExpired,
    /// Control-flow edge outside the provisioned set.
    IllegalEdge {
        /// Source basic block.
        from: BlockId,
        /// Destination basic block.
        to: BlockId,
    },
    /// A syscall from the deny list.
    DenyListedSyscall {
        /// The denied syscall.
        call: Syscall,
    },
    /// A syscall bigram never seen in training.
    UnseenSyscallSequence {
        /// Previous syscall.
        prev: Syscall,
        /// Current syscall.
        call: Syscall,
    },
    /// Secret-tainted data written to an egress sink (DIFT).
    TaintedEgress {
        /// Master that carried the tainted data.
        master: MasterId,
        /// Egress sink region.
        region: RegionId,
        /// Target address.
        addr: Addr,
    },
    /// Free-form static text — synthetic events in tests and ablations.
    Text(&'static str),
}

impl Detail {
    /// True when the rendered line contains `needle` — the test-side
    /// convenience mirroring the old `String::contains` assertions. Not for
    /// hot-path use: rendering goes through the formatting machinery.
    pub fn contains(&self, needle: &str) -> bool {
        self.to_string().contains(needle)
    }
}

impl fmt::Display for Detail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Detail::BusTapOverflow { lost } => {
                write!(f, "bus tap overflow: {lost} records lost")
            }
            Detail::DebugPortActive { op, addr } => {
                write!(f, "debug port active: {op} at {addr}")
            }
            Detail::OutOfPolicy {
                op,
                master,
                addr,
                region,
            } => write!(f, "out-of-policy {op} by {master} at {addr} ({region})"),
            Detail::AccessDenied {
                op,
                master,
                addr,
                err,
            } => write!(f, "denied {op} by {master} at {addr}: {err}"),
            Detail::GuardedProbe {
                region,
                master,
                op,
                addr,
            } => write!(f, "probe of guarded {region} by {master}: {op} at {addr} denied"),
            Detail::GuardedWrite {
                region,
                master,
                addr,
            } => write!(f, "write into write-guarded {region} by {master} at {addr}"),
            Detail::IngressFlood {
                count,
                threshold,
                baseline,
            } => write!(
                f,
                "ingress flood: {count} packets this sample (threshold {threshold}, baseline {baseline:.1})"
            ),
            Detail::MalformedPackets { count } => {
                write!(f, "{count} malformed packets matched exploit signatures")
            }
            Detail::OutboundExfiltration { bytes } => {
                write!(f, "outbound exfiltration: {bytes} bytes off-profile")
            }
            Detail::SensorOutOfEnvelope { value, min, max } => {
                write!(f, "reading {value:.3} outside physical envelope [{min}, {max}]")
            }
            Detail::ImplausibleStep { step, max_step } => {
                write!(f, "implausible step {step:.3} (max {max_step})")
            }
            Detail::BaselineDrift { z } => write!(f, "drift from baseline: z={z:.1}"),
            Detail::StuckAt => write!(f, "stuck-at: zero variance over window"),
            Detail::EnvOutOfRange {
                quantity,
                value,
                lo,
                hi,
            } => write!(
                f,
                "{} {value:.2} outside [{lo}, {hi}] — possible fault injection",
                quantity.name()
            ),
            Detail::WatchdogExpired => write!(f, "watchdog expired: system unresponsive"),
            Detail::IllegalEdge { from, to } => {
                write!(f, "illegal control-flow edge {from} -> {to}")
            }
            Detail::DenyListedSyscall { call } => write!(f, "deny-listed syscall {call:?}"),
            Detail::UnseenSyscallSequence { prev, call } => {
                write!(f, "unseen syscall sequence {prev:?} -> {call:?}")
            }
            Detail::TaintedEgress {
                master,
                region,
                addr,
            } => write!(f, "secret-tainted {master} wrote egress sink {region} at {addr}"),
            Detail::Text(s) => f.write_str(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detail_is_small_and_copy() {
        // The whole point: events move by register copy, not allocation.
        assert!(std::mem::size_of::<Detail>() <= 40, "Detail grew too large");
        let d = Detail::BusTapOverflow { lost: 3 };
        let e = d; // Copy
        assert_eq!(d, e);
    }

    #[test]
    fn text_variant_renders_verbatim() {
        assert_eq!(Detail::Text("driver bug").to_string(), "driver bug");
        assert!(Detail::Text("debug port active").contains("debug port"));
    }
}
