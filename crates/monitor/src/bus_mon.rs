//! Interconnect monitors: bus policing and memory guarding.
//!
//! Both monitors tap the bus ring through their own cursors — the hardware
//! analogue is a probe on the interconnect fabric (SECA-style, per Table I's
//! academic landscape). The *policy* they check is stricter than the MPU:
//! the MPU enforces architectural legality, the policy windows encode
//! *expected mission behaviour* (which masters should ever touch which
//! regions), so the bus monitor catches reconnaissance that the MPU lets
//! through.

use crate::detail::Detail;
use crate::event::{MonitorEvent, ResourceMonitor, Severity, Subject};
use cres_policy::DetectionCapability;
use cres_sim::SimTime;
use cres_soc::addr::{BusOp, MasterId, RegionId};
use cres_soc::bus::{TxnCursor, TxnOutcome};
use cres_soc::Soc;

/// An allowed (master, region, operation-set) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessWindow {
    /// Master the window applies to.
    pub master: MasterId,
    /// Region the window covers.
    pub region: RegionId,
    /// Reads allowed.
    pub read: bool,
    /// Writes allowed.
    pub write: bool,
    /// Fetches allowed.
    pub exec: bool,
}

impl AccessWindow {
    /// True when the window permits `op`.
    pub fn allows(&self, op: BusOp) -> bool {
        match op {
            BusOp::Read => self.read,
            BusOp::Write => self.write,
            BusOp::Exec => self.exec,
        }
    }
}

/// Bus transaction policing against mission policy windows.
#[derive(Debug, Clone)]
pub struct BusPolicyMonitor {
    windows: Vec<AccessWindow>,
    cursor: TxnCursor,
    flag_debug_port: bool,
    out_of_policy: u64,
}

impl BusPolicyMonitor {
    /// Creates a monitor with the given policy windows. `flag_debug_port`
    /// raises an alert on any DEBUG-master activity (production devices
    /// should see none).
    pub fn new(windows: Vec<AccessWindow>, flag_debug_port: bool) -> Self {
        BusPolicyMonitor {
            windows,
            cursor: TxnCursor::default(),
            flag_debug_port,
            out_of_policy: 0,
        }
    }

    /// Count of out-of-policy transactions seen so far.
    pub fn out_of_policy(&self) -> u64 {
        self.out_of_policy
    }

    fn in_policy(&self, master: MasterId, region: RegionId, op: BusOp) -> bool {
        self.windows
            .iter()
            .any(|w| w.master == master && w.region == region && w.allows(op))
    }
}

impl ResourceMonitor for BusPolicyMonitor {
    fn name(&self) -> &'static str {
        "bus-policy"
    }

    fn capability(&self) -> DetectionCapability {
        DetectionCapability::BusPolicing
    }

    fn sample_into(&mut self, soc: &mut Soc, now: SimTime, events: &mut Vec<MonitorEvent>) {
        let (records, lost) = soc.bus.poll_iter(&mut self.cursor);
        if lost > 0 {
            events.push(MonitorEvent::new(
                now,
                self.capability(),
                Severity::Warning,
                Subject::Platform,
                Detail::BusTapOverflow { lost },
            ));
        }
        let mut out_of_policy = 0;
        for rec in records {
            if self.flag_debug_port && rec.master == MasterId::DEBUG {
                events.push(MonitorEvent::new(
                    rec.at,
                    DetectionCapability::BusPolicing,
                    Severity::Alert,
                    Subject::Master(MasterId::DEBUG),
                    Detail::DebugPortActive {
                        op: rec.op,
                        addr: rec.addr,
                    },
                ));
                continue;
            }
            match (rec.outcome, rec.region) {
                (TxnOutcome::Granted, Some(region)) => {
                    if !self.in_policy(rec.master, region, rec.op) {
                        out_of_policy += 1;
                        events.push(MonitorEvent::new(
                            rec.at,
                            DetectionCapability::BusPolicing,
                            Severity::Alert,
                            Subject::Master(rec.master),
                            Detail::OutOfPolicy {
                                op: rec.op,
                                master: rec.master,
                                addr: rec.addr,
                                region,
                            },
                        ));
                    }
                }
                (TxnOutcome::Granted, None) => {}
                (TxnOutcome::Denied(err), _) => {
                    events.push(MonitorEvent::new(
                        rec.at,
                        DetectionCapability::BusPolicing,
                        Severity::Warning,
                        Subject::Master(rec.master),
                        Detail::AccessDenied {
                            op: rec.op,
                            master: rec.master,
                            addr: rec.addr,
                            err,
                        },
                    ));
                }
            }
        }
        self.out_of_policy += out_of_policy;
    }
}

/// Guards a set of protected regions: denied probes are alerts (someone is
/// scanning for secrets) and *granted writes* to guarded code regions are
/// critical (firmware tamper in progress).
#[derive(Debug, Clone)]
pub struct MemoryGuardMonitor {
    guarded: Vec<RegionId>,
    write_guarded: Vec<RegionId>,
    cursor: TxnCursor,
}

impl MemoryGuardMonitor {
    /// Creates a guard over `guarded` regions (all denied accesses alert)
    /// and `write_guarded` regions (granted writes are critical — e.g.
    /// firmware slots outside an update window).
    pub fn new(guarded: Vec<RegionId>, write_guarded: Vec<RegionId>) -> Self {
        MemoryGuardMonitor {
            guarded,
            write_guarded,
            cursor: TxnCursor::default(),
        }
    }
}

impl ResourceMonitor for MemoryGuardMonitor {
    fn name(&self) -> &'static str {
        "memory-guard"
    }

    fn capability(&self) -> DetectionCapability {
        DetectionCapability::MemoryGuard
    }

    fn sample_into(&mut self, soc: &mut Soc, _now: SimTime, events: &mut Vec<MonitorEvent>) {
        let (records, _) = soc.bus.poll_iter(&mut self.cursor);
        for rec in records {
            let Some(region) = rec.region else { continue };
            match rec.outcome {
                TxnOutcome::Denied(_) if self.guarded.contains(&region) => {
                    events.push(MonitorEvent::new(
                        rec.at,
                        DetectionCapability::MemoryGuard,
                        Severity::Alert,
                        Subject::Master(rec.master),
                        Detail::GuardedProbe {
                            region,
                            master: rec.master,
                            op: rec.op,
                            addr: rec.addr,
                        },
                    ));
                }
                TxnOutcome::Granted
                    if rec.op == BusOp::Write && self.write_guarded.contains(&region) =>
                {
                    events.push(MonitorEvent::new(
                        rec.at,
                        DetectionCapability::MemoryGuard,
                        Severity::Critical,
                        Subject::Region(region),
                        Detail::GuardedWrite {
                            region,
                            master: rec.master,
                            addr: rec.addr,
                        },
                    ));
                }
                _ => {}
            }
        }
    }

    fn sample_cost(&self) -> u64 {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cres_soc::addr::Addr;
    use cres_soc::soc::SocBuilder;

    fn soc() -> Soc {
        SocBuilder::with_standard_layout(1).build()
    }

    fn windows_for_cpu0(soc: &Soc) -> Vec<AccessWindow> {
        // CPU0 may use flash_a (rx), sram (rw) and periph (rw) only.
        let r = |name: &str| soc.mem.region_by_name(name).unwrap().id();
        vec![
            AccessWindow {
                master: MasterId::CPU0,
                region: r("flash_a"),
                read: true,
                write: false,
                exec: true,
            },
            AccessWindow {
                master: MasterId::CPU0,
                region: r("sram"),
                read: true,
                write: true,
                exec: false,
            },
            AccessWindow {
                master: MasterId::CPU0,
                region: r("periph"),
                read: true,
                write: true,
                exec: false,
            },
        ]
    }

    #[test]
    fn in_policy_traffic_is_silent() {
        let mut soc = soc();
        let mut mon = BusPolicyMonitor::new(windows_for_cpu0(&soc), true);
        let now = SimTime::ZERO;
        let sram = Addr(0x2000_0000);
        soc.bus
            .write(now, MasterId::CPU0, sram, &[1, 2], &mut soc.mem)
            .unwrap();
        soc.bus
            .fetch(now, MasterId::CPU0, Addr(0x0800_0000), 16, &soc.mem)
            .unwrap();
        let events = mon.sample(&mut soc, now);
        assert!(events.is_empty(), "unexpected events: {events:?}");
    }

    #[test]
    fn out_of_policy_granted_access_alerts() {
        let mut soc = soc();
        let mut mon = BusPolicyMonitor::new(windows_for_cpu0(&soc), true);
        // tee_secure is architecturally open by default grants, but NOT in
        // CPU0's mission policy — reconnaissance the MPU misses.
        soc.bus
            .read(
                SimTime::ZERO,
                MasterId::CPU0,
                Addr(0x3000_0000),
                16,
                &soc.mem,
            )
            .unwrap();
        let events = mon.sample(&mut soc, SimTime::ZERO);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].severity, Severity::Alert);
        assert!(events[0].detail.contains("out-of-policy"));
        assert_eq!(mon.out_of_policy(), 1);
    }

    #[test]
    fn denied_access_warns() {
        let mut soc = soc();
        let ssm_region = soc.mem.region_by_name("ssm_private").unwrap().id();
        soc.mem.revoke(MasterId::CPU0, ssm_region);
        let mut mon = BusPolicyMonitor::new(windows_for_cpu0(&soc), true);
        let _ = soc.bus.read(
            SimTime::ZERO,
            MasterId::CPU0,
            Addr(0x5000_0000),
            16,
            &soc.mem,
        );
        let events = mon.sample(&mut soc, SimTime::ZERO);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].severity, Severity::Warning);
        assert!(events[0].detail.contains("denied"));
    }

    #[test]
    fn debug_port_activity_always_alerts() {
        let mut soc = soc();
        let mut mon = BusPolicyMonitor::new(vec![], true);
        let _ = soc.bus.read(
            SimTime::ZERO,
            MasterId::DEBUG,
            Addr(0x2000_0000),
            4,
            &soc.mem,
        );
        let events = mon.sample(&mut soc, SimTime::ZERO);
        assert_eq!(events.len(), 1);
        assert!(events[0].detail.contains("debug port"));
    }

    #[test]
    fn each_event_reported_once() {
        let mut soc = soc();
        let mut mon = BusPolicyMonitor::new(windows_for_cpu0(&soc), true);
        soc.bus
            .read(
                SimTime::ZERO,
                MasterId::CPU0,
                Addr(0x3000_0000),
                4,
                &soc.mem,
            )
            .unwrap();
        assert_eq!(mon.sample(&mut soc, SimTime::ZERO).len(), 1);
        assert!(mon.sample(&mut soc, SimTime::ZERO).is_empty());
    }

    #[test]
    fn memory_guard_flags_probe_and_tamper() {
        let mut soc = soc();
        let ssm = soc.mem.region_by_name("ssm_private").unwrap().id();
        let flash_a = soc.mem.region_by_name("flash_a").unwrap().id();
        for cpu in 0..4 {
            soc.mem.revoke(MasterId::cpu(cpu), ssm);
        }
        let mut mon = MemoryGuardMonitor::new(vec![ssm], vec![flash_a]);
        // probe the guarded region (denied)
        let _ = soc.bus.read(
            SimTime::ZERO,
            MasterId::CPU1,
            Addr(0x5000_0000),
            8,
            &soc.mem,
        );
        // tamper with write-guarded flash (granted: rwx base perms)
        soc.bus
            .write(
                SimTime::ZERO,
                MasterId::CPU1,
                Addr(0x0800_0000),
                &[0xEE],
                &mut soc.mem,
            )
            .unwrap();
        let events = mon.sample(&mut soc, SimTime::ZERO);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].severity, Severity::Alert);
        assert!(events[0].detail.contains("probe"));
        assert_eq!(events[1].severity, Severity::Critical);
        assert!(events[1].detail.contains("write-guarded"));
    }

    #[test]
    fn guard_ignores_unrelated_traffic() {
        let mut soc = soc();
        let ssm = soc.mem.region_by_name("ssm_private").unwrap().id();
        let mut mon = MemoryGuardMonitor::new(vec![ssm], vec![]);
        soc.bus
            .write(
                SimTime::ZERO,
                MasterId::CPU0,
                Addr(0x2000_0000),
                &[1],
                &mut soc.mem,
            )
            .unwrap();
        assert!(mon.sample(&mut soc, SimTime::ZERO).is_empty());
    }
}
