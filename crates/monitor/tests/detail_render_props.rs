//! Pins [`Detail`]'s lazy rendering to the exact `format!` strings the
//! eager hot path used before the allocation-free refactor.
//!
//! Every variant is exercised with arbitrary field values and compared
//! byte-for-byte against an independently written template (deliberately
//! duplicated here — if the `Display` impl drifts, this suite fails even
//! when the goldens are re-blessed). The corruption prefix added by
//! [`MonitorEvent::rendered`] is pinned the same way.

use cres_monitor::detail::{Detail, EnvQuantity};
use cres_monitor::event::{MonitorEvent, Severity, Subject};
use cres_policy::DetectionCapability;
use cres_sim::SimTime;
use cres_soc::addr::{Addr, BusOp, MasterId, RegionId};
use cres_soc::bus::BusError;
use cres_soc::task::{BlockId, Syscall};
use proptest::prelude::*;

const OPS: [BusOp; 3] = [BusOp::Read, BusOp::Write, BusOp::Exec];

const SYSCALLS: [Syscall; 9] = [
    Syscall::SensorRead,
    Syscall::Actuate,
    Syscall::NetSend,
    Syscall::NetRecv,
    Syscall::CryptoOp,
    Syscall::StorageWrite,
    Syscall::StorageRead,
    Syscall::PrivEscalate,
    Syscall::FirmwareWrite,
];

const QUANTITIES: [EnvQuantity; 3] = [
    EnvQuantity::Voltage,
    EnvQuantity::Clock,
    EnvQuantity::Temperature,
];

fn bus_error(sel: usize, master: MasterId) -> BusError {
    match sel % 4 {
        0 => BusError::MasterGated(master),
        1 => BusError::PermissionDenied,
        2 => BusError::Unmapped,
        _ => BusError::OutOfBounds,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bus_details_render_like_the_old_format_strings(
        lost: u64,
        addr_raw: u64,
        region_raw: u32,
        op_sel in 0usize..3,
        master_sel in 0usize..8,
        err_sel in 0usize..4,
    ) {
        let op = OPS[op_sel];
        let master = MasterId::ALL[master_sel];
        let addr = Addr(addr_raw);
        let region = RegionId(region_raw);
        let err = bus_error(err_sel, master);

        prop_assert_eq!(
            Detail::BusTapOverflow { lost }.to_string(),
            format!("bus tap overflow: {lost} records lost")
        );
        prop_assert_eq!(
            Detail::DebugPortActive { op, addr }.to_string(),
            format!("debug port active: {op} at {addr}")
        );
        prop_assert_eq!(
            Detail::OutOfPolicy { op, master, addr, region }.to_string(),
            format!("out-of-policy {op} by {master} at {addr} ({region})")
        );
        prop_assert_eq!(
            Detail::AccessDenied { op, master, addr, err }.to_string(),
            format!("denied {op} by {master} at {addr}: {err}")
        );
        prop_assert_eq!(
            Detail::GuardedProbe { region, master, op, addr }.to_string(),
            format!("probe of guarded {region} by {master}: {op} at {addr} denied")
        );
        prop_assert_eq!(
            Detail::GuardedWrite { region, master, addr }.to_string(),
            format!("write into write-guarded {region} by {master} at {addr}")
        );
        prop_assert_eq!(
            Detail::TaintedEgress { master, region, addr }.to_string(),
            format!("secret-tainted {master} wrote egress sink {region} at {addr}")
        );
    }

    #[test]
    fn network_and_sensor_details_render_like_the_old_format_strings(
        count: u64,
        threshold: u64,
        bytes: u64,
        baseline in -1e9f64..1e9,
        value in -1e9f64..1e9,
        min in -1e9f64..1e9,
        max in -1e9f64..1e9,
        step in -1e9f64..1e9,
        z in -1e3f64..1e3,
    ) {
        prop_assert_eq!(
            Detail::IngressFlood { count, threshold, baseline }.to_string(),
            format!(
                "ingress flood: {count} packets this sample (threshold {threshold}, baseline {baseline:.1})"
            )
        );
        prop_assert_eq!(
            Detail::MalformedPackets { count }.to_string(),
            format!("{count} malformed packets matched exploit signatures")
        );
        prop_assert_eq!(
            Detail::OutboundExfiltration { bytes }.to_string(),
            format!("outbound exfiltration: {bytes} bytes off-profile")
        );
        prop_assert_eq!(
            Detail::SensorOutOfEnvelope { value, min, max }.to_string(),
            format!("reading {value:.3} outside physical envelope [{min}, {max}]")
        );
        prop_assert_eq!(
            Detail::ImplausibleStep { step, max_step: max }.to_string(),
            format!("implausible step {step:.3} (max {max})")
        );
        prop_assert_eq!(
            Detail::BaselineDrift { z }.to_string(),
            format!("drift from baseline: z={z:.1}")
        );
    }

    #[test]
    fn env_exec_details_render_like_the_old_format_strings(
        q_sel in 0usize..3,
        value in -1e6f64..1e6,
        lo in -1e6f64..1e6,
        hi in -1e6f64..1e6,
        from_raw: u32,
        to_raw: u32,
        call_sel in 0usize..9,
        prev_sel in 0usize..9,
    ) {
        let quantity = QUANTITIES[q_sel];
        let (from, to) = (BlockId(from_raw), BlockId(to_raw));
        let (call, prev) = (SYSCALLS[call_sel], SYSCALLS[prev_sel]);

        prop_assert_eq!(
            Detail::EnvOutOfRange { quantity, value, lo, hi }.to_string(),
            format!(
                "{} {value:.2} outside [{lo}, {hi}] — possible fault injection",
                quantity.name()
            )
        );
        prop_assert_eq!(
            Detail::IllegalEdge { from, to }.to_string(),
            format!("illegal control-flow edge {from} -> {to}")
        );
        prop_assert_eq!(
            Detail::DenyListedSyscall { call }.to_string(),
            format!("deny-listed syscall {call:?}")
        );
        prop_assert_eq!(
            Detail::UnseenSyscallSequence { prev, call }.to_string(),
            format!("unseen syscall sequence {prev:?} -> {call:?}")
        );
    }

    #[test]
    fn corruption_prefix_matches_the_old_fault_plane_rewrite(lost: u64, at in 0u64..1_000_000) {
        let mut e = MonitorEvent::new(
            SimTime::at_cycle(at),
            DetectionCapability::BusPolicing,
            Severity::Warning,
            Subject::Network,
            Detail::BusTapOverflow { lost },
        );
        prop_assert_eq!(
            e.rendered().to_string(),
            format!("bus tap overflow: {lost} records lost")
        );
        e.corrupted = true;
        prop_assert_eq!(
            e.rendered().to_string(),
            format!("[corrupted in transit] bus tap overflow: {lost} records lost")
        );
    }
}

#[test]
fn fieldless_details_render_like_the_old_format_strings() {
    assert_eq!(
        Detail::StuckAt.to_string(),
        "stuck-at: zero variance over window"
    );
    assert_eq!(
        Detail::WatchdogExpired.to_string(),
        "watchdog expired: system unresponsive"
    );
    assert_eq!(Detail::Text("free-form line").to_string(), "free-form line");
}
