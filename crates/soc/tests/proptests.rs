//! Property tests for the SoC substrate: memory/MPU invariants and bus tap
//! completeness.

use cres_sim::SimTime;
use cres_soc::addr::{Addr, AddrRange, BusOp, MasterId, Perms};
use cres_soc::bus::{Bus, TxnCursor};
use cres_soc::mem::MemoryMap;
use proptest::prelude::*;

fn small_map() -> MemoryMap {
    let mut m = MemoryMap::new();
    m.add_region("a", Addr(0x1000), 0x1000, Perms::rw());
    m.add_region("b", Addr(0x4000), 0x1000, Perms::rw());
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn write_then_read_round_trips(
        off in 0u64..0x0F00,
        data in proptest::collection::vec(any::<u8>(), 1..256)
    ) {
        let mut m = small_map();
        let addr = Addr(0x1000 + off.min(0x1000 - data.len() as u64));
        m.write(MasterId::CPU0, addr, &data).unwrap();
        prop_assert_eq!(m.read(MasterId::CPU0, addr, data.len() as u64).unwrap(), data);
    }

    #[test]
    fn revoked_master_never_reads(
        off in 0u64..0x0FF0,
        master_idx in 0usize..4
    ) {
        let mut m = small_map();
        let master = MasterId::cpu(master_idx);
        let region = m.region_by_name("a").unwrap().id();
        m.revoke(master, region);
        prop_assert!(m.read(master, Addr(0x1000 + off), 4).is_err());
        // other region untouched
        prop_assert!(m.read(master, Addr(0x4000), 4).is_ok());
    }

    #[test]
    fn grants_never_exceed_base_perms(
        read: bool, write: bool, exec: bool
    ) {
        let mut m = MemoryMap::new();
        m.add_region("rom", Addr(0), 0x100, Perms::rx());
        let id = m.region_by_name("rom").unwrap().id();
        m.grant(MasterId::CPU0, id, Perms { read, write, exec });
        let eff = m.effective_perms(MasterId::CPU0, id);
        // base is r-x: write can never be granted
        prop_assert!(!eff.write);
        prop_assert!(!eff.read || read);
        prop_assert!(!eff.exec || exec);
    }

    #[test]
    fn range_algebra(start in 0u64..1_000_000, len in 1u64..10_000, probe in 0u64..1_010_000) {
        let r = AddrRange::new(Addr(start), len);
        let inside = probe >= start && probe < start + len;
        prop_assert_eq!(r.contains(Addr(probe)), inside);
        prop_assert!(r.covers(&r));
        prop_assert!(r.overlaps(&r));
    }

    #[test]
    fn bus_cursor_sees_every_admitted_txn_once(ops in proptest::collection::vec((0u64..0x1000, any::<bool>()), 1..200)) {
        let mut m = small_map();
        let mut bus = Bus::new(4096); // big enough: no eviction
        let mut cursor = TxnCursor::default();
        let mut admitted = 0u64;
        for (i, (off, is_write)) in ops.iter().enumerate() {
            let addr = Addr(0x1000 + (off % 0xFF0));
            if *is_write {
                let _ = bus.write(SimTime::at_cycle(i as u64), MasterId::CPU1, addr, &[1, 2], &mut m);
            } else {
                let _ = bus.read(SimTime::at_cycle(i as u64), MasterId::CPU1, addr, 2, &m);
            }
            admitted += 1;
        }
        let (records, lost) = bus.poll(&mut cursor);
        prop_assert_eq!(lost, 0);
        prop_assert_eq!(records.len() as u64, admitted);
        // sequence numbers dense and increasing
        for (i, r) in records.iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64);
        }
        // nothing seen twice
        let (again, _) = bus.poll(&mut cursor);
        prop_assert!(again.is_empty());
    }

    #[test]
    fn gated_master_admits_nothing(ops in 1usize..50) {
        let mut m = small_map();
        let mut bus = Bus::new(64);
        bus.gate(MasterId::DMA);
        for i in 0..ops {
            let r = bus.read(SimTime::at_cycle(i as u64), MasterId::DMA, Addr(0x1000), 4, &m);
            prop_assert!(r.is_err());
        }
        prop_assert_eq!(bus.stats(MasterId::DMA).granted, 0);
        prop_assert_eq!(bus.stats(MasterId::DMA).denied, ops as u64);
        let _ = &mut m;
    }

    #[test]
    fn mpu_check_agrees_with_read_write(
        off in 0u64..0x1100,
        len in 0u64..64,
        w: bool
    ) {
        let mut m = small_map();
        let addr = Addr(0x1000 + off);
        let op = if w { BusOp::Write } else { BusOp::Read };
        let checked = m.check(MasterId::CPU2, op, addr, len).is_ok();
        let actual = if w {
            m.write(MasterId::CPU2, addr, &vec![0u8; len as usize]).is_ok()
        } else {
            m.read(MasterId::CPU2, addr, len).is_ok()
        };
        prop_assert_eq!(checked, actual);
    }
}
