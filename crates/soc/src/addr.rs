//! Physical addressing, bus masters and permission flags.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A physical address on the SoC interconnect.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(pub u64);

impl Addr {
    /// Offsets the address by `delta` bytes.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    pub fn offset(self, delta: u64) -> Addr {
        Addr(self.0.checked_add(delta).expect("address overflow"))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A half-open physical address range `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddrRange {
    /// First address in the range.
    pub start: Addr,
    /// Length in bytes.
    pub len: u64,
}

impl AddrRange {
    /// Creates a range; `len` may be zero (an empty range contains nothing).
    pub fn new(start: Addr, len: u64) -> Self {
        start.0.checked_add(len).expect("address range overflow");
        AddrRange { start, len }
    }

    /// One-past-the-end address.
    pub fn end(&self) -> Addr {
        Addr(self.start.0 + self.len)
    }

    /// True when `a` lies inside the range.
    pub fn contains(&self, a: Addr) -> bool {
        a >= self.start && a.0 < self.start.0 + self.len
    }

    /// True when the two ranges share at least one address.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        self.start.0 < other.end().0 && other.start.0 < self.end().0
    }

    /// True when `other` lies entirely inside `self`.
    pub fn covers(&self, other: &AddrRange) -> bool {
        other.start >= self.start && other.end().0 <= self.end().0
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end())
    }
}

/// A bus master: anything that can originate transactions.
///
/// The set is fixed at the architectural level (matching the paper's SoC
/// sketch): four application cores, the isolated security manager core, a
/// DMA engine, the NIC's bus-mastering port and an external debug port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MasterId {
    /// Application core 0 (runs the rich OS / primary workload).
    CPU0,
    /// Application core 1.
    CPU1,
    /// Application core 2.
    CPU2,
    /// Application core 3.
    CPU3,
    /// The independent security manager's private core (the paper's SSM).
    SSM,
    /// The DMA engine.
    DMA,
    /// The network interface's bus-master port.
    NIC,
    /// External debug access port (JTAG/SWD-class).
    DEBUG,
}

impl MasterId {
    /// All masters, in a stable order.
    pub const ALL: [MasterId; 8] = [
        MasterId::CPU0,
        MasterId::CPU1,
        MasterId::CPU2,
        MasterId::CPU3,
        MasterId::SSM,
        MasterId::DMA,
        MasterId::NIC,
        MasterId::DEBUG,
    ];

    /// Returns the application core with the given index (0..=3).
    ///
    /// # Panics
    ///
    /// Panics for indices above 3.
    pub fn cpu(idx: usize) -> MasterId {
        match idx {
            0 => MasterId::CPU0,
            1 => MasterId::CPU1,
            2 => MasterId::CPU2,
            3 => MasterId::CPU3,
            _ => panic!("no such application core: {idx}"),
        }
    }

    /// True for the application cores (not SSM/DMA/NIC/DEBUG).
    pub fn is_app_core(self) -> bool {
        matches!(
            self,
            MasterId::CPU0 | MasterId::CPU1 | MasterId::CPU2 | MasterId::CPU3
        )
    }
}

impl fmt::Display for MasterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifier of a memory region in the memory map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u32);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region#{}", self.0)
    }
}

/// The kind of bus operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BusOp {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Exec,
}

impl fmt::Display for BusOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusOp::Read => write!(f, "R"),
            BusOp::Write => write!(f, "W"),
            BusOp::Exec => write!(f, "X"),
        }
    }
}

/// Read/write/execute permission flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Perms {
    /// Reads allowed.
    pub read: bool,
    /// Writes allowed.
    pub write: bool,
    /// Instruction fetches allowed.
    pub exec: bool,
}

impl Perms {
    /// No access.
    pub const NONE: Perms = Perms {
        read: false,
        write: false,
        exec: false,
    };

    /// Read-only.
    pub fn ro() -> Perms {
        Perms {
            read: true,
            write: false,
            exec: false,
        }
    }

    /// Read-write.
    pub fn rw() -> Perms {
        Perms {
            read: true,
            write: true,
            exec: false,
        }
    }

    /// Read-execute (typical flash/code region).
    pub fn rx() -> Perms {
        Perms {
            read: true,
            write: false,
            exec: true,
        }
    }

    /// Read-write-execute.
    pub fn rwx() -> Perms {
        Perms {
            read: true,
            write: true,
            exec: true,
        }
    }

    /// True when `op` is permitted.
    pub fn allows(self, op: BusOp) -> bool {
        match op {
            BusOp::Read => self.read,
            BusOp::Write => self.write,
            BusOp::Exec => self.exec,
        }
    }

    /// Intersection of two permission sets.
    pub fn intersect(self, other: Perms) -> Perms {
        Perms {
            read: self.read && other.read,
            write: self.write && other.write,
            exec: self.exec && other.exec,
        }
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.exec { 'x' } else { '-' }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_display_and_offset() {
        assert_eq!(Addr(0x1000).to_string(), "0x00001000");
        assert_eq!(Addr(0x1000).offset(0x10), Addr(0x1010));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn addr_offset_overflow_panics() {
        Addr(u64::MAX).offset(1);
    }

    #[test]
    fn range_contains_and_end() {
        let r = AddrRange::new(Addr(100), 10);
        assert!(r.contains(Addr(100)));
        assert!(r.contains(Addr(109)));
        assert!(!r.contains(Addr(110)));
        assert!(!r.contains(Addr(99)));
        assert_eq!(r.end(), Addr(110));
    }

    #[test]
    fn empty_range_contains_nothing() {
        let r = AddrRange::new(Addr(5), 0);
        assert!(!r.contains(Addr(5)));
    }

    #[test]
    fn range_overlap() {
        let a = AddrRange::new(Addr(0), 10);
        let b = AddrRange::new(Addr(9), 5);
        let c = AddrRange::new(Addr(10), 5);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn range_covers() {
        let outer = AddrRange::new(Addr(0), 100);
        let inner = AddrRange::new(Addr(10), 20);
        assert!(outer.covers(&inner));
        assert!(!inner.covers(&outer));
        assert!(outer.covers(&outer));
    }

    #[test]
    fn master_classification() {
        assert!(MasterId::CPU0.is_app_core());
        assert!(!MasterId::SSM.is_app_core());
        assert!(!MasterId::DMA.is_app_core());
        assert_eq!(MasterId::cpu(2), MasterId::CPU2);
        assert_eq!(MasterId::ALL.len(), 8);
    }

    #[test]
    #[should_panic(expected = "no such application core")]
    fn bad_cpu_index_panics() {
        MasterId::cpu(4);
    }

    #[test]
    fn perms_allow() {
        assert!(Perms::ro().allows(BusOp::Read));
        assert!(!Perms::ro().allows(BusOp::Write));
        assert!(Perms::rx().allows(BusOp::Exec));
        assert!(!Perms::rw().allows(BusOp::Exec));
        assert!(Perms::rwx().allows(BusOp::Write));
        assert!(!Perms::NONE.allows(BusOp::Read));
    }

    #[test]
    fn perms_intersect() {
        let p = Perms::rwx().intersect(Perms::ro());
        assert!(p.read && !p.write && !p.exec);
    }

    #[test]
    fn perms_display() {
        assert_eq!(Perms::rw().to_string(), "rw-");
        assert_eq!(Perms::NONE.to_string(), "---");
        assert_eq!(Perms::rx().to_string(), "r-x");
    }
}
