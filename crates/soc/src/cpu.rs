//! Processing elements: application cores and their run states.
//!
//! Cores are bookkeeping objects — task execution lives in
//! [`crate::task`] — but their run state matters to the response manager:
//! halting a core is a coarse countermeasure, and the *reset* state models
//! the passive baseline's reboot behaviour (the core is dark for the reset
//! latency, which is exactly the availability cost E4 measures).

use crate::addr::MasterId;
use crate::task::TaskId;
use cres_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Run state of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoreState {
    /// Executing tasks.
    Running,
    /// Halted by a countermeasure; tasks make no progress.
    Halted,
    /// In reset until the contained time; tasks make no progress.
    InReset {
        /// When the reset sequence completes.
        until: SimTime,
    },
}

/// One application core.
#[derive(Debug, Clone)]
pub struct Core {
    master: MasterId,
    state: CoreState,
    tasks: Vec<TaskId>,
    resets: u32,
}

impl Core {
    /// Creates a running core for the given bus master.
    ///
    /// # Panics
    ///
    /// Panics if `master` is not an application core.
    pub fn new(master: MasterId) -> Self {
        assert!(master.is_app_core(), "{master} is not an application core");
        Core {
            master,
            state: CoreState::Running,
            tasks: Vec::new(),
            resets: 0,
        }
    }

    /// The bus master identity of this core.
    pub fn master(&self) -> MasterId {
        self.master
    }

    /// Current run state, resolving an elapsed reset back to running.
    pub fn state_at(&self, now: SimTime) -> CoreState {
        match self.state {
            CoreState::InReset { until } if now >= until => CoreState::Running,
            s => s,
        }
    }

    /// True when the core can execute at `now`.
    pub fn is_running(&self, now: SimTime) -> bool {
        self.state_at(now) == CoreState::Running
    }

    /// Assigns a task to this core.
    pub fn assign(&mut self, task: TaskId) {
        if !self.tasks.contains(&task) {
            self.tasks.push(task);
        }
    }

    /// Removes a task from this core.
    pub fn unassign(&mut self, task: TaskId) {
        self.tasks.retain(|t| *t != task);
    }

    /// Tasks assigned to this core.
    pub fn tasks(&self) -> &[TaskId] {
        &self.tasks
    }

    /// Halts the core.
    pub fn halt(&mut self) {
        self.state = CoreState::Halted;
    }

    /// Resumes a halted core. A core in reset stays in reset.
    pub fn resume(&mut self, now: SimTime) {
        if self.state_at(now) == CoreState::Halted || self.state == CoreState::Halted {
            self.state = CoreState::Running;
        }
    }

    /// Puts the core into reset for `duration` starting at `now`.
    pub fn reset(&mut self, now: SimTime, duration: SimDuration) {
        self.state = CoreState::InReset {
            until: now + duration,
        };
        self.resets += 1;
    }

    /// Number of resets this core has undergone.
    pub fn reset_count(&self) -> u32 {
        self.resets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_core_runs() {
        let c = Core::new(MasterId::CPU0);
        assert!(c.is_running(SimTime::ZERO));
        assert_eq!(c.master(), MasterId::CPU0);
    }

    #[test]
    #[should_panic(expected = "not an application core")]
    fn non_app_core_panics() {
        Core::new(MasterId::DMA);
    }

    #[test]
    fn halt_and_resume() {
        let mut c = Core::new(MasterId::CPU1);
        c.halt();
        assert!(!c.is_running(SimTime::ZERO));
        c.resume(SimTime::ZERO);
        assert!(c.is_running(SimTime::ZERO));
    }

    #[test]
    fn reset_expires_with_time() {
        let mut c = Core::new(MasterId::CPU0);
        c.reset(SimTime::at_cycle(100), SimDuration::cycles(50));
        assert!(!c.is_running(SimTime::at_cycle(120)));
        assert!(c.is_running(SimTime::at_cycle(150)));
        assert_eq!(c.reset_count(), 1);
    }

    #[test]
    fn resume_does_not_cancel_reset() {
        let mut c = Core::new(MasterId::CPU0);
        c.reset(SimTime::ZERO, SimDuration::cycles(100));
        c.resume(SimTime::at_cycle(10));
        assert!(!c.is_running(SimTime::at_cycle(10)));
        assert!(c.is_running(SimTime::at_cycle(100)));
    }

    #[test]
    fn task_assignment() {
        let mut c = Core::new(MasterId::CPU2);
        c.assign(TaskId(1));
        c.assign(TaskId(2));
        c.assign(TaskId(1)); // duplicate ignored
        assert_eq!(c.tasks(), &[TaskId(1), TaskId(2)]);
        c.unassign(TaskId(1));
        assert_eq!(c.tasks(), &[TaskId(2)]);
    }
}
