//! The assembled system-on-chip and its builder.
//!
//! [`Soc`] owns the memory map, the interconnect, four application cores,
//! the peripheral set and the task table. It exposes a *standard layout*
//! (see [`layout`]) that the boot, TEE, monitor and platform crates all
//! reference by name, so isolation configuration lives in one place.

use crate::addr::{Addr, MasterId, Perms};
use crate::bus::Bus;
use crate::cpu::Core;
use crate::mem::MemoryMap;
use crate::periph::{
    Actuator, DmaEngine, EnvSensors, IrqController, IrqLine, Nic, OtpFuses, Packet, Sensor, Uart,
    Watchdog,
};
use crate::task::{StepOutcome, Task, TaskId};
use cres_sim::{DetRng, SimDuration, SimTime};
use std::collections::HashMap;

/// The standard memory layout used across the workspace.
pub mod layout {
    use crate::addr::Addr;

    /// Immutable boot ROM (first-stage loader + root key fingerprint).
    pub const BOOT_ROM: (Addr, u64) = (Addr(0x0000_0000), 0x1_0000);
    /// Firmware slot A.
    pub const FLASH_A: (Addr, u64) = (Addr(0x0800_0000), 0x4_0000);
    /// Firmware slot B.
    pub const FLASH_B: (Addr, u64) = (Addr(0x0880_0000), 0x4_0000);
    /// Golden recovery image (factory programmed).
    pub const FLASH_GOLD: (Addr, u64) = (Addr(0x0900_0000), 0x4_0000);
    /// General-purpose SRAM.
    pub const SRAM: (Addr, u64) = (Addr(0x2000_0000), 0x4_0000);
    /// Application log buffer (the baseline's only audit trail).
    pub const APP_LOG: (Addr, u64) = (Addr(0x2100_0000), 0x1_0000);
    /// TEE secure-world memory.
    pub const TEE_SECURE: (Addr, u64) = (Addr(0x3000_0000), 0x1_0000);
    /// Peripheral MMIO window.
    pub const PERIPH: (Addr, u64) = (Addr(0x4000_0000), 0x1_0000);
    /// The SSM's physically private memory.
    pub const SSM_PRIVATE: (Addr, u64) = (Addr(0x5000_0000), 0x1_0000);
}

/// The simulated SoC.
#[derive(Debug, Clone)]
pub struct Soc {
    /// Memory map + permission matrix (public: the whole workspace
    /// coordinates isolation through it).
    pub mem: MemoryMap,
    /// The interconnect.
    pub bus: Bus,
    /// The four application cores.
    pub cores: Vec<Core>,
    /// Console UART.
    pub uart: Uart,
    /// Network interface.
    pub nic: Nic,
    /// Physical sensors by name order of registration.
    pub sensors: Vec<Sensor>,
    /// Actuators by registration order.
    pub actuators: Vec<Actuator>,
    /// Hardware watchdog.
    pub watchdog: Watchdog,
    /// Environmental sensor block.
    pub env: EnvSensors,
    /// OTP fuse bank.
    pub otp: OtpFuses,
    /// DMA engine.
    pub dma: DmaEngine,
    /// Interrupt controller.
    pub irq: IrqController,
    tasks: HashMap<TaskId, Task>,
    task_core: HashMap<TaskId, usize>,
    rng: DetRng,
}

impl Soc {
    /// Adds a task and assigns it to application core `core_idx`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate task id or bad core index.
    pub fn add_task(&mut self, task: Task, core_idx: usize) {
        assert!(core_idx < self.cores.len(), "no core {core_idx}");
        assert!(
            !self.tasks.contains_key(&task.id()),
            "duplicate task {}",
            task.id()
        );
        self.cores[core_idx].assign(task.id());
        self.task_core.insert(task.id(), core_idx);
        self.tasks.insert(task.id(), task);
    }

    /// Looks up a task.
    pub fn task(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(&id)
    }

    /// Mutable task access (countermeasures and attack injectors).
    pub fn task_mut(&mut self, id: TaskId) -> Option<&mut Task> {
        self.tasks.get_mut(&id)
    }

    /// All task ids in insertion-independent sorted order.
    pub fn task_ids(&self) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = self.tasks.keys().copied().collect();
        ids.sort();
        ids
    }

    /// The core index a task runs on.
    pub fn core_of(&self, id: TaskId) -> Option<usize> {
        self.task_core.get(&id).copied()
    }

    /// Steps a task: returns `None` when the task or its core cannot run at
    /// `now` (halted, in reset, suspended, killed).
    pub fn step_task(&mut self, id: TaskId, now: SimTime) -> Option<StepOutcome> {
        let core_idx = *self.task_core.get(&id)?;
        if !self.cores[core_idx].is_running(now) {
            return None;
        }
        let master = self.cores[core_idx].master();
        let task = self.tasks.get_mut(&id)?;
        task.step(now, master, &mut self.bus, &mut self.mem, &mut self.rng)
    }

    /// Reads sensor `idx` at `now` (uses the SoC's deterministic RNG for
    /// measurement noise).
    ///
    /// # Panics
    ///
    /// Panics for an unknown sensor index.
    pub fn read_sensor(&mut self, idx: usize, now: SimTime) -> f64 {
        let s = &mut self.sensors[idx];
        s.read(now, &mut self.rng)
    }

    /// Samples the environmental block at `now`.
    pub fn read_env(&mut self, now: SimTime) -> crate::periph::EnvReading {
        self.env.sample(now, &mut self.rng)
    }

    /// Forks a deterministic RNG stream off the SoC's root stream.
    pub fn fork_rng(&mut self, tag: &str) -> DetRng {
        self.rng.fork(tag)
    }

    /// Delivers an inbound packet through the NIC, raising the RX interrupt
    /// when it is accepted. This is the front door network traffic should
    /// use; writing to `nic` directly bypasses the interrupt path.
    pub fn deliver_packet(&mut self, packet: Packet) -> bool {
        let accepted = self.nic.deliver(packet);
        if accepted {
            self.irq.raise(IrqLine::NicRx);
        }
        accepted
    }

    /// Resets every application core for `duration` — the baseline's
    /// "reboot the system" response.
    pub fn reboot_all_cores(&mut self, now: SimTime, duration: SimDuration) {
        for c in &mut self.cores {
            c.reset(now, duration);
        }
    }
}

/// Builder for [`Soc`].
///
/// # Example
///
/// ```
/// use cres_soc::soc::SocBuilder;
/// let soc = SocBuilder::with_standard_layout(42).build();
/// assert!(soc.mem.region_by_name("ssm_private").is_some());
/// assert_eq!(soc.cores.len(), 4);
/// ```
#[derive(Debug)]
pub struct SocBuilder {
    regions: Vec<(String, Addr, u64, Perms)>,
    sensors: Vec<Sensor>,
    actuators: Vec<Actuator>,
    watchdog_timeout: SimDuration,
    bus_ring: usize,
    seed: u64,
}

impl Default for SocBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SocBuilder {
    /// Starts an empty builder (no regions).
    pub fn new() -> Self {
        SocBuilder {
            regions: Vec::new(),
            sensors: Vec::new(),
            actuators: Vec::new(),
            watchdog_timeout: SimDuration::cycles(1_000_000),
            bus_ring: 8192,
            seed: 0,
        }
    }

    /// Starts a builder pre-populated with the [`layout`] regions and their
    /// architectural permissions.
    pub fn with_standard_layout(seed: u64) -> Self {
        let mut b = SocBuilder::new().seed(seed);
        b = b
            .region(
                "boot_rom",
                layout::BOOT_ROM.0,
                layout::BOOT_ROM.1,
                Perms::rx(),
            )
            .region(
                "flash_a",
                layout::FLASH_A.0,
                layout::FLASH_A.1,
                Perms::rwx(),
            )
            .region(
                "flash_b",
                layout::FLASH_B.0,
                layout::FLASH_B.1,
                Perms::rwx(),
            )
            .region(
                "flash_gold",
                layout::FLASH_GOLD.0,
                layout::FLASH_GOLD.1,
                Perms::rx(),
            )
            .region("sram", layout::SRAM.0, layout::SRAM.1, Perms::rwx())
            .region("app_log", layout::APP_LOG.0, layout::APP_LOG.1, Perms::rw())
            .region(
                "tee_secure",
                layout::TEE_SECURE.0,
                layout::TEE_SECURE.1,
                Perms::rwx(),
            )
            .region("periph", layout::PERIPH.0, layout::PERIPH.1, Perms::rw())
            .region(
                "ssm_private",
                layout::SSM_PRIVATE.0,
                layout::SSM_PRIVATE.1,
                Perms::rwx(),
            );
        b
    }

    /// Sets the deterministic seed for SoC-internal randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a memory region.
    pub fn region(mut self, name: &str, base: Addr, len: u64, perms: Perms) -> Self {
        self.regions.push((name.to_string(), base, len, perms));
        self
    }

    /// Adds a sensor.
    pub fn sensor(mut self, sensor: Sensor) -> Self {
        self.sensors.push(sensor);
        self
    }

    /// Adds an actuator.
    pub fn actuator(mut self, actuator: Actuator) -> Self {
        self.actuators.push(actuator);
        self
    }

    /// Sets the watchdog timeout.
    pub fn watchdog_timeout(mut self, timeout: SimDuration) -> Self {
        self.watchdog_timeout = timeout;
        self
    }

    /// Sets the bus tap ring capacity.
    pub fn bus_ring(mut self, capacity: usize) -> Self {
        self.bus_ring = capacity;
        self
    }

    /// Builds the SoC.
    pub fn build(self) -> Soc {
        let mut mem = MemoryMap::new();
        for (name, base, len, perms) in &self.regions {
            mem.add_region(name, *base, *len, *perms);
        }
        Soc {
            mem,
            bus: Bus::new(self.bus_ring),
            cores: vec![
                Core::new(MasterId::CPU0),
                Core::new(MasterId::CPU1),
                Core::new(MasterId::CPU2),
                Core::new(MasterId::CPU3),
            ],
            uart: Uart::default(),
            nic: Nic::default(),
            sensors: self.sensors,
            actuators: self.actuators,
            watchdog: Watchdog::new(self.watchdog_timeout),
            env: EnvSensors::default(),
            otp: OtpFuses::new(),
            dma: DmaEngine::new(),
            irq: IrqController::new(),
            tasks: HashMap::new(),
            task_core: HashMap::new(),
            rng: DetRng::seed_from(self.seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{control_loop_program, Criticality, Task, TaskId};

    fn soc_with_task() -> Soc {
        let mut soc = SocBuilder::with_standard_layout(7).build();
        let program = control_loop_program(layout::FLASH_A.0, layout::SRAM.0, layout::PERIPH.0);
        soc.add_task(
            Task::new(TaskId(1), "ctrl", program, Criticality::Critical),
            0,
        );
        soc
    }

    #[test]
    fn standard_layout_has_all_regions() {
        let soc = SocBuilder::with_standard_layout(0).build();
        for name in [
            "boot_rom",
            "flash_a",
            "flash_b",
            "flash_gold",
            "sram",
            "app_log",
            "tee_secure",
            "periph",
            "ssm_private",
        ] {
            assert!(soc.mem.region_by_name(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn task_steps_and_produces_traffic() {
        let mut soc = soc_with_task();
        let out = soc.step_task(TaskId(1), SimTime::ZERO).unwrap();
        assert!(!out.next_delay.is_zero());
        assert!(soc.bus.total_transactions() > 0);
    }

    #[test]
    fn halted_core_stops_its_tasks() {
        let mut soc = soc_with_task();
        soc.cores[0].halt();
        assert!(soc.step_task(TaskId(1), SimTime::ZERO).is_none());
        soc.cores[0].resume(SimTime::ZERO);
        assert!(soc.step_task(TaskId(1), SimTime::ZERO).is_some());
    }

    #[test]
    fn reboot_darkens_all_cores_until_deadline() {
        let mut soc = soc_with_task();
        soc.reboot_all_cores(SimTime::ZERO, SimDuration::cycles(500));
        assert!(soc.step_task(TaskId(1), SimTime::at_cycle(100)).is_none());
        assert!(soc.step_task(TaskId(1), SimTime::at_cycle(500)).is_some());
    }

    #[test]
    #[should_panic(expected = "duplicate task")]
    fn duplicate_task_panics() {
        let mut soc = soc_with_task();
        let p = control_loop_program(layout::FLASH_A.0, layout::SRAM.0, layout::PERIPH.0);
        soc.add_task(Task::new(TaskId(1), "dup", p, Criticality::BestEffort), 1);
    }

    #[test]
    fn unknown_task_is_none() {
        let mut soc = SocBuilder::with_standard_layout(0).build();
        assert!(soc.step_task(TaskId(99), SimTime::ZERO).is_none());
        assert!(soc.task(TaskId(99)).is_none());
        assert!(soc.core_of(TaskId(99)).is_none());
    }

    #[test]
    fn task_ids_sorted() {
        let mut soc = SocBuilder::with_standard_layout(0).build();
        for id in [5u32, 1, 3] {
            let p = control_loop_program(layout::FLASH_A.0, layout::SRAM.0, layout::PERIPH.0);
            soc.add_task(Task::new(TaskId(id), "t", p, Criticality::BestEffort), 0);
        }
        assert_eq!(soc.task_ids(), vec![TaskId(1), TaskId(3), TaskId(5)]);
    }

    #[test]
    fn sensors_and_env_readable_via_soc() {
        let mut soc = SocBuilder::with_standard_layout(1)
            .sensor(Sensor::new("temp", 20.0, 1.0, 1000, 0.1))
            .build();
        let v = soc.read_sensor(0, SimTime::ZERO);
        assert!((v - 20.0).abs() < 2.0);
        let env = soc.read_env(SimTime::ZERO);
        assert!((env.voltage - 3.3).abs() < 0.2);
    }

    #[test]
    fn packet_delivery_raises_nic_irq() {
        use crate::periph::{IrqLine, PacketKind};
        let mut soc = SocBuilder::with_standard_layout(0).build();
        assert!(!soc.irq.is_pending(IrqLine::NicRx));
        soc.deliver_packet(crate::periph::Packet {
            src: 1,
            dst: 2,
            len: 64,
            kind: PacketKind::Command,
            at: SimTime::ZERO,
        });
        assert!(soc.irq.is_pending(IrqLine::NicRx));
        soc.irq.acknowledge(IrqLine::NicRx);
        // quarantined NIC drops the packet: no interrupt
        soc.nic.quarantine();
        soc.deliver_packet(crate::periph::Packet {
            src: 1,
            dst: 2,
            len: 64,
            kind: PacketKind::Command,
            at: SimTime::ZERO,
        });
        assert!(!soc.irq.is_pending(IrqLine::NicRx));
    }

    #[test]
    fn same_seed_same_behaviour() {
        let run = |seed: u64| {
            let mut soc = SocBuilder::with_standard_layout(seed)
                .sensor(Sensor::new("s", 1.0, 0.5, 100, 0.05))
                .build();
            (0..50)
                .map(|i| soc.read_sensor(0, SimTime::at_cycle(i)))
                .collect::<Vec<f64>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
