//! The SoC interconnect: checked transactions, a monitor tap and gating.
//!
//! Every transaction — granted or denied — leaves a [`TxnRecord`] in the
//! bus's bounded tap ring. Resource monitors sample the ring through a
//! [`TxnCursor`], which models a hardware bus probe: the monitor sees
//! transaction metadata, never payloads, and a slow monitor loses old
//! records (counted, so overload is observable rather than silent).
//!
//! Gating a master models the response manager's strongest countermeasure:
//! physically disconnecting a compromised bus master from the interconnect.

use crate::addr::{Addr, BusOp, MasterId, RegionId};
use crate::mem::{MemError, MemoryMap};
use cres_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Why a bus transaction failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BusError {
    /// The master has been gated off the interconnect.
    MasterGated(MasterId),
    /// The MPU denied the access.
    PermissionDenied,
    /// No memory is mapped at the target address.
    Unmapped,
    /// The access crossed a region boundary.
    OutOfBounds,
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::MasterGated(m) => write!(f, "master {m} is gated"),
            BusError::PermissionDenied => write!(f, "permission denied"),
            BusError::Unmapped => write!(f, "unmapped address"),
            BusError::OutOfBounds => write!(f, "out of bounds"),
        }
    }
}

impl std::error::Error for BusError {}

impl From<MemError> for BusError {
    fn from(e: MemError) -> Self {
        match e {
            MemError::Unmapped(_) => BusError::Unmapped,
            MemError::OutOfBounds(_) => BusError::OutOfBounds,
            MemError::Denied { .. } => BusError::PermissionDenied,
        }
    }
}

/// Outcome recorded in the tap ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnOutcome {
    /// The transaction completed.
    Granted,
    /// The transaction was rejected.
    Denied(BusError),
}

impl TxnOutcome {
    /// True when the transaction completed.
    pub fn is_granted(self) -> bool {
        matches!(self, TxnOutcome::Granted)
    }
}

/// Metadata of one bus transaction, as seen by a hardware probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnRecord {
    /// Monotone sequence number (never reused, survives ring eviction).
    pub seq: u64,
    /// When the transaction occurred.
    pub at: SimTime,
    /// Originating master.
    pub master: MasterId,
    /// Operation kind.
    pub op: BusOp,
    /// Target address.
    pub addr: Addr,
    /// Transfer length in bytes.
    pub len: u64,
    /// Region hit, when the address was mapped.
    pub region: Option<RegionId>,
    /// Granted or denied.
    pub outcome: TxnOutcome,
}

/// A monitor's read position in the tap ring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnCursor {
    next_seq: u64,
}

/// Aggregate per-master counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MasterStats {
    /// Granted transactions.
    pub granted: u64,
    /// Denied transactions.
    pub denied: u64,
    /// Total bytes transferred in granted transactions.
    pub bytes: u64,
}

/// The bus interconnect.
#[derive(Debug, Clone)]
pub struct Bus {
    ring: VecDeque<TxnRecord>,
    ring_capacity: usize,
    next_seq: u64,
    evicted: u64,
    gated: HashSet<MasterId>,
    stats: HashMap<MasterId, MasterStats>,
    /// Fixed per-transaction latency plus per-8-bytes beat cost, in cycles.
    base_latency: u64,
}

impl Default for Bus {
    fn default() -> Self {
        Self::new(4096)
    }
}

impl Bus {
    /// Creates a bus whose tap ring holds `ring_capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `ring_capacity` is zero.
    pub fn new(ring_capacity: usize) -> Self {
        assert!(ring_capacity > 0, "tap ring capacity must be non-zero");
        Bus {
            ring: VecDeque::with_capacity(ring_capacity),
            ring_capacity,
            next_seq: 0,
            evicted: 0,
            gated: HashSet::new(),
            stats: HashMap::new(),
            base_latency: 4,
        }
    }

    /// Gates `master` off the interconnect (all its transactions fail).
    pub fn gate(&mut self, master: MasterId) {
        self.gated.insert(master);
    }

    /// Restores a gated master.
    pub fn ungate(&mut self, master: MasterId) {
        self.gated.remove(&master);
    }

    /// True when `master` is gated.
    pub fn is_gated(&self, master: MasterId) -> bool {
        self.gated.contains(&master)
    }

    /// All currently gated masters.
    pub fn gated_masters(&self) -> impl Iterator<Item = MasterId> + '_ {
        self.gated.iter().copied()
    }

    /// Performs a checked read through the interconnect.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] when gated or when the MPU rejects the access.
    pub fn read(
        &mut self,
        at: SimTime,
        master: MasterId,
        addr: Addr,
        len: u64,
        mem: &MemoryMap,
    ) -> Result<Vec<u8>, BusError> {
        self.admit(at, master, BusOp::Read, addr, len, mem)?;
        let data = mem
            .read(master, addr, len)
            .expect("admitted read must succeed");
        Ok(data)
    }

    /// Performs a checked write through the interconnect.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] when gated or when the MPU rejects the access.
    pub fn write(
        &mut self,
        at: SimTime,
        master: MasterId,
        addr: Addr,
        data: &[u8],
        mem: &mut MemoryMap,
    ) -> Result<(), BusError> {
        self.admit(at, master, BusOp::Write, addr, data.len() as u64, mem)?;
        mem.write(master, addr, data)
            .expect("admitted write must succeed");
        Ok(())
    }

    /// Performs an instruction-fetch check (no data is returned; the task
    /// model only needs the permission/telemetry side).
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] when gated or when the MPU rejects the fetch.
    pub fn fetch(
        &mut self,
        at: SimTime,
        master: MasterId,
        addr: Addr,
        len: u64,
        mem: &MemoryMap,
    ) -> Result<(), BusError> {
        self.admit(at, master, BusOp::Exec, addr, len, mem)
    }

    /// Common admission path: gate check, MPU check, record, account.
    fn admit(
        &mut self,
        at: SimTime,
        master: MasterId,
        op: BusOp,
        addr: Addr,
        len: u64,
        mem: &MemoryMap,
    ) -> Result<(), BusError> {
        let region = mem.region_at(addr).map(|r| r.id());
        let result: Result<(), BusError> = if self.gated.contains(&master) {
            Err(BusError::MasterGated(master))
        } else {
            mem.check(master, op, addr, len)
                .map(|_| ())
                .map_err(BusError::from)
        };
        let outcome = match &result {
            Ok(()) => TxnOutcome::Granted,
            Err(e) => TxnOutcome::Denied(*e),
        };
        self.record(TxnRecord {
            seq: 0, // assigned in record()
            at,
            master,
            op,
            addr,
            len,
            region,
            outcome,
        });
        let stats = self.stats.entry(master).or_default();
        match &result {
            Ok(()) => {
                stats.granted += 1;
                stats.bytes += len;
            }
            Err(_) => stats.denied += 1,
        }
        result
    }

    fn record(&mut self, mut rec: TxnRecord) {
        rec.seq = self.next_seq;
        self.next_seq += 1;
        if self.ring.len() == self.ring_capacity {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(rec);
    }

    /// Transaction latency in cycles for a transfer of `len` bytes.
    pub fn latency_for(&self, len: u64) -> u64 {
        self.base_latency + len.div_ceil(8)
    }

    /// Returns all records the cursor has not yet seen and advances it.
    /// Records evicted before the cursor reached them are lost; the second
    /// tuple element counts such losses.
    pub fn poll(&self, cursor: &mut TxnCursor) -> (Vec<TxnRecord>, u64) {
        let (iter, lost) = self.poll_iter(cursor);
        (iter.copied().collect(), lost)
    }

    /// Allocation-free [`Bus::poll`]: yields borrowed records straight out
    /// of the tap ring. Sequence numbers are contiguous in the ring, so the
    /// unseen suffix is a single `O(1)` range rather than a filtered scan.
    pub fn poll_iter(
        &self,
        cursor: &mut TxnCursor,
    ) -> (impl Iterator<Item = &TxnRecord> + '_, u64) {
        let oldest = self.ring.front().map_or(self.next_seq, |r| r.seq);
        let lost = oldest.saturating_sub(cursor.next_seq);
        let from = cursor.next_seq.max(oldest);
        let start = (self.ring.len() as u64).min(from - oldest) as usize;
        cursor.next_seq = self.next_seq;
        (self.ring.range(start..), lost)
    }

    /// Aggregate counters for a master.
    pub fn stats(&self, master: MasterId) -> MasterStats {
        self.stats.get(&master).copied().unwrap_or_default()
    }

    /// Total transactions admitted (granted + denied) since construction.
    pub fn total_transactions(&self) -> u64 {
        self.next_seq
    }

    /// Records evicted from the ring before any cursor saw them.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Perms;

    fn setup() -> (Bus, MemoryMap) {
        let mut mem = MemoryMap::new();
        mem.add_region("sram", Addr(0x1000), 0x1000, Perms::rw());
        mem.add_region("rom", Addr(0x8000), 0x1000, Perms::rx());
        (Bus::new(16), mem)
    }

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    #[test]
    fn write_then_read_round_trips() {
        let (mut bus, mut mem) = setup();
        bus.write(t0(), MasterId::CPU0, Addr(0x1010), &[9, 8, 7], &mut mem)
            .unwrap();
        let data = bus
            .read(t0(), MasterId::CPU0, Addr(0x1010), 3, &mem)
            .unwrap();
        assert_eq!(data, vec![9, 8, 7]);
    }

    #[test]
    fn denied_write_is_recorded_but_not_applied() {
        let (mut bus, mut mem) = setup();
        let r = bus.write(t0(), MasterId::CPU0, Addr(0x8000), &[1], &mut mem);
        assert_eq!(r, Err(BusError::PermissionDenied));
        let mut cur = TxnCursor::default();
        let (recs, _) = bus.poll(&mut cur);
        assert_eq!(recs.len(), 1);
        assert!(matches!(
            recs[0].outcome,
            TxnOutcome::Denied(BusError::PermissionDenied)
        ));
        assert_eq!(mem.read_unchecked(Addr(0x8000), 1), vec![0]);
    }

    #[test]
    fn gated_master_fails_everything() {
        let (mut bus, mut mem) = setup();
        bus.gate(MasterId::DMA);
        assert!(bus.is_gated(MasterId::DMA));
        let r = bus.read(t0(), MasterId::DMA, Addr(0x1000), 4, &mem);
        assert_eq!(r, Err(BusError::MasterGated(MasterId::DMA)));
        // other masters unaffected
        assert!(bus
            .write(t0(), MasterId::CPU0, Addr(0x1000), &[1], &mut mem)
            .is_ok());
        bus.ungate(MasterId::DMA);
        assert!(bus.read(t0(), MasterId::DMA, Addr(0x1000), 4, &mem).is_ok());
    }

    #[test]
    fn cursor_sees_each_record_once() {
        let (mut bus, mem) = setup();
        let mut cur = TxnCursor::default();
        for i in 0..5u64 {
            let _ = bus.read(SimTime::at_cycle(i), MasterId::CPU0, Addr(0x1000), 4, &mem);
        }
        let (first, lost) = bus.poll(&mut cur);
        assert_eq!(first.len(), 5);
        assert_eq!(lost, 0);
        let (second, _) = bus.poll(&mut cur);
        assert!(second.is_empty());
        let _ = bus.read(t0(), MasterId::CPU1, Addr(0x1000), 4, &mem);
        let (third, _) = bus.poll(&mut cur);
        assert_eq!(third.len(), 1);
        assert_eq!(third[0].master, MasterId::CPU1);
    }

    #[test]
    fn slow_cursor_loses_evicted_records() {
        let (mut bus, mem) = setup(); // capacity 16
        let mut cur = TxnCursor::default();
        for _ in 0..20 {
            let _ = bus.read(t0(), MasterId::CPU0, Addr(0x1000), 4, &mem);
        }
        let (recs, lost) = bus.poll(&mut cur);
        assert_eq!(recs.len(), 16);
        assert_eq!(lost, 4);
        assert_eq!(bus.evicted(), 4);
    }

    #[test]
    fn stats_accumulate() {
        let (mut bus, mut mem) = setup();
        bus.write(t0(), MasterId::CPU0, Addr(0x1000), &[0; 8], &mut mem)
            .unwrap();
        let _ = bus.write(t0(), MasterId::CPU0, Addr(0x8000), &[0; 4], &mut mem); // denied
        let s = bus.stats(MasterId::CPU0);
        assert_eq!(s.granted, 1);
        assert_eq!(s.denied, 1);
        assert_eq!(s.bytes, 8);
        assert_eq!(bus.stats(MasterId::CPU3), MasterStats::default());
        assert_eq!(bus.total_transactions(), 2);
    }

    #[test]
    fn fetch_respects_exec_permission() {
        let (mut bus, mem) = setup();
        assert!(bus
            .fetch(t0(), MasterId::CPU0, Addr(0x8000), 16, &mem)
            .is_ok());
        assert_eq!(
            bus.fetch(t0(), MasterId::CPU0, Addr(0x1000), 16, &mem),
            Err(BusError::PermissionDenied)
        );
    }

    #[test]
    fn latency_scales_with_length() {
        let bus = Bus::new(4);
        assert_eq!(bus.latency_for(0), 4);
        assert_eq!(bus.latency_for(8), 5);
        assert_eq!(bus.latency_for(64), 12);
    }

    #[test]
    fn unmapped_is_distinct_error() {
        let (mut bus, mem) = setup();
        assert_eq!(
            bus.read(t0(), MasterId::CPU0, Addr(0xdead_0000), 4, &mem),
            Err(BusError::Unmapped)
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_ring_panics() {
        Bus::new(0);
    }
}
