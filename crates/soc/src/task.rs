//! The workload model: tasks as basic-block graphs.
//!
//! A [`Task`] executes a [`Program`] — a graph of [`Block`]s, each of which
//! fetches from a code address, performs data reads/writes and optionally
//! issues abstract syscalls. Stepping a task emits exactly the telemetry the
//! paper's resource monitors consume: instruction-fetch and data
//! transactions on the bus, a control-flow edge for the CFI monitor and a
//! syscall trace for the sequence monitor.
//!
//! Attack injectors compromise tasks by forcing a control-flow transition
//! outside the program's edge set ([`Task::hijack`]) — the abstract
//! equivalent of a code-injection or ROP redirect.

use crate::addr::{Addr, MasterId};
use crate::bus::{Bus, BusError};
use crate::mem::MemoryMap;
use cres_sim::{DetRng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Identifier of a basic block within its program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Identifier of a task on the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// Abstract system calls a block may issue (coarse classes, enough for
/// n-gram sequence monitoring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Syscall {
    /// Read a sensor value.
    SensorRead,
    /// Drive an actuator.
    Actuate,
    /// Send a network packet.
    NetSend,
    /// Receive a network packet.
    NetRecv,
    /// Use a keystore/crypto service.
    CryptoOp,
    /// Write to persistent storage.
    StorageWrite,
    /// Read from persistent storage.
    StorageRead,
    /// Request privilege elevation (rare in benign traces).
    PrivEscalate,
    /// Modify firmware / request update.
    FirmwareWrite,
}

/// One basic block of a program.
#[derive(Debug, Clone)]
pub struct Block {
    /// Block identifier (index into the program).
    pub id: BlockId,
    /// Code address the block fetches from.
    pub fetch_addr: Addr,
    /// Compute time consumed by the block.
    pub duration: SimDuration,
    /// Data reads `(addr, len)` performed by the block.
    pub reads: Vec<(Addr, u64)>,
    /// Data writes `(addr, len)` performed by the block.
    pub writes: Vec<(Addr, u64)>,
    /// Syscalls the block issues.
    pub syscalls: Vec<Syscall>,
    /// Legal successor blocks; empty means the program loops to entry.
    pub successors: Vec<BlockId>,
}

/// A control-flow graph of blocks with a designated entry.
#[derive(Debug, Clone)]
pub struct Program {
    blocks: Vec<Block>,
    entry: BlockId,
}

impl Program {
    /// Starts building a program.
    pub fn builder() -> ProgramBuilder {
        ProgramBuilder { blocks: Vec::new() }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Looks up a block.
    ///
    /// # Panics
    ///
    /// Panics for ids not in this program.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// All blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The complete legal edge set `(from, to)`, including loop-back edges
    /// from terminal blocks to the entry. This is what the CFI monitor is
    /// provisioned with.
    pub fn edge_set(&self) -> HashSet<(BlockId, BlockId)> {
        let mut edges = HashSet::new();
        for b in &self.blocks {
            if b.successors.is_empty() {
                edges.insert((b.id, self.entry));
            } else {
                for s in &b.successors {
                    edges.insert((b.id, *s));
                }
            }
        }
        edges
    }
}

/// Incremental builder for [`Program`].
#[derive(Debug)]
pub struct ProgramBuilder {
    blocks: Vec<Block>,
}

impl ProgramBuilder {
    /// Adds a block and returns its id. Successors may reference blocks not
    /// yet added; [`ProgramBuilder::build`] validates them.
    #[allow(clippy::too_many_arguments)]
    pub fn block(
        &mut self,
        fetch_addr: Addr,
        duration: SimDuration,
        reads: Vec<(Addr, u64)>,
        writes: Vec<(Addr, u64)>,
        syscalls: Vec<Syscall>,
        successors: Vec<BlockId>,
    ) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            id,
            fetch_addr,
            duration,
            reads,
            writes,
            syscalls,
            successors,
        });
        id
    }

    /// Finishes the program with block 0 as entry.
    ///
    /// # Panics
    ///
    /// Panics when the program is empty or a successor id dangles.
    pub fn build(self) -> Program {
        assert!(!self.blocks.is_empty(), "program needs at least one block");
        let n = self.blocks.len() as u32;
        for b in &self.blocks {
            for s in &b.successors {
                assert!(s.0 < n, "block {} has dangling successor {}", b.id, s);
            }
        }
        Program {
            blocks: self.blocks,
            entry: BlockId(0),
        }
    }
}

/// How important a task is to the platform's mission — drives graceful
/// degradation decisions (critical services are kept alive at the cost of
/// shedding best-effort load).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Criticality {
    /// May be shed freely under degradation.
    BestEffort,
    /// Shed only under severe degradation.
    Important,
    /// Must keep running while the platform is alive.
    Critical,
}

/// Run state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskState {
    /// Executing normally.
    Running,
    /// Suspended by the scheduler or a countermeasure.
    Suspended,
    /// Terminated by a countermeasure; restartable.
    Killed,
}

/// A running task: a program plus its execution cursor.
#[derive(Debug, Clone)]
pub struct Task {
    id: TaskId,
    name: String,
    program: Program,
    criticality: Criticality,
    state: TaskState,
    current: BlockId,
    steps: u64,
    hijack: Option<BlockId>,
}

/// Telemetry produced by one task step.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// The control-flow edge taken `(from, to)`.
    pub edge: (BlockId, BlockId),
    /// Syscalls issued by the block entered.
    pub syscalls: Vec<Syscall>,
    /// Bus errors hit while performing the block's accesses.
    pub denials: Vec<BusError>,
    /// Compute + bus time until the task should step again.
    pub next_delay: SimDuration,
}

impl Task {
    /// Creates a task positioned at its program's entry.
    pub fn new(id: TaskId, name: &str, program: Program, criticality: Criticality) -> Self {
        let entry = program.entry();
        Task {
            id,
            name: name.to_string(),
            program,
            criticality,
            state: TaskState::Running,
            current: entry,
            steps: 0,
            hijack: None,
        }
    }

    /// Task identifier.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Task name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The program this task runs.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Mission criticality.
    pub fn criticality(&self) -> Criticality {
        self.criticality
    }

    /// Current run state.
    pub fn state(&self) -> TaskState {
        self.state
    }

    /// Current block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Number of steps executed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Suspends the task (scheduler or countermeasure).
    pub fn suspend(&mut self) {
        if self.state == TaskState::Running {
            self.state = TaskState::Suspended;
        }
    }

    /// Resumes a suspended task.
    pub fn resume(&mut self) {
        if self.state == TaskState::Suspended {
            self.state = TaskState::Running;
        }
    }

    /// Kills the task (countermeasure). A killed task stays dead until
    /// [`Task::restart`].
    pub fn kill(&mut self) {
        self.state = TaskState::Killed;
    }

    /// Restarts a killed or suspended task from its entry block, clearing
    /// any pending hijack.
    pub fn restart(&mut self) {
        self.state = TaskState::Running;
        self.current = self.program.entry();
        self.hijack = None;
    }

    /// Forces the next transition to `target`, regardless of the edge set —
    /// the attack injector's control-flow-hijack lever.
    pub fn hijack(&mut self, target: BlockId) {
        self.hijack = Some(target);
    }

    /// Executes one step: transitions to the next block (hijacked or chosen
    /// uniformly among legal successors) and performs that block's fetch,
    /// reads, writes and syscalls through the bus. Returns `None` when the
    /// task is not running.
    pub fn step(
        &mut self,
        now: SimTime,
        master: MasterId,
        bus: &mut Bus,
        mem: &mut MemoryMap,
        rng: &mut DetRng,
    ) -> Option<StepOutcome> {
        if self.state != TaskState::Running {
            return None;
        }
        let from = self.current;
        let to = if let Some(target) = self.hijack.take() {
            target
        } else {
            let succ = &self.program.block(from).successors;
            if succ.is_empty() {
                self.program.entry()
            } else {
                *rng.choose(succ)
            }
        };
        self.current = to;
        self.steps += 1;

        let block = self.program.block(to).clone();
        let mut denials = Vec::new();
        let mut bus_cycles = 0u64;

        if let Err(e) = bus.fetch(now, master, block.fetch_addr, 16, mem) {
            denials.push(e);
        }
        bus_cycles += bus.latency_for(16);
        for (addr, len) in &block.reads {
            if let Err(e) = bus.read(now, master, *addr, *len, mem) {
                denials.push(e);
            }
            bus_cycles += bus.latency_for(*len);
        }
        for (addr, len) in &block.writes {
            let data = vec![0xA5u8; *len as usize];
            if let Err(e) = bus.write(now, master, *addr, &data, mem) {
                denials.push(e);
            }
            bus_cycles += bus.latency_for(*len);
        }

        Some(StepOutcome {
            edge: (from, to),
            syscalls: block.syscalls.clone(),
            denials,
            next_delay: block.duration + SimDuration::cycles(bus_cycles),
        })
    }
}

/// Convenience constructor for benign "control loop" programs used across
/// tests, examples and experiments: `read sensor → compute → write actuator
/// → send telemetry`, with all traffic confined to the given regions.
pub fn control_loop_program(code_base: Addr, data_base: Addr, periph_base: Addr) -> Program {
    let mut b = Program::builder();
    let step = SimDuration::cycles(50);
    // bb0: read sensor
    b.block(
        code_base,
        step,
        vec![(periph_base, 8)],
        vec![(data_base, 8)],
        vec![Syscall::SensorRead],
        vec![BlockId(1)],
    );
    // bb1: compute
    b.block(
        code_base.offset(0x40),
        step * 2,
        vec![(data_base, 8)],
        vec![(data_base.offset(8), 8)],
        vec![],
        vec![BlockId(2), BlockId(3)],
    );
    // bb2: actuate
    b.block(
        code_base.offset(0x80),
        step,
        vec![(data_base.offset(8), 8)],
        vec![(periph_base.offset(8), 8)],
        vec![Syscall::Actuate],
        vec![BlockId(3)],
    );
    // bb3: telemetry send, loop back
    b.block(
        code_base.offset(0xC0),
        step,
        vec![(data_base.offset(8), 8)],
        vec![],
        vec![Syscall::NetSend],
        vec![],
    );
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Perms;

    fn env() -> (Bus, MemoryMap, DetRng) {
        let mut mem = MemoryMap::new();
        mem.add_region("code", Addr(0x0800_0000), 0x1000, Perms::rx());
        mem.add_region("data", Addr(0x2000_0000), 0x1000, Perms::rw());
        mem.add_region("periph", Addr(0x4000_0000), 0x1000, Perms::rw());
        (Bus::new(1024), mem, DetRng::seed_from(1))
    }

    fn make_task() -> Task {
        let p = control_loop_program(Addr(0x0800_0000), Addr(0x2000_0000), Addr(0x4000_0000));
        Task::new(TaskId(0), "loop", p, Criticality::Critical)
    }

    #[test]
    fn program_builder_validates_successors() {
        let mut b = Program::builder();
        b.block(
            Addr(0),
            SimDuration::cycles(1),
            vec![],
            vec![],
            vec![],
            vec![BlockId(5)],
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.build()));
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_program_panics() {
        Program::builder().build();
    }

    #[test]
    fn edge_set_includes_loopback() {
        let p = control_loop_program(Addr(0x0800_0000), Addr(0x2000_0000), Addr(0x4000_0000));
        let edges = p.edge_set();
        assert!(edges.contains(&(BlockId(0), BlockId(1))));
        assert!(edges.contains(&(BlockId(1), BlockId(2))));
        assert!(edges.contains(&(BlockId(1), BlockId(3))));
        assert!(edges.contains(&(BlockId(3), BlockId(0))), "loopback edge");
        assert!(!edges.contains(&(BlockId(0), BlockId(3))));
    }

    #[test]
    fn stepping_takes_only_legal_edges() {
        let (mut bus, mut mem, mut rng) = env();
        let mut task = make_task();
        let edges = task.program().edge_set();
        for _ in 0..200 {
            let out = task
                .step(SimTime::ZERO, MasterId::CPU0, &mut bus, &mut mem, &mut rng)
                .unwrap();
            assert!(edges.contains(&out.edge), "illegal edge {:?}", out.edge);
            assert!(out.denials.is_empty(), "benign task was denied");
            assert!(!out.next_delay.is_zero());
        }
        assert_eq!(task.steps(), 200);
    }

    #[test]
    fn hijack_forces_illegal_edge_once() {
        let (mut bus, mut mem, mut rng) = env();
        let mut task = make_task();
        // from bb0 the only legal successor is bb1; hijack to bb3
        task.hijack(BlockId(3));
        let out = task
            .step(SimTime::ZERO, MasterId::CPU0, &mut bus, &mut mem, &mut rng)
            .unwrap();
        assert_eq!(out.edge, (BlockId(0), BlockId(3)));
        assert!(!task.program().edge_set().contains(&out.edge));
        // subsequent steps are legal again
        let out2 = task
            .step(SimTime::ZERO, MasterId::CPU0, &mut bus, &mut mem, &mut rng)
            .unwrap();
        assert!(task.program().edge_set().contains(&out2.edge));
    }

    #[test]
    fn lifecycle_states() {
        let (mut bus, mut mem, mut rng) = env();
        let mut task = make_task();
        task.suspend();
        assert_eq!(task.state(), TaskState::Suspended);
        assert!(task
            .step(SimTime::ZERO, MasterId::CPU0, &mut bus, &mut mem, &mut rng)
            .is_none());
        task.resume();
        assert_eq!(task.state(), TaskState::Running);
        task.kill();
        assert_eq!(task.state(), TaskState::Killed);
        // resume does not revive a killed task
        task.resume();
        assert_eq!(task.state(), TaskState::Killed);
        task.restart();
        assert_eq!(task.state(), TaskState::Running);
        assert_eq!(task.current_block(), task.program().entry());
    }

    #[test]
    fn restart_clears_hijack() {
        let (mut bus, mut mem, mut rng) = env();
        let mut task = make_task();
        task.hijack(BlockId(3));
        task.restart();
        let out = task
            .step(SimTime::ZERO, MasterId::CPU0, &mut bus, &mut mem, &mut rng)
            .unwrap();
        assert!(task.program().edge_set().contains(&out.edge));
    }

    #[test]
    fn denied_accesses_are_reported() {
        let (mut bus, mut mem, mut rng) = env();
        // lock CPU0 out of the peripheral region
        let periph = mem.region_by_name("periph").unwrap().id();
        mem.revoke(MasterId::CPU0, periph);
        let mut task = make_task();
        let mut saw_denial = false;
        for _ in 0..20 {
            let out = task
                .step(SimTime::ZERO, MasterId::CPU0, &mut bus, &mut mem, &mut rng)
                .unwrap();
            if !out.denials.is_empty() {
                saw_denial = true;
            }
        }
        assert!(saw_denial, "peripheral accesses should have been denied");
    }

    #[test]
    fn syscalls_follow_blocks() {
        let (mut bus, mut mem, mut rng) = env();
        let mut task = make_task();
        let mut seen = HashSet::new();
        for _ in 0..100 {
            let out = task
                .step(SimTime::ZERO, MasterId::CPU0, &mut bus, &mut mem, &mut rng)
                .unwrap();
            seen.extend(out.syscalls);
        }
        assert!(seen.contains(&Syscall::SensorRead));
        assert!(seen.contains(&Syscall::NetSend));
        assert!(!seen.contains(&Syscall::PrivEscalate));
    }

    #[test]
    fn criticality_order() {
        assert!(Criticality::Critical > Criticality::Important);
        assert!(Criticality::Important > Criticality::BestEffort);
    }
}
