//! Physical sensors with a deterministic signal model and spoofing hooks.
//!
//! A benign sensor produces `baseline + amplitude·sin(2πt/period) + noise`.
//! Attack injectors override the reading through [`SensorSpoof`] — the
//! plausibility monitor's job is to notice the difference.

use cres_sim::{DetRng, SimTime};
use serde::{Deserialize, Serialize};

/// How a compromised sensor lies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SensorSpoof {
    /// Reports a fixed value (stuck-at).
    Fixed(f64),
    /// Drifts away from truth at `rate` units per 1000 cycles.
    Drift {
        /// Drift rate in units per 1000 cycles.
        rate: f64,
        /// When the drift started.
        since: SimTime,
    },
    /// Adds implausibly large jitter.
    Jitter(f64),
}

/// A modelled physical sensor.
#[derive(Debug, Clone)]
pub struct Sensor {
    name: String,
    baseline: f64,
    amplitude: f64,
    period_cycles: u64,
    noise_std: f64,
    spoof: Option<SensorSpoof>,
    reads: u64,
}

impl Sensor {
    /// Creates a sensor with the given signal model.
    ///
    /// # Panics
    ///
    /// Panics if `period_cycles` is zero.
    pub fn new(
        name: &str,
        baseline: f64,
        amplitude: f64,
        period_cycles: u64,
        noise_std: f64,
    ) -> Self {
        assert!(period_cycles > 0, "sensor period must be non-zero");
        Sensor {
            name: name.to_string(),
            baseline,
            amplitude,
            period_cycles,
            noise_std,
            spoof: None,
            reads: 0,
        }
    }

    /// Sensor name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The true (un-spoofed) physical value at `now`, before noise.
    pub fn truth(&self, now: SimTime) -> f64 {
        let phase = (now.cycle() % self.period_cycles) as f64 / self.period_cycles as f64;
        self.baseline + self.amplitude * (2.0 * std::f64::consts::PI * phase).sin()
    }

    /// Reads the sensor: truth + noise, unless spoofed.
    pub fn read(&mut self, now: SimTime, rng: &mut DetRng) -> f64 {
        self.reads += 1;
        let honest = self.truth(now) + rng.normal(0.0, self.noise_std);
        match self.spoof {
            None => honest,
            Some(SensorSpoof::Fixed(v)) => v,
            Some(SensorSpoof::Drift { rate, since }) => {
                let dt = now.saturating_since(since).as_cycles() as f64 / 1000.0;
                honest + rate * dt
            }
            Some(SensorSpoof::Jitter(j)) => honest + rng.normal(0.0, j),
        }
    }

    /// Installs a spoof (attack injector hook).
    pub fn spoof(&mut self, mode: SensorSpoof) {
        self.spoof = Some(mode);
    }

    /// Removes any spoof (recovery).
    pub fn clear_spoof(&mut self) {
        self.spoof = None;
    }

    /// True while spoofed.
    pub fn is_spoofed(&self) -> bool {
        self.spoof.is_some()
    }

    /// Number of reads performed.
    pub fn read_count(&self) -> u64 {
        self.reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensor() -> Sensor {
        Sensor::new("grid_freq", 50.0, 0.05, 100_000, 0.002)
    }

    #[test]
    fn honest_reads_track_truth() {
        let mut s = sensor();
        let mut rng = DetRng::seed_from(1);
        for t in (0..1_000_000).step_by(10_000) {
            let now = SimTime::at_cycle(t);
            let v = s.read(now, &mut rng);
            assert!((v - s.truth(now)).abs() < 0.02, "at {t}: {v}");
        }
        assert_eq!(s.read_count(), 100);
    }

    #[test]
    fn truth_oscillates_around_baseline() {
        let s = sensor();
        let quarter = SimTime::at_cycle(25_000);
        let three_quarter = SimTime::at_cycle(75_000);
        assert!(s.truth(quarter) > 50.0);
        assert!(s.truth(three_quarter) < 50.0);
        assert!((s.truth(SimTime::ZERO) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_spoof_overrides() {
        let mut s = sensor();
        let mut rng = DetRng::seed_from(2);
        s.spoof(SensorSpoof::Fixed(62.5));
        assert_eq!(s.read(SimTime::ZERO, &mut rng), 62.5);
        assert!(s.is_spoofed());
        s.clear_spoof();
        assert!(!s.is_spoofed());
        assert_ne!(s.read(SimTime::ZERO, &mut rng), 62.5);
    }

    #[test]
    fn drift_grows_with_time() {
        let mut s = sensor();
        let mut rng = DetRng::seed_from(3);
        s.spoof(SensorSpoof::Drift {
            rate: 0.1,
            since: SimTime::ZERO,
        });
        let early = s.read(SimTime::at_cycle(1_000), &mut rng);
        let late = s.read(SimTime::at_cycle(1_000_000), &mut rng);
        assert!(
            late - early > 50.0,
            "drift should dominate: {early} → {late}"
        );
    }

    #[test]
    fn jitter_inflates_variance() {
        let mut s = sensor();
        let mut rng = DetRng::seed_from(4);
        let honest: Vec<f64> = (0..200)
            .map(|i| s.read(SimTime::at_cycle(i), &mut rng))
            .collect();
        s.spoof(SensorSpoof::Jitter(5.0));
        let spoofed: Vec<f64> = (0..200)
            .map(|i| s.read(SimTime::at_cycle(i), &mut rng))
            .collect();
        let var = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
        };
        assert!(var(&spoofed) > var(&honest) * 100.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_panics() {
        Sensor::new("bad", 0.0, 0.0, 0, 0.0);
    }
}
