//! Environmental sensors: voltage, clock and temperature.
//!
//! Table I lists "voltage, clock and temperature monitors" among the
//! existing passive response landscape. Fault-injection attacks (glitching)
//! show up here as out-of-envelope readings; the environment monitor in
//! `cres-monitor` thresholds them.

use cres_sim::{DetRng, SimTime};
use serde::{Deserialize, Serialize};

/// A physical tamper/fault-injection mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EnvTamper {
    /// Supply-voltage glitch to `volts`.
    VoltageGlitch(f64),
    /// Clock overclocked/underclocked to `mhz`.
    ClockSkew(f64),
    /// Heating/cooling attack to `celsius`.
    Thermal(f64),
}

/// One sample of the environmental sensors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnvReading {
    /// Core supply voltage in volts.
    pub voltage: f64,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// Die temperature in °C.
    pub temp_c: f64,
    /// When the sample was taken.
    pub at: SimTime,
}

/// The environmental sensor block.
#[derive(Debug, Clone)]
pub struct EnvSensors {
    nominal_voltage: f64,
    nominal_clock: f64,
    nominal_temp: f64,
    tamper: Option<EnvTamper>,
}

impl Default for EnvSensors {
    fn default() -> Self {
        Self::new(3.3, 100.0, 45.0)
    }
}

impl EnvSensors {
    /// Creates the block with the given nominal operating point.
    pub fn new(voltage: f64, clock_mhz: f64, temp_c: f64) -> Self {
        EnvSensors {
            nominal_voltage: voltage,
            nominal_clock: clock_mhz,
            nominal_temp: temp_c,
            tamper: None,
        }
    }

    /// The nominal operating point `(V, MHz, °C)`.
    pub fn nominal(&self) -> (f64, f64, f64) {
        (self.nominal_voltage, self.nominal_clock, self.nominal_temp)
    }

    /// Samples the sensors with small gaussian measurement noise.
    pub fn sample(&self, at: SimTime, rng: &mut DetRng) -> EnvReading {
        let mut r = EnvReading {
            voltage: self.nominal_voltage + rng.normal(0.0, 0.01),
            clock_mhz: self.nominal_clock + rng.normal(0.0, 0.05),
            temp_c: self.nominal_temp + rng.normal(0.0, 0.3),
            at,
        };
        match self.tamper {
            Some(EnvTamper::VoltageGlitch(v)) => r.voltage = v,
            Some(EnvTamper::ClockSkew(mhz)) => r.clock_mhz = mhz,
            Some(EnvTamper::Thermal(c)) => r.temp_c = c,
            None => {}
        }
        r
    }

    /// Applies a tamper mode (attack injector hook).
    pub fn tamper(&mut self, mode: EnvTamper) {
        self.tamper = Some(mode);
    }

    /// Clears tampering (physical recovery).
    pub fn clear_tamper(&mut self) {
        self.tamper = None;
    }

    /// True while tampered.
    pub fn is_tampered(&self) -> bool {
        self.tamper.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_cluster_around_nominal() {
        let env = EnvSensors::default();
        let mut rng = DetRng::seed_from(1);
        for i in 0..100 {
            let r = env.sample(SimTime::at_cycle(i), &mut rng);
            assert!((r.voltage - 3.3).abs() < 0.1);
            assert!((r.clock_mhz - 100.0).abs() < 1.0);
            assert!((r.temp_c - 45.0).abs() < 3.0);
        }
    }

    #[test]
    fn voltage_glitch_shows_up() {
        let mut env = EnvSensors::default();
        let mut rng = DetRng::seed_from(2);
        env.tamper(EnvTamper::VoltageGlitch(1.2));
        let r = env.sample(SimTime::ZERO, &mut rng);
        assert_eq!(r.voltage, 1.2);
        // other channels stay nominal
        assert!((r.clock_mhz - 100.0).abs() < 1.0);
        assert!(env.is_tampered());
    }

    #[test]
    fn clear_tamper_restores() {
        let mut env = EnvSensors::default();
        let mut rng = DetRng::seed_from(3);
        env.tamper(EnvTamper::Thermal(120.0));
        assert_eq!(env.sample(SimTime::ZERO, &mut rng).temp_c, 120.0);
        env.clear_tamper();
        assert!((env.sample(SimTime::ZERO, &mut rng).temp_c - 45.0).abs() < 3.0);
    }

    #[test]
    fn clock_skew() {
        let mut env = EnvSensors::default();
        let mut rng = DetRng::seed_from(4);
        env.tamper(EnvTamper::ClockSkew(250.0));
        assert_eq!(env.sample(SimTime::ZERO, &mut rng).clock_mhz, 250.0);
    }
}
