//! Actuators with a safety envelope.
//!
//! Critical-infrastructure damage happens at the actuator. The model
//! enforces a hard safety envelope (an interlock the attacker must stay
//! inside to remain stealthy) and records every command for forensics.

use cres_sim::SimTime;
use serde::{Deserialize, Serialize};

/// One actuation command.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Command {
    /// Commanded set-point.
    pub value: f64,
    /// When the command was issued.
    pub at: SimTime,
    /// Whether the interlock accepted it.
    pub accepted: bool,
}

/// A set-point actuator with min/max interlock.
#[derive(Debug, Clone)]
pub struct Actuator {
    name: String,
    min: f64,
    max: f64,
    position: f64,
    history: Vec<Command>,
    rejected: u64,
    locked_out: bool,
}

impl Actuator {
    /// Creates an actuator with the given safety envelope, initially at the
    /// midpoint.
    ///
    /// # Panics
    ///
    /// Panics if `min >= max` or either bound is non-finite.
    pub fn new(name: &str, min: f64, max: f64) -> Self {
        assert!(
            min.is_finite() && max.is_finite() && min < max,
            "bad envelope"
        );
        Actuator {
            name: name.to_string(),
            min,
            max,
            position: (min + max) / 2.0,
            history: Vec::new(),
            rejected: 0,
            locked_out: false,
        }
    }

    /// Actuator name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current position.
    pub fn position(&self) -> f64 {
        self.position
    }

    /// The safety envelope `(min, max)`.
    pub fn envelope(&self) -> (f64, f64) {
        (self.min, self.max)
    }

    /// Issues a command. Returns true when the command was applied
    /// (inside the envelope and not locked out).
    pub fn command(&mut self, at: SimTime, value: f64) -> bool {
        let accepted =
            !self.locked_out && value.is_finite() && value >= self.min && value <= self.max;
        self.history.push(Command {
            value,
            at,
            accepted,
        });
        if accepted {
            self.position = value;
        } else {
            self.rejected += 1;
        }
        accepted
    }

    /// Locks the actuator in its current position (fail-safe
    /// countermeasure: a compromised controller can no longer move it).
    pub fn lockout(&mut self) {
        self.locked_out = true;
    }

    /// Releases a lockout.
    pub fn release(&mut self) {
        self.locked_out = false;
    }

    /// True while locked out.
    pub fn is_locked_out(&self) -> bool {
        self.locked_out
    }

    /// Full command history (forensic record).
    pub fn history(&self) -> &[Command] {
        &self.history
    }

    /// Count of rejected commands.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valve() -> Actuator {
        Actuator::new("breaker", 0.0, 100.0)
    }

    #[test]
    fn starts_at_midpoint() {
        assert_eq!(valve().position(), 50.0);
    }

    #[test]
    fn in_envelope_command_applies() {
        let mut a = valve();
        assert!(a.command(SimTime::ZERO, 75.0));
        assert_eq!(a.position(), 75.0);
    }

    #[test]
    fn out_of_envelope_rejected() {
        let mut a = valve();
        assert!(!a.command(SimTime::ZERO, 150.0));
        assert!(!a.command(SimTime::ZERO, -1.0));
        assert!(!a.command(SimTime::ZERO, f64::NAN));
        assert_eq!(a.position(), 50.0);
        assert_eq!(a.rejected(), 3);
    }

    #[test]
    fn boundary_values_accepted() {
        let mut a = valve();
        assert!(a.command(SimTime::ZERO, 0.0));
        assert!(a.command(SimTime::ZERO, 100.0));
    }

    #[test]
    fn lockout_freezes_position() {
        let mut a = valve();
        a.command(SimTime::ZERO, 30.0);
        a.lockout();
        assert!(!a.command(SimTime::ZERO, 60.0));
        assert_eq!(a.position(), 30.0);
        a.release();
        assert!(a.command(SimTime::ZERO, 60.0));
    }

    #[test]
    fn history_records_everything() {
        let mut a = valve();
        a.command(SimTime::at_cycle(1), 10.0);
        a.command(SimTime::at_cycle(2), 999.0);
        assert_eq!(a.history().len(), 2);
        assert!(a.history()[0].accepted);
        assert!(!a.history()[1].accepted);
    }

    #[test]
    #[should_panic(expected = "bad envelope")]
    fn inverted_envelope_panics() {
        Actuator::new("bad", 10.0, 0.0);
    }
}
