//! The interrupt controller: prioritised lines with enable masking.
//!
//! Peripherals raise lines; the highest-priority pending-and-enabled line is
//! what a core would vector to. Countermeasures use the mask: quarantining
//! the NIC also masks its interrupt so a flood cannot livelock the cores
//! (classic interrupt-storm DoS).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Interrupt lines on the platform, in descending priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IrqLine {
    /// Watchdog pre-reset warning (highest priority).
    Watchdog,
    /// Environmental sensor out-of-envelope latch.
    Environment,
    /// DMA transfer completion.
    DmaDone,
    /// NIC packet received.
    NicRx,
    /// Sensor sample ready.
    SensorReady,
    /// UART transmit-buffer empty (lowest priority).
    UartTx,
}

impl IrqLine {
    /// All lines, highest priority first.
    pub const ALL: [IrqLine; 6] = [
        IrqLine::Watchdog,
        IrqLine::Environment,
        IrqLine::DmaDone,
        IrqLine::NicRx,
        IrqLine::SensorReady,
        IrqLine::UartTx,
    ];

    fn bit(self) -> u8 {
        match self {
            IrqLine::Watchdog => 0,
            IrqLine::Environment => 1,
            IrqLine::DmaDone => 2,
            IrqLine::NicRx => 3,
            IrqLine::SensorReady => 4,
            IrqLine::UartTx => 5,
        }
    }
}

impl fmt::Display for IrqLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The interrupt controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IrqController {
    pending: u8,
    enabled: u8,
    raised_counts: [u32; 6],
    spurious_masked: u32,
}

impl Default for IrqController {
    fn default() -> Self {
        Self::new()
    }
}

impl IrqController {
    /// Creates a controller with every line enabled and none pending.
    pub fn new() -> Self {
        IrqController {
            pending: 0,
            enabled: 0x3F,
            raised_counts: [0; 6],
            spurious_masked: 0,
        }
    }

    /// Raises a line. Raising an already-pending line is idempotent;
    /// raising a masked line is counted but latched anyway (level
    /// semantics: it fires if later unmasked).
    pub fn raise(&mut self, line: IrqLine) {
        if !self.is_enabled(line) {
            self.spurious_masked += 1;
        }
        self.pending |= 1 << line.bit();
        self.raised_counts[line.bit() as usize] += 1;
    }

    /// Acknowledges (clears) a pending line.
    pub fn acknowledge(&mut self, line: IrqLine) {
        self.pending &= !(1 << line.bit());
    }

    /// True when `line` is latched pending (masked or not).
    pub fn is_pending(&self, line: IrqLine) -> bool {
        self.pending & (1 << line.bit()) != 0
    }

    /// True when `line` is enabled.
    pub fn is_enabled(&self, line: IrqLine) -> bool {
        self.enabled & (1 << line.bit()) != 0
    }

    /// Masks (disables) a line.
    pub fn mask(&mut self, line: IrqLine) {
        self.enabled &= !(1 << line.bit());
    }

    /// Unmasks (enables) a line.
    pub fn unmask(&mut self, line: IrqLine) {
        self.enabled |= 1 << line.bit();
    }

    /// The highest-priority line that is both pending and enabled — what a
    /// core would vector to next. `None` when nothing is deliverable.
    pub fn next_deliverable(&self) -> Option<IrqLine> {
        IrqLine::ALL
            .into_iter()
            .find(|l| self.is_pending(*l) && self.is_enabled(*l))
    }

    /// Lifetime raise count for a line (interrupt-storm telemetry).
    pub fn raise_count(&self, line: IrqLine) -> u32 {
        self.raised_counts[line.bit() as usize]
    }

    /// How many raises arrived while the line was masked.
    pub fn masked_raises(&self) -> u32 {
        self.spurious_masked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_controller_is_quiet() {
        let c = IrqController::new();
        assert_eq!(c.next_deliverable(), None);
        for l in IrqLine::ALL {
            assert!(!c.is_pending(l));
            assert!(c.is_enabled(l));
        }
    }

    #[test]
    fn raise_ack_cycle() {
        let mut c = IrqController::new();
        c.raise(IrqLine::NicRx);
        assert!(c.is_pending(IrqLine::NicRx));
        assert_eq!(c.next_deliverable(), Some(IrqLine::NicRx));
        c.acknowledge(IrqLine::NicRx);
        assert!(!c.is_pending(IrqLine::NicRx));
        assert_eq!(c.next_deliverable(), None);
        assert_eq!(c.raise_count(IrqLine::NicRx), 1);
    }

    #[test]
    fn priority_order_is_respected() {
        let mut c = IrqController::new();
        c.raise(IrqLine::UartTx);
        c.raise(IrqLine::NicRx);
        c.raise(IrqLine::Watchdog);
        assert_eq!(c.next_deliverable(), Some(IrqLine::Watchdog));
        c.acknowledge(IrqLine::Watchdog);
        assert_eq!(c.next_deliverable(), Some(IrqLine::NicRx));
        c.acknowledge(IrqLine::NicRx);
        assert_eq!(c.next_deliverable(), Some(IrqLine::UartTx));
    }

    #[test]
    fn masked_line_latches_but_does_not_deliver() {
        let mut c = IrqController::new();
        c.mask(IrqLine::NicRx);
        c.raise(IrqLine::NicRx);
        assert!(c.is_pending(IrqLine::NicRx));
        assert_eq!(c.next_deliverable(), None);
        assert_eq!(c.masked_raises(), 1);
        // unmasking delivers the latched interrupt (level semantics)
        c.unmask(IrqLine::NicRx);
        assert_eq!(c.next_deliverable(), Some(IrqLine::NicRx));
    }

    #[test]
    fn raising_is_idempotent() {
        let mut c = IrqController::new();
        c.raise(IrqLine::DmaDone);
        c.raise(IrqLine::DmaDone);
        assert_eq!(c.raise_count(IrqLine::DmaDone), 2);
        c.acknowledge(IrqLine::DmaDone);
        assert!(!c.is_pending(IrqLine::DmaDone), "one ack clears the level");
    }

    #[test]
    fn storm_counting_supports_dos_detection() {
        let mut c = IrqController::new();
        for _ in 0..10_000 {
            c.raise(IrqLine::NicRx);
            c.acknowledge(IrqLine::NicRx);
        }
        assert_eq!(c.raise_count(IrqLine::NicRx), 10_000);
    }
}
