//! The DMA engine: a programmable bus master.
//!
//! DMA is the classic confused-deputy on an SoC: software programs a
//! descriptor and the engine moves memory with *its own* bus identity. The
//! DMA attack in `cres-attacks` programs a copy out of a protected region;
//! whether it succeeds depends entirely on the permission matrix rows for
//! [`MasterId::DMA`] — and gating the engine is the response manager's fix.

use crate::addr::{Addr, MasterId};
use crate::bus::{Bus, BusError};
use crate::mem::MemoryMap;
use cres_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One DMA transfer descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaDescriptor {
    /// Source address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Bytes to copy.
    pub len: u64,
}

/// Result of executing one descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaOutcome {
    /// The copy completed.
    Done,
    /// The read side faulted.
    ReadFault(BusError),
    /// The write side faulted (source was readable).
    WriteFault(BusError),
}

/// The DMA engine.
#[derive(Debug, Clone, Default)]
pub struct DmaEngine {
    queue: VecDeque<DmaDescriptor>,
    completed: u64,
    faulted: u64,
}

impl DmaEngine {
    /// Creates an idle engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a descriptor.
    pub fn program(&mut self, desc: DmaDescriptor) {
        self.queue.push_back(desc);
    }

    /// Number of queued descriptors.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Executes the next descriptor through the bus as [`MasterId::DMA`].
    /// Returns `None` when idle.
    pub fn step(&mut self, now: SimTime, bus: &mut Bus, mem: &mut MemoryMap) -> Option<DmaOutcome> {
        let desc = self.queue.pop_front()?;
        let data = match bus.read(now, MasterId::DMA, desc.src, desc.len, mem) {
            Ok(d) => d,
            Err(e) => {
                self.faulted += 1;
                return Some(DmaOutcome::ReadFault(e));
            }
        };
        match bus.write(now, MasterId::DMA, desc.dst, &data, mem) {
            Ok(()) => {
                self.completed += 1;
                Some(DmaOutcome::Done)
            }
            Err(e) => {
                self.faulted += 1;
                Some(DmaOutcome::WriteFault(e))
            }
        }
    }

    /// Completed transfer count.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Faulted transfer count.
    pub fn faulted(&self) -> u64 {
        self.faulted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Perms;

    fn env() -> (Bus, MemoryMap) {
        let mut mem = MemoryMap::new();
        mem.add_region("a", Addr(0x1000), 0x100, Perms::rw());
        mem.add_region("secret", Addr(0x2000), 0x100, Perms::rw());
        (Bus::new(64), mem)
    }

    #[test]
    fn copy_moves_bytes() {
        let (mut bus, mut mem) = env();
        mem.write_unchecked(Addr(0x1000), &[1, 2, 3, 4]);
        let mut dma = DmaEngine::new();
        dma.program(DmaDescriptor {
            src: Addr(0x1000),
            dst: Addr(0x1080),
            len: 4,
        });
        assert_eq!(
            dma.step(SimTime::ZERO, &mut bus, &mut mem),
            Some(DmaOutcome::Done)
        );
        assert_eq!(mem.read_unchecked(Addr(0x1080), 4), vec![1, 2, 3, 4]);
        assert_eq!(dma.completed(), 1);
    }

    #[test]
    fn idle_engine_returns_none() {
        let (mut bus, mut mem) = env();
        let mut dma = DmaEngine::new();
        assert_eq!(dma.step(SimTime::ZERO, &mut bus, &mut mem), None);
    }

    #[test]
    fn protected_source_faults() {
        let (mut bus, mut mem) = env();
        let secret = mem.region_by_name("secret").unwrap().id();
        mem.revoke(MasterId::DMA, secret);
        let mut dma = DmaEngine::new();
        dma.program(DmaDescriptor {
            src: Addr(0x2000),
            dst: Addr(0x1000),
            len: 8,
        });
        let out = dma.step(SimTime::ZERO, &mut bus, &mut mem).unwrap();
        assert!(matches!(
            out,
            DmaOutcome::ReadFault(BusError::PermissionDenied)
        ));
        assert_eq!(dma.faulted(), 1);
    }

    #[test]
    fn gated_engine_faults() {
        let (mut bus, mut mem) = env();
        bus.gate(MasterId::DMA);
        let mut dma = DmaEngine::new();
        dma.program(DmaDescriptor {
            src: Addr(0x1000),
            dst: Addr(0x1010),
            len: 4,
        });
        let out = dma.step(SimTime::ZERO, &mut bus, &mut mem).unwrap();
        assert!(matches!(
            out,
            DmaOutcome::ReadFault(BusError::MasterGated(_))
        ));
    }

    #[test]
    fn write_fault_reported_separately() {
        let (mut bus, mut mem) = env();
        let secret = mem.region_by_name("secret").unwrap().id();
        mem.grant(MasterId::DMA, secret, Perms::ro());
        let mut dma = DmaEngine::new();
        dma.program(DmaDescriptor {
            src: Addr(0x1000),
            dst: Addr(0x2000),
            len: 4,
        });
        let out = dma.step(SimTime::ZERO, &mut bus, &mut mem).unwrap();
        assert!(matches!(
            out,
            DmaOutcome::WriteFault(BusError::PermissionDenied)
        ));
    }

    #[test]
    fn descriptors_run_fifo() {
        let (mut bus, mut mem) = env();
        let mut dma = DmaEngine::new();
        mem.write_unchecked(Addr(0x1000), &[7]);
        dma.program(DmaDescriptor {
            src: Addr(0x1000),
            dst: Addr(0x1001),
            len: 1,
        });
        dma.program(DmaDescriptor {
            src: Addr(0x1001),
            dst: Addr(0x1002),
            len: 1,
        });
        assert_eq!(dma.pending(), 2);
        dma.step(SimTime::ZERO, &mut bus, &mut mem);
        dma.step(SimTime::ZERO, &mut bus, &mut mem);
        assert_eq!(mem.read_unchecked(Addr(0x1002), 1), vec![7]);
        assert_eq!(dma.pending(), 0);
    }
}
