//! Peripherals: everything on the SoC that is not a core or memory.
//!
//! Each peripheral is a plain struct with explicit state — no hidden
//! globals, no wall-clock time — so attack injectors and monitors can
//! manipulate and observe them deterministically.

pub mod actuator;
pub mod dma;
pub mod env;
pub mod irq;
pub mod nic;
pub mod otp;
pub mod sensor;
pub mod uart;
pub mod watchdog;

pub use actuator::Actuator;
pub use dma::{DmaDescriptor, DmaEngine};
pub use env::{EnvReading, EnvSensors, EnvTamper};
pub use irq::{IrqController, IrqLine};
pub use nic::{Nic, Packet, PacketKind};
pub use otp::OtpFuses;
pub use sensor::{Sensor, SensorSpoof};
pub use uart::Uart;
pub use watchdog::Watchdog;
