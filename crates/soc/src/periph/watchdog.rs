//! The hardware watchdog: the canonical *passive* countermeasure.
//!
//! The paper's critique of the state of the art is precisely that systems
//! "curtail such attacks using system reboot and reset" — i.e. the watchdog
//! is their only response path. The baseline platform configuration relies
//! on it; the CRES configuration keeps it as a backstop behind active
//! response.

use cres_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A kick-or-reset watchdog timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Watchdog {
    timeout: SimDuration,
    last_kick: SimTime,
    enabled: bool,
    fires: u32,
}

impl Watchdog {
    /// Creates an enabled watchdog with the given timeout, kicked at t=0.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero.
    pub fn new(timeout: SimDuration) -> Self {
        assert!(!timeout.is_zero(), "watchdog timeout must be non-zero");
        Watchdog {
            timeout,
            last_kick: SimTime::ZERO,
            enabled: true,
            fires: 0,
        }
    }

    /// Services the watchdog.
    pub fn kick(&mut self, now: SimTime) {
        self.last_kick = now;
    }

    /// True when the watchdog would fire at `now`.
    pub fn expired(&self, now: SimTime) -> bool {
        self.enabled && now.saturating_since(self.last_kick) >= self.timeout
    }

    /// Acknowledges a firing: records it and rearms from `now`. Returns
    /// true when a firing actually occurred.
    pub fn fire_and_rearm(&mut self, now: SimTime) -> bool {
        if !self.expired(now) {
            return false;
        }
        self.fires += 1;
        self.last_kick = now;
        true
    }

    /// Number of times the watchdog has fired.
    pub fn fire_count(&self) -> u32 {
        self.fires
    }

    /// The configured timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    /// Disables the watchdog (some attacks do exactly this first).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Re-enables the watchdog.
    pub fn enable(&mut self, now: SimTime) {
        self.enabled = true;
        self.last_kick = now;
    }

    /// True while enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> SimTime {
        SimTime::at_cycle(c)
    }

    #[test]
    fn kicked_watchdog_does_not_expire() {
        let mut w = Watchdog::new(SimDuration::cycles(100));
        w.kick(t(50));
        assert!(!w.expired(t(149)));
        assert!(w.expired(t(150)));
    }

    #[test]
    fn fire_and_rearm_counts() {
        let mut w = Watchdog::new(SimDuration::cycles(10));
        assert!(!w.fire_and_rearm(t(5)));
        assert!(w.fire_and_rearm(t(10)));
        assert_eq!(w.fire_count(), 1);
        // rearmed: not expired immediately after
        assert!(!w.expired(t(15)));
        assert!(w.fire_and_rearm(t(20)));
        assert_eq!(w.fire_count(), 2);
    }

    #[test]
    fn disabled_watchdog_never_fires() {
        let mut w = Watchdog::new(SimDuration::cycles(10));
        w.disable();
        assert!(!w.expired(t(1_000_000)));
        assert!(!w.fire_and_rearm(t(1_000_000)));
        w.enable(t(1_000_000));
        assert!(w.is_enabled());
        assert!(!w.expired(t(1_000_005)));
        assert!(w.expired(t(1_000_010)));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_timeout_panics() {
        Watchdog::new(SimDuration::ZERO);
    }
}
