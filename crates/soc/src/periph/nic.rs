//! The network interface: packet queues, rate accounting and quarantine.
//!
//! The NIC is both a service surface (telemetry out, commands in) and an
//! attack surface (floods, malformed packets, exfiltration). The response
//! manager's network countermeasures act here: quarantine drops everything,
//! rate-limiting caps ingress per window.

use cres_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Coarse packet classes — enough for signature and rate monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// Outbound measurement/telemetry traffic.
    Telemetry,
    /// Inbound control commands.
    Command,
    /// Firmware update transfer.
    Update,
    /// Structurally malformed traffic (fuzzing / exploit attempts).
    Malformed,
    /// Bulk outbound data inconsistent with the device profile
    /// (exfiltration).
    Exfil,
}

/// A network packet (metadata-level model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Source node address.
    pub src: u16,
    /// Destination node address.
    pub dst: u16,
    /// Payload length in bytes.
    pub len: u32,
    /// Traffic class.
    pub kind: PacketKind,
    /// When the packet entered the NIC.
    pub at: SimTime,
}

/// Aggregate NIC counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NicStats {
    /// Packets accepted into the RX queue.
    pub rx_accepted: u64,
    /// Packets dropped at ingress (quarantine, rate limit or overflow).
    pub rx_dropped: u64,
    /// Packets transmitted.
    pub tx_sent: u64,
    /// Packets refused at egress (quarantine).
    pub tx_blocked: u64,
}

/// The network interface controller.
#[derive(Debug, Clone)]
pub struct Nic {
    rx_queue: VecDeque<Packet>,
    rx_capacity: usize,
    /// Metadata log of every ingress attempt (accepted or dropped) — the
    /// tap a hardware network probe would expose to a monitor.
    rx_log: Vec<Packet>,
    tx_log: Vec<Packet>,
    stats: NicStats,
    quarantined: bool,
    /// `Some(max packets per window)` when rate limiting is active.
    rate_limit: Option<u32>,
    window_start: SimTime,
    window_len: u64,
    window_count: u32,
}

impl Default for Nic {
    fn default() -> Self {
        Self::new(256)
    }
}

impl Nic {
    /// Window length (cycles) over which the rate limit applies.
    pub const WINDOW_CYCLES: u64 = 10_000;

    /// Creates a NIC with an RX queue of `rx_capacity` packets.
    pub fn new(rx_capacity: usize) -> Self {
        Nic {
            rx_queue: VecDeque::new(),
            rx_capacity: rx_capacity.max(1),
            rx_log: Vec::new(),
            tx_log: Vec::new(),
            stats: NicStats::default(),
            quarantined: false,
            rate_limit: None,
            window_start: SimTime::ZERO,
            window_len: Self::WINDOW_CYCLES,
            window_count: 0,
        }
    }

    /// Delivers an inbound packet from the network. Returns true when the
    /// packet was accepted into the RX queue.
    pub fn deliver(&mut self, packet: Packet) -> bool {
        self.rx_log.push(packet);
        if self.quarantined {
            self.stats.rx_dropped += 1;
            return false;
        }
        if let Some(limit) = self.rate_limit {
            if packet.at.saturating_since(self.window_start).as_cycles() >= self.window_len {
                self.window_start = packet.at;
                self.window_count = 0;
            }
            if self.window_count >= limit {
                self.stats.rx_dropped += 1;
                return false;
            }
            self.window_count += 1;
        }
        if self.rx_queue.len() >= self.rx_capacity {
            self.stats.rx_dropped += 1;
            return false;
        }
        self.rx_queue.push_back(packet);
        self.stats.rx_accepted += 1;
        true
    }

    /// Pops the next received packet, if any.
    pub fn receive(&mut self) -> Option<Packet> {
        self.rx_queue.pop_front()
    }

    /// Transmits a packet. Returns false when quarantined.
    pub fn send(&mut self, packet: Packet) -> bool {
        if self.quarantined {
            self.stats.tx_blocked += 1;
            return false;
        }
        self.tx_log.push(packet);
        self.stats.tx_sent += 1;
        true
    }

    /// All packets transmitted so far (the "wire" an exfil monitor taps).
    pub fn tx_log(&self) -> &[Packet] {
        &self.tx_log
    }

    /// Metadata of every ingress attempt, accepted or dropped (the probe a
    /// rate/signature monitor taps).
    pub fn rx_log(&self) -> &[Packet] {
        &self.rx_log
    }

    /// Number of packets waiting in the RX queue.
    pub fn rx_pending(&self) -> usize {
        self.rx_queue.len()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> NicStats {
        self.stats
    }

    /// Quarantines the NIC: all ingress and egress dropped.
    pub fn quarantine(&mut self) {
        self.quarantined = true;
    }

    /// Lifts quarantine.
    pub fn release(&mut self) {
        self.quarantined = false;
    }

    /// True while quarantined.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// Applies an ingress rate limit of `max_per_window` packets per
    /// [`Nic::WINDOW_CYCLES`].
    pub fn set_rate_limit(&mut self, max_per_window: u32) {
        self.rate_limit = Some(max_per_window);
    }

    /// Removes the ingress rate limit.
    pub fn clear_rate_limit(&mut self) {
        self.rate_limit = None;
    }

    /// True while a rate limit is active.
    pub fn is_rate_limited(&self) -> bool {
        self.rate_limit.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(at: u64, kind: PacketKind) -> Packet {
        Packet {
            src: 1,
            dst: 2,
            len: 64,
            kind,
            at: SimTime::at_cycle(at),
        }
    }

    #[test]
    fn deliver_and_receive_fifo() {
        let mut nic = Nic::new(8);
        assert!(nic.deliver(pkt(0, PacketKind::Command)));
        assert!(nic.deliver(pkt(1, PacketKind::Telemetry)));
        assert_eq!(nic.rx_pending(), 2);
        assert_eq!(nic.receive().unwrap().kind, PacketKind::Command);
        assert_eq!(nic.receive().unwrap().kind, PacketKind::Telemetry);
        assert!(nic.receive().is_none());
    }

    #[test]
    fn overflow_drops() {
        let mut nic = Nic::new(2);
        assert!(nic.deliver(pkt(0, PacketKind::Command)));
        assert!(nic.deliver(pkt(1, PacketKind::Command)));
        assert!(!nic.deliver(pkt(2, PacketKind::Command)));
        assert_eq!(nic.stats().rx_dropped, 1);
        assert_eq!(nic.stats().rx_accepted, 2);
    }

    #[test]
    fn quarantine_blocks_both_directions() {
        let mut nic = Nic::new(8);
        nic.quarantine();
        assert!(!nic.deliver(pkt(0, PacketKind::Command)));
        assert!(!nic.send(pkt(0, PacketKind::Telemetry)));
        assert_eq!(nic.stats().tx_blocked, 1);
        nic.release();
        assert!(nic.deliver(pkt(1, PacketKind::Command)));
        assert!(nic.send(pkt(1, PacketKind::Telemetry)));
    }

    #[test]
    fn rate_limit_caps_window() {
        let mut nic = Nic::new(100);
        nic.set_rate_limit(3);
        for i in 0..5 {
            nic.deliver(pkt(i, PacketKind::Command));
        }
        assert_eq!(nic.stats().rx_accepted, 3);
        assert_eq!(nic.stats().rx_dropped, 2);
        // next window resets the budget
        for i in 0..2 {
            assert!(nic.deliver(pkt(Nic::WINDOW_CYCLES + i, PacketKind::Command)));
        }
        nic.clear_rate_limit();
        assert!(!nic.is_rate_limited());
    }

    #[test]
    fn tx_log_records_sent_packets() {
        let mut nic = Nic::new(8);
        nic.send(pkt(5, PacketKind::Exfil));
        assert_eq!(nic.tx_log().len(), 1);
        assert_eq!(nic.tx_log()[0].kind, PacketKind::Exfil);
        assert_eq!(nic.stats().tx_sent, 1);
    }
}
