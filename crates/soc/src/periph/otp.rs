//! One-time-programmable fuses and monotonic counters.
//!
//! OTP is the hardware root of the chain of trust: the boot ROM's public-key
//! fingerprint and the anti-rollback counters live here. Write-once and
//! monotonicity are enforced by construction — the two properties whose
//! absence enables the downgrade attacks of §IV (experiment E10).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Errors from fuse operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OtpError {
    /// The named fuse word was already programmed.
    AlreadyProgrammed(String),
    /// Attempted to decrease a monotonic counter.
    CounterRegression {
        /// Counter name.
        name: String,
        /// Current value.
        current: u64,
        /// Rejected new value.
        attempted: u64,
    },
}

impl fmt::Display for OtpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OtpError::AlreadyProgrammed(n) => write!(f, "fuse {n:?} already programmed"),
            OtpError::CounterRegression {
                name,
                current,
                attempted,
            } => write!(
                f,
                "monotonic counter {name:?} cannot go from {current} to {attempted}"
            ),
        }
    }
}

impl std::error::Error for OtpError {}

/// The OTP fuse bank.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OtpFuses {
    words: HashMap<String, Vec<u8>>,
    counters: HashMap<String, u64>,
}

impl OtpFuses {
    /// Creates an unprogrammed fuse bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Programs a named fuse word. Each word can be written exactly once.
    ///
    /// # Errors
    ///
    /// Returns [`OtpError::AlreadyProgrammed`] on a second write.
    pub fn program(&mut self, name: &str, data: &[u8]) -> Result<(), OtpError> {
        if self.words.contains_key(name) {
            return Err(OtpError::AlreadyProgrammed(name.to_string()));
        }
        self.words.insert(name.to_string(), data.to_vec());
        Ok(())
    }

    /// Reads a programmed fuse word.
    pub fn read(&self, name: &str) -> Option<&[u8]> {
        self.words.get(name).map(Vec::as_slice)
    }

    /// Current value of a monotonic counter (0 when never advanced).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Advances a monotonic counter to `value`.
    ///
    /// # Errors
    ///
    /// Returns [`OtpError::CounterRegression`] when `value` is below the
    /// current value (equal is a no-op and allowed).
    pub fn advance_counter(&mut self, name: &str, value: u64) -> Result<(), OtpError> {
        let current = self.counter(name);
        if value < current {
            return Err(OtpError::CounterRegression {
                name: name.to_string(),
                current,
                attempted: value,
            });
        }
        self.counters.insert(name.to_string(), value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_once_read_many() {
        let mut otp = OtpFuses::new();
        otp.program("root_key_hash", &[1, 2, 3]).unwrap();
        assert_eq!(otp.read("root_key_hash"), Some([1, 2, 3].as_slice()));
        assert_eq!(otp.read("root_key_hash"), Some([1, 2, 3].as_slice()));
        assert_eq!(otp.read("missing"), None);
    }

    #[test]
    fn double_program_rejected() {
        let mut otp = OtpFuses::new();
        otp.program("k", &[1]).unwrap();
        assert_eq!(
            otp.program("k", &[2]),
            Err(OtpError::AlreadyProgrammed("k".into()))
        );
        // original value intact
        assert_eq!(otp.read("k"), Some([1].as_slice()));
    }

    #[test]
    fn counters_only_advance() {
        let mut otp = OtpFuses::new();
        assert_eq!(otp.counter("arb"), 0);
        otp.advance_counter("arb", 3).unwrap();
        otp.advance_counter("arb", 3).unwrap(); // equal is fine
        otp.advance_counter("arb", 7).unwrap();
        assert_eq!(otp.counter("arb"), 7);
        let err = otp.advance_counter("arb", 5).unwrap_err();
        assert!(matches!(
            err,
            OtpError::CounterRegression {
                current: 7,
                attempted: 5,
                ..
            }
        ));
        assert_eq!(otp.counter("arb"), 7);
    }

    #[test]
    fn counters_are_independent() {
        let mut otp = OtpFuses::new();
        otp.advance_counter("a", 5).unwrap();
        otp.advance_counter("b", 1).unwrap();
        assert_eq!(otp.counter("a"), 5);
        assert_eq!(otp.counter("b"), 1);
    }
}
