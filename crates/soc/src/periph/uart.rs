//! A console UART: line-oriented transmit log.
//!
//! The baseline platform writes its security log lines here — in
//! general-purpose memory, where an attacker can wipe them. Experiment E6
//! contrasts this with the SSM's hash-chained evidence store.

use serde::{Deserialize, Serialize};

/// A transmit-only UART with a bounded line log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Uart {
    lines: Vec<String>,
    capacity: usize,
    tx_bytes: u64,
}

impl Default for Uart {
    fn default() -> Self {
        Self::new(1024)
    }
}

impl Uart {
    /// Creates a UART retaining at most `capacity` lines.
    pub fn new(capacity: usize) -> Self {
        Uart {
            lines: Vec::new(),
            capacity: capacity.max(1),
            tx_bytes: 0,
        }
    }

    /// Transmits one line.
    pub fn write_line(&mut self, line: impl Into<String>) {
        let line = line.into();
        self.tx_bytes += line.len() as u64 + 1;
        if self.lines.len() == self.capacity {
            self.lines.remove(0);
        }
        self.lines.push(line);
    }

    /// Retained lines, oldest first.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Total bytes ever transmitted (monotone even across wipes).
    pub fn tx_bytes(&self) -> u64 {
        self.tx_bytes
    }

    /// Erases the retained log — what a post-compromise attacker does to
    /// cover their tracks.
    pub fn wipe(&mut self) {
        self.lines.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_accumulate_in_order() {
        let mut u = Uart::new(10);
        u.write_line("boot ok");
        u.write_line("net up");
        assert_eq!(u.lines(), &["boot ok".to_string(), "net up".to_string()]);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut u = Uart::new(2);
        u.write_line("a");
        u.write_line("b");
        u.write_line("c");
        assert_eq!(u.lines(), &["b".to_string(), "c".to_string()]);
    }

    #[test]
    fn wipe_clears_lines_but_not_counter() {
        let mut u = Uart::new(4);
        u.write_line("evidence");
        let bytes = u.tx_bytes();
        u.wipe();
        assert!(u.lines().is_empty());
        assert_eq!(u.tx_bytes(), bytes);
    }
}
