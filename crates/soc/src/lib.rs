#![warn(missing_docs)]

//! Simulated multi-processor system-on-chip substrate.
//!
//! The paper's microarchitectural claims are about *topology*: who can
//! observe which resource, who can isolate whom, and which memory a
//! compromised general-purpose core can reach. This crate models exactly
//! that, cycle-approximately, with no pretence of ISA-level fidelity:
//!
//! * [`addr`] — physical addresses, masters, regions and permission flags,
//! * [`mem`] — the memory map and MPU-style per-master permission matrix,
//! * [`bus`] — the interconnect: checked transactions, a tap ring buffer
//!   that resource monitors sample, per-master gating (the response
//!   manager's "physically isolate a compromised resource" lever),
//! * [`task`] — workload model: tasks as basic-block graphs emitting memory
//!   traffic, with control-flow edges the CFI monitor checks,
//! * [`cpu`] — processing elements that run tasks,
//! * [`periph`] — UART, NIC, sensors, actuators, watchdog, environmental
//!   (voltage/clock/temperature) sensors, OTP fuses and a DMA engine,
//! * [`soc`] — the assembled [`soc::Soc`] with a builder.
//!
//! The substrate is deliberately passive: it never schedules its own events.
//! The platform crate (`cres-platform`) owns the discrete-event loop and
//! calls into `Soc` methods from events, which keeps every layer below the
//! platform unit-testable without a simulator.
//!
//! # Example
//!
//! ```
//! use cres_soc::soc::SocBuilder;
//! use cres_soc::addr::{Addr, MasterId, Perms};
//! use cres_sim::SimTime;
//!
//! let mut soc = SocBuilder::new()
//!     .region("sram", Addr(0x2000_0000), 0x1000, Perms::rw())
//!     .build();
//! let cpu = MasterId::CPU0;
//! let r = soc.bus.write(SimTime::ZERO, cpu, Addr(0x2000_0010), &[1, 2, 3], &mut soc.mem);
//! assert!(r.is_ok());
//! ```

pub mod addr;
pub mod bus;
pub mod cpu;
pub mod mem;
pub mod periph;
pub mod soc;
pub mod task;

pub use addr::{Addr, AddrRange, BusOp, MasterId, Perms, RegionId};
pub use bus::{Bus, BusError, TxnRecord};
pub use soc::{Soc, SocBuilder};
