//! The memory map and the MPU-style per-master permission matrix.
//!
//! The permission matrix is the **single source of truth for isolation** in
//! the whole platform. "The SSM is physically isolated" is literally the
//! absence of `(app core, ssm-private-region)` entries in this matrix, and
//! the response manager's *physical isolation* countermeasure operates by
//! revoking entries (plus bus gating). Experiments E7 and E9 read and
//! manipulate it directly.

use crate::addr::{Addr, AddrRange, BusOp, MasterId, Perms, RegionId};
use std::collections::HashMap;
use std::fmt;

/// A contiguous region of backed physical memory.
#[derive(Debug, Clone)]
pub struct MemoryRegion {
    id: RegionId,
    name: String,
    range: AddrRange,
    data: Vec<u8>,
    /// Base (architectural) permissions, intersected with per-master grants.
    base_perms: Perms,
}

impl MemoryRegion {
    /// Region identifier.
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// Human-readable name, e.g. `"sram"` or `"ssm_private"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The address range this region occupies.
    pub fn range(&self) -> AddrRange {
        self.range
    }

    /// Architectural permissions, before per-master restriction.
    pub fn base_perms(&self) -> Perms {
        self.base_perms
    }

    /// Raw contents (for checkpointing and forensics).
    pub fn data(&self) -> &[u8] {
        &self.data
    }
}

/// Why a memory access failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// No region is mapped at the address.
    Unmapped(Addr),
    /// The access crosses the end of its region.
    OutOfBounds(Addr),
    /// The MPU denied the access for this master.
    Denied {
        /// Master that attempted the access.
        master: MasterId,
        /// Operation that was attempted.
        op: BusOp,
        /// Address of the attempt.
        addr: Addr,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped(a) => write!(f, "unmapped address {a}"),
            MemError::OutOfBounds(a) => write!(f, "access at {a} crosses region boundary"),
            MemError::Denied { master, op, addr } => {
                write!(f, "mpu denied {op} by {master} at {addr}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// The full memory map plus the per-master permission matrix.
#[derive(Debug, Clone, Default)]
pub struct MemoryMap {
    regions: Vec<MemoryRegion>,
    /// Per-(master, region) grants. Missing entry = no access.
    grants: HashMap<(MasterId, RegionId), Perms>,
}

impl MemoryMap {
    /// Creates an empty memory map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a region and grants every master the region's base permissions
    /// (callers then restrict with [`MemoryMap::revoke`] /
    /// [`MemoryMap::grant`]).
    ///
    /// # Panics
    ///
    /// Panics if the region overlaps an existing one or has zero length.
    pub fn add_region(&mut self, name: &str, base: Addr, len: u64, perms: Perms) -> RegionId {
        assert!(len > 0, "region {name:?} must have non-zero length");
        let range = AddrRange::new(base, len);
        for r in &self.regions {
            assert!(
                !r.range.overlaps(&range),
                "region {name:?} overlaps {:?}",
                r.name
            );
        }
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(MemoryRegion {
            id,
            name: name.to_string(),
            range,
            data: vec![0; len as usize],
            base_perms: perms,
        });
        for m in MasterId::ALL {
            self.grants.insert((m, id), perms);
        }
        id
    }

    /// Grants `perms` (intersected with the region's base permissions) to
    /// `master` on `region`.
    pub fn grant(&mut self, master: MasterId, region: RegionId, perms: Perms) {
        let base = self.region(region).base_perms;
        self.grants.insert((master, region), perms.intersect(base));
    }

    /// Removes all access for `master` on `region`.
    pub fn revoke(&mut self, master: MasterId, region: RegionId) {
        self.grants.insert((master, region), Perms::NONE);
    }

    /// Removes all access for `master` on every region (full lockout, used
    /// by the isolation countermeasure).
    pub fn revoke_all(&mut self, master: MasterId) {
        let ids: Vec<RegionId> = self.regions.iter().map(|r| r.id).collect();
        for id in ids {
            self.revoke(master, id);
        }
    }

    /// The effective permissions of `master` on `region`.
    pub fn effective_perms(&self, master: MasterId, region: RegionId) -> Perms {
        self.grants
            .get(&(master, region))
            .copied()
            .unwrap_or(Perms::NONE)
    }

    /// Looks up the region containing `addr`.
    pub fn region_at(&self, addr: Addr) -> Option<&MemoryRegion> {
        self.regions.iter().find(|r| r.range.contains(addr))
    }

    /// Looks up a region by id.
    ///
    /// # Panics
    ///
    /// Panics for an unknown id (region ids never dangle — they are only
    /// minted by [`MemoryMap::add_region`]).
    pub fn region(&self, id: RegionId) -> &MemoryRegion {
        &self.regions[id.0 as usize]
    }

    /// Looks up a region by name.
    pub fn region_by_name(&self, name: &str) -> Option<&MemoryRegion> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// All regions in declaration order.
    pub fn regions(&self) -> &[MemoryRegion] {
        &self.regions
    }

    /// Checks whether `master` may perform `op` over `[addr, addr+len)`.
    ///
    /// # Errors
    ///
    /// Returns the reason the access would fault.
    pub fn check(
        &self,
        master: MasterId,
        op: BusOp,
        addr: Addr,
        len: u64,
    ) -> Result<RegionId, MemError> {
        let region = self.region_at(addr).ok_or(MemError::Unmapped(addr))?;
        if len > 0 && !region.range.covers(&AddrRange::new(addr, len)) {
            return Err(MemError::OutOfBounds(addr));
        }
        let perms = self.effective_perms(master, region.id);
        if !perms.allows(op) {
            return Err(MemError::Denied { master, op, addr });
        }
        Ok(region.id)
    }

    /// Performs a checked read.
    ///
    /// # Errors
    ///
    /// Propagates [`MemError`] from the permission check.
    pub fn read(&self, master: MasterId, addr: Addr, len: u64) -> Result<Vec<u8>, MemError> {
        let id = self.check(master, BusOp::Read, addr, len)?;
        let region = self.region(id);
        let off = (addr.0 - region.range.start.0) as usize;
        Ok(region.data[off..off + len as usize].to_vec())
    }

    /// Performs a checked write.
    ///
    /// # Errors
    ///
    /// Propagates [`MemError`] from the permission check.
    pub fn write(&mut self, master: MasterId, addr: Addr, data: &[u8]) -> Result<(), MemError> {
        let id = self.check(master, BusOp::Write, addr, data.len() as u64)?;
        let region = &mut self.regions[id.0 as usize];
        let off = (addr.0 - region.range.start.0) as usize;
        region.data[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Unchecked write used by the boot ROM and attack injectors that model
    /// physical access (they bypass the MPU by construction).
    ///
    /// # Panics
    ///
    /// Panics when the range is unmapped or crosses a region boundary.
    pub fn write_unchecked(&mut self, addr: Addr, data: &[u8]) {
        let region = self
            .regions
            .iter_mut()
            .find(|r| r.range.contains(addr))
            .unwrap_or_else(|| panic!("write_unchecked at unmapped {addr}"));
        let off = (addr.0 - region.range.start.0) as usize;
        region.data[off..off + data.len()].copy_from_slice(data);
    }

    /// Unchecked read for boot/forensic tooling.
    ///
    /// # Panics
    ///
    /// Panics when the range is unmapped or crosses a region boundary.
    pub fn read_unchecked(&self, addr: Addr, len: u64) -> Vec<u8> {
        let region = self
            .region_at(addr)
            .unwrap_or_else(|| panic!("read_unchecked at unmapped {addr}"));
        let off = (addr.0 - region.range.start.0) as usize;
        region.data[off..off + len as usize].to_vec()
    }

    /// Zero-fills a whole region (key zeroisation / reset semantics).
    pub fn wipe_region(&mut self, id: RegionId) {
        self.regions[id.0 as usize].data.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> MemoryMap {
        let mut m = MemoryMap::new();
        m.add_region("flash", Addr(0x0800_0000), 0x1000, Perms::rx());
        m.add_region("sram", Addr(0x2000_0000), 0x1000, Perms::rw());
        m.add_region("ssm_private", Addr(0x5000_0000), 0x400, Perms::rw());
        m
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = map();
        m.write(MasterId::CPU0, Addr(0x2000_0100), &[1, 2, 3])
            .unwrap();
        assert_eq!(
            m.read(MasterId::CPU0, Addr(0x2000_0100), 3).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn unmapped_access_fails() {
        let m = map();
        assert!(matches!(
            m.read(MasterId::CPU0, Addr(0x9999_0000), 4),
            Err(MemError::Unmapped(_))
        ));
    }

    #[test]
    fn cross_boundary_access_fails() {
        let m = map();
        assert!(matches!(
            m.read(MasterId::CPU0, Addr(0x2000_0FFE), 4),
            Err(MemError::OutOfBounds(_))
        ));
    }

    #[test]
    fn base_perms_enforced() {
        let mut m = map();
        // flash is rx: writes must fail even with default grants
        assert!(matches!(
            m.write(MasterId::CPU0, Addr(0x0800_0000), &[0]),
            Err(MemError::Denied { .. })
        ));
    }

    #[test]
    fn revoke_isolates_master() {
        let mut m = map();
        let ssm_region = m.region_by_name("ssm_private").unwrap().id();
        for cpu in 0..4 {
            m.revoke(MasterId::cpu(cpu), ssm_region);
        }
        assert!(m.read(MasterId::CPU0, Addr(0x5000_0000), 4).is_err());
        assert!(m.read(MasterId::SSM, Addr(0x5000_0000), 4).is_ok());
    }

    #[test]
    fn revoke_all_locks_out_master() {
        let mut m = map();
        m.revoke_all(MasterId::DMA);
        assert!(m.read(MasterId::DMA, Addr(0x2000_0000), 4).is_err());
        assert!(m.read(MasterId::DMA, Addr(0x0800_0000), 4).is_err());
        // others unaffected
        assert!(m.read(MasterId::CPU1, Addr(0x2000_0000), 4).is_ok());
    }

    #[test]
    fn grant_cannot_exceed_base_perms() {
        let mut m = map();
        let flash = m.region_by_name("flash").unwrap().id();
        m.grant(MasterId::CPU0, flash, Perms::rwx());
        // write still denied because base is rx
        assert!(m.write(MasterId::CPU0, Addr(0x0800_0000), &[0]).is_err());
        assert!(m
            .check(MasterId::CPU0, BusOp::Exec, Addr(0x0800_0000), 4)
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_regions_panic() {
        let mut m = map();
        m.add_region("bad", Addr(0x2000_0800), 0x1000, Perms::rw());
    }

    #[test]
    #[should_panic(expected = "non-zero length")]
    fn zero_length_region_panics() {
        let mut m = MemoryMap::new();
        m.add_region("empty", Addr(0), 0, Perms::rw());
    }

    #[test]
    fn unchecked_access_bypasses_mpu() {
        let mut m = map();
        let ssm_region = m.region_by_name("ssm_private").unwrap().id();
        m.revoke(MasterId::CPU0, ssm_region);
        // physical attacker writes anyway
        m.write_unchecked(Addr(0x5000_0000), &[0xAA]);
        assert_eq!(m.read_unchecked(Addr(0x5000_0000), 1), vec![0xAA]);
    }

    #[test]
    fn wipe_region_zeroises() {
        let mut m = map();
        m.write(MasterId::CPU0, Addr(0x2000_0000), &[7; 16])
            .unwrap();
        let sram = m.region_by_name("sram").unwrap().id();
        m.wipe_region(sram);
        assert_eq!(
            m.read(MasterId::CPU0, Addr(0x2000_0000), 16).unwrap(),
            vec![0; 16]
        );
    }

    #[test]
    fn region_lookup() {
        let m = map();
        assert_eq!(m.region_at(Addr(0x2000_0010)).unwrap().name(), "sram");
        assert!(m.region_at(Addr(0x3000_0000)).is_none());
        assert!(m.region_by_name("nope").is_none());
        assert_eq!(m.regions().len(), 3);
    }

    #[test]
    fn zero_length_access_checks_mapping_only() {
        let m = map();
        assert!(m
            .check(MasterId::CPU0, BusOp::Read, Addr(0x2000_0000), 0)
            .is_ok());
    }
}
