//! Table I as checked data: derived embedded security requirements, the
//! existing landscape, and the workspace module implementing each
//! requirement.
//!
//! The paper's Table I maps NIS principles and CSF functions through
//! operational security requirements to *derived embedded security
//! requirements*, annotated with the existing landscape (international
//! standards ❖, commercial technology ◆, academic work ✶). This module
//! reproduces that table and extends it with the column the reproduction
//! adds: `implemented_by`, the module in this workspace realising the
//! requirement. A test pins that **every derived requirement is
//! implemented**, which is the machine-checkable form of "the platform
//! satisfies the paper's requirement set".

use crate::framework::{CsfFunction, NisPrinciple};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Provenance class of a landscape entry, matching Table I's legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LandscapeKind {
    /// ❖ International standard or assessment method.
    Standard,
    /// ◆ Commercially available technology.
    Commercial,
    /// ✶ Academic research framework/solution.
    Academic,
}

/// One entry in the existing-landscape column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LandscapeEntry {
    /// Name as listed in the paper (e.g. `"ARM TrustZone"`).
    pub name: &'static str,
    /// Provenance class.
    pub kind: LandscapeKind,
}

/// A derived embedded security requirement with its implementation pointer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Requirement {
    /// Requirement name as derived in §III.
    pub name: &'static str,
    /// Workspace modules implementing it (`crate::module` paths). Empty
    /// means unimplemented — the coverage test forbids that.
    pub implemented_by: &'static [&'static str],
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Table1Row {
    /// NIS security principle.
    pub nis: NisPrinciple,
    /// CSF core function.
    pub csf: CsfFunction,
    /// Operational security requirements (middle column).
    pub operational: &'static [&'static str],
    /// Derived embedded security requirements with implementations.
    pub requirements: Vec<Requirement>,
    /// The existing landscape the paper surveys.
    pub landscape: Vec<LandscapeEntry>,
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} / {}", self.nis, self.csf)?;
        for r in &self.requirements {
            writeln!(f, "  - {} -> {}", r.name, r.implemented_by.join(", "))?;
        }
        Ok(())
    }
}

fn s(name: &'static str) -> LandscapeEntry {
    LandscapeEntry {
        name,
        kind: LandscapeKind::Standard,
    }
}
fn c(name: &'static str) -> LandscapeEntry {
    LandscapeEntry {
        name,
        kind: LandscapeKind::Commercial,
    }
}
fn a(name: &'static str) -> LandscapeEntry {
    LandscapeEntry {
        name,
        kind: LandscapeKind::Academic,
    }
}

/// Builds the full Table I model.
pub fn table1() -> Vec<Table1Row> {
    vec![
        Table1Row {
            nis: NisPrinciple::ManagingSecurityRisks,
            csf: CsfFunction::Identify,
            operational: &["Asset Management"],
            requirements: vec![
                Requirement {
                    name: "Risk Assessment",
                    implemented_by: &["cres_policy::stride (likelihood x impact scoring)"],
                },
                Requirement {
                    name: "Threat and Security Modelling",
                    implemented_by: &["cres_policy::stride::ThreatModel"],
                },
                Requirement {
                    name: "Attack surface identification",
                    implemented_by: &["cres_policy::assets::AssetInventory (exposure)"],
                },
                Requirement {
                    name: "Secure-by-design practises",
                    implemented_by: &["cres_soc::mem (default-deny permission matrix)"],
                },
            ],
            landscape: vec![
                s("STRIDE"),
                s("PASTA"),
                s("CVSS"),
                s("DREAD"),
                s("HARA"),
                s("IEC 61508"),
                s("ISO 26262 (ASIL A-D)"),
                s("ISO/IEC 15408"),
                s("Common Criteria"),
                s("FIPS 140-2"),
                s("ETSI TVRA"),
                s("ISO/IEC 27005"),
                s("SAE J3061"),
                s("ISO/IEC 27001"),
            ],
        },
        Table1Row {
            nis: NisPrinciple::ProtectingAgainstCyberAttack,
            csf: CsfFunction::Protect,
            operational: &[
                "Awareness Control",
                "Data Protection",
                "Protect Technology",
                "Manage & Adopt",
            ],
            requirements: vec![
                Requirement {
                    name: "Root of Trust",
                    implemented_by: &["cres_soc::periph::otp (fused key fingerprint)"],
                },
                Requirement {
                    name: "Secure boot",
                    implemented_by: &["cres_boot::rom", "cres_boot::chain"],
                },
                Requirement {
                    name: "Cryptographic protection",
                    implemented_by: &[
                        "cres_crypto::aes",
                        "cres_crypto::rsa",
                        "cres_crypto::sha2",
                        "cres_crypto::hmac",
                    ],
                },
                Requirement {
                    name: "Public-key infrastructure",
                    implemented_by: &["cres_crypto::rsa (sign/verify)", "cres_boot::image"],
                },
                Requirement {
                    name: "Resource isolation and segregation",
                    implemented_by: &["cres_soc::mem::MemoryMap", "cres_tee::tee::Tee"],
                },
            ],
            landscape: vec![
                c("Root of Trust"),
                c("Trusted Technologies"),
                c("Secure boot"),
                s("AES"),
                s("ECC"),
                s("RSA"),
                s("ECDSA"),
                s("SHA"),
                s("SSL"),
                s("Digital Certificate"),
                s("Public-Private Key Infrastructure"),
                c("ARM TrustZone"),
                c("Intel SGX"),
            ],
        },
        Table1Row {
            nis: NisPrinciple::DetectingCyberSecurityIncidents,
            csf: CsfFunction::Detect,
            operational: &[
                "Event Discovery",
                "Discover & Determine",
                "Continuous Monitoring",
                "Detect Anomalies",
                "Alert Events",
            ],
            requirements: vec![
                Requirement {
                    name: "Platform Security Architecture",
                    implemented_by: &["cres_platform (builder wiring monitors + SSM)"],
                },
                Requirement {
                    name: "Trusted Execution Environment",
                    implemented_by: &["cres_tee::tee::Tee"],
                },
                Requirement {
                    name: "Static & Dynamic Flow Integrity",
                    implemented_by: &[
                        "cres_monitor (CFI monitor over task edge sets)",
                        "cres_monitor::taint (DIFT-style information flow)",
                    ],
                },
                Requirement {
                    name: "Access Control and Policing",
                    implemented_by: &["cres_monitor (bus policing)", "cres_soc::bus"],
                },
                Requirement {
                    name: "Continuous Monitoring and Alerts",
                    implemented_by: &["cres_monitor (anomaly stats)", "cres_ssm (event intake)"],
                },
            ],
            landscape: vec![
                c("ARM Platform Security Architecture"),
                c("GlobalPlatform"),
                c("ARM TEE"),
                c("QSEE"),
                c("Kinibi"),
                a("Dover"),
                a("ARMHEx"),
                a("SECA"),
            ],
        },
        Table1Row {
            nis: NisPrinciple::MinimisingImpactOfIncidents,
            csf: CsfFunction::Respond,
            operational: &["Response Planning"],
            requirements: vec![
                Requirement {
                    name: "Platform Security Manager",
                    implemented_by: &["cres_ssm (system security manager)"],
                },
                Requirement {
                    name: "Passive countermeasure",
                    implemented_by: &["cres_soc::periph::watchdog", "cres_response (reboot)"],
                },
                Requirement {
                    name: "Active countermeasure",
                    implemented_by: &[
                        "cres_response (isolation, kill/restart, quarantine, rate-limit)",
                    ],
                },
                Requirement {
                    name: "Key zeroisation",
                    implemented_by: &["cres_tee::keystore (zeroize_all)", "cres_crypto::ct"],
                },
            ],
            landscape: vec![
                c("Trusted Platform Module"),
                c("Side-channel countermeasure"),
                c("Reboot, Reset, Key zeroisation"),
            ],
        },
        Table1Row {
            nis: NisPrinciple::MinimisingImpactOfIncidents,
            csf: CsfFunction::Recover,
            operational: &[
                "Recovery Planning",
                "Repair and Update",
                "Improve and Train",
                "Communicate",
                "Evidence Collection",
            ],
            requirements: vec![
                Requirement {
                    name: "Roll-back and Roll-forward",
                    implemented_by: &["cres_boot::update::UpdateEngine"],
                },
                Requirement {
                    name: "Fault avoidance and tolerance",
                    implemented_by: &["cres_boot::update (A/B slots, boot-attempt budget)"],
                },
                Requirement {
                    name: "Static and Dynamic Redundancy",
                    implemented_by: &[
                        "cres_boot::update (golden image)",
                        "cres_soc::cpu (multi-core)",
                    ],
                },
                Requirement {
                    name: "System Monitoring",
                    implemented_by: &["cres_soc::periph::env", "cres_monitor"],
                },
                Requirement {
                    name: "Evidence Collection",
                    implemented_by: &["cres_ssm (hash-chained evidence)", "cres_forensics"],
                },
            ],
            landscape: vec![
                c("Secure Firmware Update"),
                c("Over-the-air update"),
                s("Single event upset"),
                s("Parity"),
                s("Error Correction Codes"),
                c("Hardware/Software redundancy"),
                c("Process pairs"),
                c("Voltage, clock and temperature monitors"),
            ],
        },
    ]
}

/// Renders Table I (with the implementation column) as text for E2.
pub fn render_table1() -> String {
    let mut out = String::new();
    for row in table1() {
        out.push_str(&format!(
            "== {} | CSF {} ==\n  operational: {}\n",
            row.nis,
            row.csf,
            row.operational.join("; ")
        ));
        out.push_str("  derived embedded requirements:\n");
        for r in &row.requirements {
            out.push_str(&format!(
                "    {:40} -> {}\n",
                r.name,
                r.implemented_by.join(", ")
            ));
        }
        let names: Vec<&str> = row.landscape.iter().map(|l| l.name).collect();
        out.push_str(&format!("  landscape: {}\n", names.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn five_rows_matching_the_five_functions() {
        let t = table1();
        assert_eq!(t.len(), 5);
        let functions: Vec<CsfFunction> = t.iter().map(|r| r.csf).collect();
        assert_eq!(functions, CsfFunction::ALL.to_vec());
    }

    #[test]
    fn every_requirement_is_implemented() {
        // The reproduction's core completeness check: no derived
        // requirement may be left without a workspace implementation.
        for row in table1() {
            for req in &row.requirements {
                assert!(
                    !req.implemented_by.is_empty(),
                    "requirement {:?} in {}/{} has no implementation",
                    req.name,
                    row.nis,
                    row.csf
                );
            }
        }
    }

    #[test]
    fn rows_respect_the_nis_to_csf_association() {
        for row in table1() {
            assert!(
                row.nis.csf_functions().contains(&row.csf),
                "{} should not map to {}",
                row.nis,
                row.csf
            );
        }
    }

    #[test]
    fn landscape_includes_papers_named_exemplars() {
        let all: Vec<LandscapeEntry> = table1().into_iter().flat_map(|r| r.landscape).collect();
        let names: HashSet<&str> = all.iter().map(|l| l.name).collect();
        for expected in [
            "STRIDE",
            "ARM TrustZone",
            "Intel SGX",
            "Dover",
            "ARMHEx",
            "SECA",
            "Trusted Platform Module",
            "Common Criteria",
        ] {
            assert!(names.contains(expected), "missing {expected}");
        }
        // academic entries are exactly the three the paper cites
        let academic: Vec<&str> = all
            .iter()
            .filter(|l| l.kind == LandscapeKind::Academic)
            .map(|l| l.name)
            .collect();
        assert_eq!(academic, vec!["Dover", "ARMHEx", "SECA"]);
    }

    #[test]
    fn requirement_names_are_unique() {
        let mut seen = HashSet::new();
        for row in table1() {
            for req in &row.requirements {
                assert!(
                    seen.insert(req.name),
                    "duplicate requirement {:?}",
                    req.name
                );
            }
        }
        assert!(
            seen.len() >= 20,
            "expected a rich requirement set, got {}",
            seen.len()
        );
    }

    #[test]
    fn operational_column_matches_figure1_activities() {
        for row in table1() {
            for op in row.operational {
                assert!(
                    row.csf.activities().contains(op),
                    "{op:?} not among {} activities",
                    row.csf
                );
            }
        }
    }

    #[test]
    fn render_is_complete() {
        let text = render_table1();
        for row in table1() {
            for req in &row.requirements {
                assert!(text.contains(req.name), "render missing {:?}", req.name);
            }
        }
        assert!(text.contains("cres_ssm"));
    }
}
