//! Figure 1 as a data model: the three regulatory frameworks and their
//! association.
//!
//! The paper's Figure 1 shows the NIST Risk Management Framework process
//! steps, the five NIST CSF core security functions and the four NCSC NIS
//! security principles side by side. Experiment E1 renders this model and
//! the tests pin the associations the paper's Table I relies on.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The five NIST Cybersecurity Framework core functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CsfFunction {
    /// Develop organisational understanding of cyber risk.
    Identify,
    /// Safeguards to ensure delivery of critical services.
    Protect,
    /// Discover cybersecurity events as they occur.
    Detect,
    /// Act on detected incidents.
    Respond,
    /// Restore capabilities impaired by incidents.
    Recover,
}

impl CsfFunction {
    /// All functions in framework order.
    pub const ALL: [CsfFunction; 5] = [
        CsfFunction::Identify,
        CsfFunction::Protect,
        CsfFunction::Detect,
        CsfFunction::Respond,
        CsfFunction::Recover,
    ];

    /// The operational security activities Figure 1/Table I associates with
    /// this function.
    pub fn activities(self) -> &'static [&'static str] {
        match self {
            CsfFunction::Identify => &["Asset Management"],
            CsfFunction::Protect => &[
                "Awareness Control",
                "Data Protection",
                "Protect Technology",
                "Manage & Adopt",
            ],
            CsfFunction::Detect => &[
                "Event Discovery",
                "Discover & Determine",
                "Continuous Monitoring",
                "Detect Anomalies",
                "Alert Events",
            ],
            CsfFunction::Respond => &["Response Planning"],
            CsfFunction::Recover => &[
                "Recovery Planning",
                "Repair and Update",
                "Improve and Train",
                "Communicate",
                "Evidence Collection",
            ],
        }
    }
}

impl fmt::Display for CsfFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The four NCSC NIS security principles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NisPrinciple {
    /// Principle A: managing security risks.
    ManagingSecurityRisks,
    /// Principle B: protecting against cyber attack.
    ProtectingAgainstCyberAttack,
    /// Principle C: detecting cyber security incidents.
    DetectingCyberSecurityIncidents,
    /// Principle D: minimising the impact of incidents.
    MinimisingImpactOfIncidents,
}

impl NisPrinciple {
    /// All principles in order.
    pub const ALL: [NisPrinciple; 4] = [
        NisPrinciple::ManagingSecurityRisks,
        NisPrinciple::ProtectingAgainstCyberAttack,
        NisPrinciple::DetectingCyberSecurityIncidents,
        NisPrinciple::MinimisingImpactOfIncidents,
    ];

    /// The CSF functions Table I associates with this principle. Note the
    /// 4→5 fan-out: *minimising impact* covers both Respond and Recover.
    pub fn csf_functions(self) -> &'static [CsfFunction] {
        match self {
            NisPrinciple::ManagingSecurityRisks => &[CsfFunction::Identify],
            NisPrinciple::ProtectingAgainstCyberAttack => &[CsfFunction::Protect],
            NisPrinciple::DetectingCyberSecurityIncidents => &[CsfFunction::Detect],
            NisPrinciple::MinimisingImpactOfIncidents => {
                &[CsfFunction::Respond, CsfFunction::Recover]
            }
        }
    }

    /// Human-readable name as used in the paper.
    pub fn title(self) -> &'static str {
        match self {
            NisPrinciple::ManagingSecurityRisks => "Managing Security Risks",
            NisPrinciple::ProtectingAgainstCyberAttack => "Protecting against Cyber attack",
            NisPrinciple::DetectingCyberSecurityIncidents => "Detecting Cyber Security Incidents",
            NisPrinciple::MinimisingImpactOfIncidents => {
                "Minimising the impact of cyber security incidents"
            }
        }
    }
}

impl fmt::Display for NisPrinciple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.title())
    }
}

/// The NIST RMF process steps (the left column of Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RmfStep {
    /// Prepare to execute the RMF.
    Prepare,
    /// Categorise the system and information.
    Categorize,
    /// Select controls.
    Select,
    /// Implement controls.
    Implement,
    /// Assess controls.
    Assess,
    /// Authorise the system.
    Authorize,
    /// Continuously monitor controls.
    Monitor,
}

impl RmfStep {
    /// All steps in lifecycle order.
    pub const ALL: [RmfStep; 7] = [
        RmfStep::Prepare,
        RmfStep::Categorize,
        RmfStep::Select,
        RmfStep::Implement,
        RmfStep::Assess,
        RmfStep::Authorize,
        RmfStep::Monitor,
    ];
}

/// Renders the Figure 1 model as indented text (used by experiment E1).
pub fn render_figure1() -> String {
    let mut out = String::new();
    out.push_str("NIST RMF process: ");
    let steps: Vec<String> = RmfStep::ALL.iter().map(|s| format!("{s:?}")).collect();
    out.push_str(&steps.join(" -> "));
    out.push('\n');
    for principle in NisPrinciple::ALL {
        out.push_str(&format!("NIS: {}\n", principle.title()));
        for func in principle.csf_functions() {
            out.push_str(&format!("  CSF: {func}\n"));
            for act in func.activities() {
                out.push_str(&format!("    - {act}\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn four_principles_cover_all_five_functions() {
        let covered: HashSet<CsfFunction> = NisPrinciple::ALL
            .iter()
            .flat_map(|p| p.csf_functions().iter().copied())
            .collect();
        assert_eq!(covered.len(), 5);
        for f in CsfFunction::ALL {
            assert!(covered.contains(&f), "{f} uncovered");
        }
    }

    #[test]
    fn minimising_impact_fans_out_to_respond_and_recover() {
        assert_eq!(
            NisPrinciple::MinimisingImpactOfIncidents.csf_functions(),
            &[CsfFunction::Respond, CsfFunction::Recover]
        );
    }

    #[test]
    fn each_function_has_activities() {
        for f in CsfFunction::ALL {
            assert!(!f.activities().is_empty(), "{f} has no activities");
        }
    }

    #[test]
    fn recover_includes_evidence_collection() {
        // The paper's key addition to RECOVER over pure reliability.
        assert!(CsfFunction::Recover
            .activities()
            .contains(&"Evidence Collection"));
    }

    #[test]
    fn functions_are_disjoint_across_principles() {
        let mut seen = HashSet::new();
        for p in NisPrinciple::ALL {
            for f in p.csf_functions() {
                assert!(seen.insert(*f), "{f} mapped to two principles");
            }
        }
    }

    #[test]
    fn figure1_renders_completely() {
        let text = render_figure1();
        for p in NisPrinciple::ALL {
            assert!(text.contains(p.title()));
        }
        for f in CsfFunction::ALL {
            assert!(text.contains(&format!("{f:?}")));
        }
        assert!(text.contains("Prepare"));
        assert!(text.contains("Continuous Monitoring"));
    }

    #[test]
    fn rmf_has_seven_steps() {
        assert_eq!(RmfStep::ALL.len(), 7);
    }
}
