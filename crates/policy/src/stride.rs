//! STRIDE threat modelling with likelihood × impact risk scoring.
//!
//! Table I names STRIDE among the risk/threat assessment methods under
//! IDENTIFY. The generator enumerates the STRIDE categories applicable to
//! each asset kind, scores them from exposure (likelihood) and criticality
//! (impact), and maps each threat to the detection and response
//! capabilities that mitigate it — producing the deployment's required
//! capability set.

use crate::assets::{Asset, AssetInventory, AssetKind, Exposure};
use crate::capability::{DetectionCapability, ResponseCapability};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The STRIDE threat categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StrideCategory {
    /// Pretending to be something/someone else.
    Spoofing,
    /// Unauthorised modification.
    Tampering,
    /// Denying having performed an action (no evidence trail).
    Repudiation,
    /// Exposure of confidential information.
    InformationDisclosure,
    /// Denial of service.
    DenialOfService,
    /// Gaining capabilities without authorisation.
    ElevationOfPrivilege,
}

impl StrideCategory {
    /// All six categories.
    pub const ALL: [StrideCategory; 6] = [
        StrideCategory::Spoofing,
        StrideCategory::Tampering,
        StrideCategory::Repudiation,
        StrideCategory::InformationDisclosure,
        StrideCategory::DenialOfService,
        StrideCategory::ElevationOfPrivilege,
    ];

    /// Which categories apply to an asset kind.
    pub fn applicable_to(kind: AssetKind) -> &'static [StrideCategory] {
        use StrideCategory::*;
        match kind {
            AssetKind::Sensor => &[Spoofing, Tampering, DenialOfService],
            AssetKind::Actuator => &[Tampering, DenialOfService, ElevationOfPrivilege],
            AssetKind::Firmware => &[Tampering, ElevationOfPrivilege, Repudiation],
            AssetKind::KeyMaterial => &[InformationDisclosure, Tampering],
            AssetKind::NetworkInterface => {
                &[Spoofing, DenialOfService, InformationDisclosure, Tampering]
            }
            AssetKind::SensitiveMemory => &[InformationDisclosure, Tampering],
            AssetKind::Task => &[ElevationOfPrivilege, Tampering, DenialOfService],
            AssetKind::AuditLog => &[Repudiation, Tampering],
        }
    }

    /// Detection capabilities that can observe this threat category against
    /// the given asset kind.
    pub fn detections(self, kind: AssetKind) -> Vec<DetectionCapability> {
        use DetectionCapability::*;
        match (self, kind) {
            (StrideCategory::Spoofing, AssetKind::Sensor) => vec![SensorPlausibility],
            (StrideCategory::Spoofing, _) => vec![NetworkSignature, NetworkRate],
            (StrideCategory::Tampering, AssetKind::Firmware) => {
                vec![BootMeasurement, MemoryGuard]
            }
            (StrideCategory::Tampering, AssetKind::AuditLog) => vec![MemoryGuard, BusPolicing],
            (StrideCategory::Tampering, AssetKind::Sensor) => {
                vec![SensorPlausibility, Environmental]
            }
            (StrideCategory::Tampering, _) => vec![MemoryGuard, BusPolicing],
            (StrideCategory::Repudiation, _) => vec![BusPolicing, BootMeasurement],
            (StrideCategory::InformationDisclosure, _) => {
                vec![BusPolicing, MemoryGuard, InformationFlow]
            }
            (StrideCategory::DenialOfService, AssetKind::NetworkInterface) => {
                vec![NetworkRate]
            }
            (StrideCategory::DenialOfService, _) => vec![WatchdogLiveness, NetworkRate],
            (StrideCategory::ElevationOfPrivilege, _) => {
                vec![ControlFlowIntegrity, SyscallSequence]
            }
        }
    }

    /// Response capabilities that mitigate this category against the kind.
    pub fn responses(self, kind: AssetKind) -> Vec<ResponseCapability> {
        use ResponseCapability::*;
        match (self, kind) {
            (StrideCategory::Spoofing, AssetKind::Sensor) => vec![DegradedMode, ActuatorLockout],
            (StrideCategory::Spoofing, _) => vec![QuarantineNetwork],
            (StrideCategory::Tampering, AssetKind::Firmware) => {
                vec![Rollback, GoldenRecovery]
            }
            (StrideCategory::Tampering, AssetKind::KeyMaterial) => vec![ZeroizeKeys],
            (StrideCategory::Tampering, _) => vec![IsolateMaster, RestartTask],
            (StrideCategory::Repudiation, _) => vec![DegradedMode],
            (StrideCategory::InformationDisclosure, AssetKind::KeyMaterial) => {
                vec![ZeroizeKeys, IsolateMaster]
            }
            (StrideCategory::InformationDisclosure, _) => {
                vec![IsolateMaster, QuarantineNetwork]
            }
            (StrideCategory::DenialOfService, AssetKind::NetworkInterface) => {
                vec![RateLimit, QuarantineNetwork]
            }
            (StrideCategory::DenialOfService, _) => vec![RestartTask, DegradedMode],
            (StrideCategory::ElevationOfPrivilege, _) => vec![KillTask, IsolateMaster],
        }
    }
}

impl fmt::Display for StrideCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Qualitative risk bands from the 1–25 score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RiskLevel {
    /// Score 1–4.
    Low,
    /// Score 5–9.
    Medium,
    /// Score 10–15.
    High,
    /// Score 16–25.
    Critical,
}

impl RiskLevel {
    /// Bands a raw 1–25 score.
    pub fn from_score(score: u8) -> RiskLevel {
        match score {
            0..=4 => RiskLevel::Low,
            5..=9 => RiskLevel::Medium,
            10..=15 => RiskLevel::High,
            _ => RiskLevel::Critical,
        }
    }
}

/// One identified threat.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Threat {
    /// Threat identifier.
    pub id: u32,
    /// Asset id the threat applies to.
    pub asset: u32,
    /// STRIDE category.
    pub category: StrideCategory,
    /// Likelihood 1–5 (derived from exposure).
    pub likelihood: u8,
    /// Impact 1–5 (the asset's criticality).
    pub impact: u8,
}

impl Threat {
    /// Risk score = likelihood × impact (1–25).
    pub fn score(&self) -> u8 {
        self.likelihood * self.impact
    }

    /// Banded risk level.
    pub fn level(&self) -> RiskLevel {
        RiskLevel::from_score(self.score())
    }
}

/// A complete threat model: every applicable (asset, category) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreatModel {
    threats: Vec<Threat>,
}

fn likelihood(exposure: Exposure) -> u8 {
    match exposure {
        Exposure::Physical => 2,
        Exposure::Local => 3,
        Exposure::Remote => 5,
    }
}

impl ThreatModel {
    /// Generates the threat model for an inventory.
    pub fn generate(inventory: &AssetInventory) -> Self {
        let mut threats = Vec::new();
        for asset in inventory.assets() {
            for category in StrideCategory::applicable_to(asset.kind) {
                threats.push(Threat {
                    id: threats.len() as u32,
                    asset: asset.id,
                    category: *category,
                    likelihood: likelihood(asset.exposure),
                    impact: asset.criticality,
                });
            }
        }
        ThreatModel { threats }
    }

    /// All threats.
    pub fn threats(&self) -> &[Threat] {
        &self.threats
    }

    /// Threats sorted by descending risk score (the prioritisation step).
    pub fn prioritized(&self) -> Vec<&Threat> {
        let mut v: Vec<&Threat> = self.threats.iter().collect();
        v.sort_by(|a, b| b.score().cmp(&a.score()).then(a.id.cmp(&b.id)));
        v
    }

    /// The union of detection capabilities the model requires.
    pub fn required_detections(&self, inventory: &AssetInventory) -> BTreeSet<DetectionCapability> {
        self.threats
            .iter()
            .filter_map(|t| inventory.get(t.asset).map(|a| (t, a)))
            .flat_map(|(t, a): (&Threat, &Asset)| t.category.detections(a.kind))
            .collect()
    }

    /// The union of response capabilities the model requires.
    pub fn required_responses(&self, inventory: &AssetInventory) -> BTreeSet<ResponseCapability> {
        self.threats
            .iter()
            .filter_map(|t| inventory.get(t.asset).map(|a| (t, a)))
            .flat_map(|(t, a): (&Threat, &Asset)| t.category.responses(a.kind))
            .collect()
    }

    /// Fraction of threats for which at least one required detection is in
    /// `installed` — the coverage number E2/E3 report per configuration.
    pub fn detection_coverage(
        &self,
        inventory: &AssetInventory,
        installed: &BTreeSet<DetectionCapability>,
    ) -> f64 {
        if self.threats.is_empty() {
            return 1.0;
        }
        let covered = self
            .threats
            .iter()
            .filter(|t| {
                let Some(asset) = inventory.get(t.asset) else {
                    return false;
                };
                t.category
                    .detections(asset.kind)
                    .iter()
                    .any(|d| installed.contains(d))
            })
            .count();
        covered as f64 / self.threats.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (AssetInventory, ThreatModel) {
        let inv = AssetInventory::substation_example();
        let tm = ThreatModel::generate(&inv);
        (inv, tm)
    }

    #[test]
    fn every_asset_gets_its_applicable_threats() {
        let (inv, tm) = model();
        for asset in inv.assets() {
            let expected = StrideCategory::applicable_to(asset.kind).len();
            let got = tm.threats().iter().filter(|t| t.asset == asset.id).count();
            assert_eq!(got, expected, "asset {}", asset.name);
        }
    }

    #[test]
    fn scores_and_levels() {
        let t = Threat {
            id: 0,
            asset: 0,
            category: StrideCategory::Tampering,
            likelihood: 5,
            impact: 5,
        };
        assert_eq!(t.score(), 25);
        assert_eq!(t.level(), RiskLevel::Critical);
        assert_eq!(RiskLevel::from_score(1), RiskLevel::Low);
        assert_eq!(RiskLevel::from_score(6), RiskLevel::Medium);
        assert_eq!(RiskLevel::from_score(12), RiskLevel::High);
    }

    #[test]
    fn prioritized_is_descending() {
        let (_, tm) = model();
        let p = tm.prioritized();
        for w in p.windows(2) {
            assert!(w[0].score() >= w[1].score());
        }
        assert_eq!(p.len(), tm.threats().len());
    }

    #[test]
    fn remote_exposure_raises_likelihood() {
        let mut inv = AssetInventory::new();
        inv.add("remote", AssetKind::Task, 3, Exposure::Remote);
        inv.add("physical", AssetKind::Task, 3, Exposure::Physical);
        let tm = ThreatModel::generate(&inv);
        let remote_max = tm
            .threats()
            .iter()
            .filter(|t| t.asset == 0)
            .map(Threat::score)
            .max();
        let physical_max = tm
            .threats()
            .iter()
            .filter(|t| t.asset == 1)
            .map(Threat::score)
            .max();
        assert!(remote_max > physical_max);
    }

    #[test]
    fn substation_requires_rich_capability_set() {
        let (inv, tm) = model();
        let det = tm.required_detections(&inv);
        let resp = tm.required_responses(&inv);
        // the paper's point: a realistic CI deployment needs nearly the
        // full active capability set
        assert!(det.contains(&DetectionCapability::SensorPlausibility));
        assert!(det.contains(&DetectionCapability::ControlFlowIntegrity));
        assert!(det.contains(&DetectionCapability::BootMeasurement));
        assert!(resp.contains(&ResponseCapability::IsolateMaster));
        assert!(resp.contains(&ResponseCapability::GoldenRecovery));
        assert!(resp.contains(&ResponseCapability::ZeroizeKeys));
        assert!(det.len() >= 8, "detections: {det:?}");
        assert!(resp.len() >= 8, "responses: {resp:?}");
    }

    #[test]
    fn coverage_full_vs_watchdog_only() {
        let (inv, tm) = model();
        let full: BTreeSet<_> = DetectionCapability::ALL.into_iter().collect();
        assert_eq!(tm.detection_coverage(&inv, &full), 1.0);
        // the passive baseline's only detector
        let watchdog_only: BTreeSet<_> = [DetectionCapability::WatchdogLiveness]
            .into_iter()
            .collect();
        let c = tm.detection_coverage(&inv, &watchdog_only);
        assert!(c < 0.5, "watchdog-only coverage should be poor, got {c}");
        let none = BTreeSet::new();
        assert_eq!(tm.detection_coverage(&inv, &none), 0.0);
    }

    #[test]
    fn every_category_has_mitigations_for_every_kind() {
        for kind in AssetKind::ALL {
            for cat in StrideCategory::applicable_to(kind) {
                assert!(
                    !cat.detections(kind).is_empty(),
                    "{cat}/{kind} undetectable"
                );
                assert!(!cat.responses(kind).is_empty(), "{cat}/{kind} unmitigable");
            }
        }
    }
}
