#![warn(missing_docs)]

//! The IDENTIFY function: frameworks, assets, threat modelling and the
//! derived requirement mapping.
//!
//! This crate is the paper's §II and §III rendered as data and code:
//!
//! * [`framework`] — **Figure 1**: the core security functions, principles
//!   and activities of NIST RMF, NIST CSF and NCSC NIS,
//! * [`assets`] — asset inventory for a deployment,
//! * [`stride`] — STRIDE threat modelling with likelihood × impact risk
//!   scoring,
//! * [`capability`] — the shared vocabulary of detection and response
//!   capabilities the rest of the workspace implements,
//! * [`mapping`] — **Table I**: NIS principles ↔ CSF functions ↔
//!   operational requirements ↔ derived embedded requirements ↔ the
//!   security landscape ↔ *the module in this workspace that implements
//!   each requirement* (checked by tests, printed by experiment E2).

pub mod assets;
pub mod capability;
pub mod framework;
pub mod mapping;
pub mod stride;

pub use assets::{Asset, AssetInventory, AssetKind};
pub use capability::{DetectionCapability, ResponseCapability};
pub use framework::{CsfFunction, NisPrinciple};
pub use stride::{RiskLevel, StrideCategory, Threat, ThreatModel};
