//! Asset inventory: the first step of IDENTIFY.
//!
//! "Asset management … involves detailed understanding of an application
//! use case and respective deployment scenario" (§III-1). An
//! [`AssetInventory`] decomposes the deployment into typed assets with
//! criticality and exposure, from which the STRIDE model generates threats.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of thing an asset is — drives threat generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AssetKind {
    /// A physical input (sensor).
    Sensor,
    /// A physical output (actuator).
    Actuator,
    /// Executable firmware (a boot stage or task binary).
    Firmware,
    /// Cryptographic key material.
    KeyMaterial,
    /// A network interface.
    NetworkInterface,
    /// A memory region holding sensitive data.
    SensitiveMemory,
    /// A running software task.
    Task,
    /// Audit/evidence data.
    AuditLog,
}

impl AssetKind {
    /// All asset kinds.
    pub const ALL: [AssetKind; 8] = [
        AssetKind::Sensor,
        AssetKind::Actuator,
        AssetKind::Firmware,
        AssetKind::KeyMaterial,
        AssetKind::NetworkInterface,
        AssetKind::SensitiveMemory,
        AssetKind::Task,
        AssetKind::AuditLog,
    ];
}

impl fmt::Display for AssetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// How exposed an asset is to adversaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Exposure {
    /// Only reachable with physical access.
    Physical,
    /// Reachable from local software.
    Local,
    /// Reachable over the network.
    Remote,
}

/// One asset in the deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Asset {
    /// Unique identifier within the inventory.
    pub id: u32,
    /// Human-readable name.
    pub name: String,
    /// Asset kind.
    pub kind: AssetKind,
    /// Mission criticality 1 (low) ..= 5 (safety-critical).
    pub criticality: u8,
    /// Adversarial exposure.
    pub exposure: Exposure,
}

/// The asset inventory for a deployment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AssetInventory {
    assets: Vec<Asset>,
}

impl AssetInventory {
    /// Creates an empty inventory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an asset and returns its id.
    ///
    /// # Panics
    ///
    /// Panics when criticality is outside `1..=5`.
    pub fn add(&mut self, name: &str, kind: AssetKind, criticality: u8, exposure: Exposure) -> u32 {
        assert!(
            (1..=5).contains(&criticality),
            "criticality must be 1..=5, got {criticality}"
        );
        let id = self.assets.len() as u32;
        self.assets.push(Asset {
            id,
            name: name.to_string(),
            kind,
            criticality,
            exposure,
        });
        id
    }

    /// All assets.
    pub fn assets(&self) -> &[Asset] {
        &self.assets
    }

    /// Looks an asset up by id.
    pub fn get(&self, id: u32) -> Option<&Asset> {
        self.assets.get(id as usize)
    }

    /// Assets of a given kind.
    pub fn of_kind(&self, kind: AssetKind) -> impl Iterator<Item = &Asset> {
        self.assets.iter().filter(move |a| a.kind == kind)
    }

    /// A representative inventory for the smart-substation scenario used by
    /// examples and experiments.
    pub fn substation_example() -> Self {
        let mut inv = AssetInventory::new();
        inv.add(
            "grid frequency sensor",
            AssetKind::Sensor,
            5,
            Exposure::Physical,
        );
        inv.add("breaker actuator", AssetKind::Actuator, 5, Exposure::Local);
        inv.add("protection-relay task", AssetKind::Task, 5, Exposure::Local);
        inv.add("telemetry task", AssetKind::Task, 2, Exposure::Remote);
        inv.add(
            "application firmware",
            AssetKind::Firmware,
            4,
            Exposure::Remote,
        );
        inv.add(
            "device root key",
            AssetKind::KeyMaterial,
            5,
            Exposure::Local,
        );
        inv.add(
            "station bus NIC",
            AssetKind::NetworkInterface,
            4,
            Exposure::Remote,
        );
        inv.add(
            "measurement buffer",
            AssetKind::SensitiveMemory,
            3,
            Exposure::Local,
        );
        inv.add(
            "security event log",
            AssetKind::AuditLog,
            4,
            Exposure::Local,
        );
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut inv = AssetInventory::new();
        let id = inv.add("s1", AssetKind::Sensor, 3, Exposure::Remote);
        assert_eq!(inv.get(id).unwrap().name, "s1");
        assert!(inv.get(99).is_none());
        assert_eq!(inv.assets().len(), 1);
    }

    #[test]
    #[should_panic(expected = "criticality must be 1..=5")]
    fn bad_criticality_panics() {
        AssetInventory::new().add("x", AssetKind::Task, 0, Exposure::Local);
    }

    #[test]
    fn kind_filter() {
        let inv = AssetInventory::substation_example();
        assert_eq!(inv.of_kind(AssetKind::Task).count(), 2);
        assert_eq!(inv.of_kind(AssetKind::Sensor).count(), 1);
    }

    #[test]
    fn substation_example_covers_all_kinds() {
        let inv = AssetInventory::substation_example();
        for kind in AssetKind::ALL {
            assert!(
                inv.of_kind(kind).count() > 0,
                "substation example missing {kind}"
            );
        }
    }

    #[test]
    fn exposure_ordering() {
        assert!(Exposure::Remote > Exposure::Local);
        assert!(Exposure::Local > Exposure::Physical);
    }
}
