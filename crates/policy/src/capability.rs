//! The shared capability vocabulary.
//!
//! Detection and response capabilities name the concrete mechanisms the
//! monitor and response crates implement. The policy layer speaks in these
//! terms when deriving mitigations from threats, and the platform reports
//! its installed capability set in the same terms — which is what makes the
//! Table I coverage check (E2) and the threat-coverage matrix mechanical.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A detection mechanism the platform can deploy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DetectionCapability {
    /// Bus transaction policing against an access-window policy.
    BusPolicing,
    /// Illegal memory access detection (MPU denials).
    MemoryGuard,
    /// Control-flow integrity over task basic-block graphs.
    ControlFlowIntegrity,
    /// Syscall-sequence anomaly detection.
    SyscallSequence,
    /// Network rate / flood detection.
    NetworkRate,
    /// Network payload-class (signature) detection.
    NetworkSignature,
    /// Sensor plausibility and drift detection.
    SensorPlausibility,
    /// Voltage / clock / temperature envelope monitoring.
    Environmental,
    /// Boot-time measurement and attestation.
    BootMeasurement,
    /// Dynamic information-flow (taint) tracking from secret regions to
    /// egress sinks (ARMHEx/DIFT-class).
    InformationFlow,
    /// Watchdog liveness (the passive baseline's only detector).
    WatchdogLiveness,
}

impl DetectionCapability {
    /// Every capability, in stable order.
    pub const ALL: [DetectionCapability; 11] = [
        DetectionCapability::BusPolicing,
        DetectionCapability::MemoryGuard,
        DetectionCapability::ControlFlowIntegrity,
        DetectionCapability::SyscallSequence,
        DetectionCapability::NetworkRate,
        DetectionCapability::NetworkSignature,
        DetectionCapability::SensorPlausibility,
        DetectionCapability::Environmental,
        DetectionCapability::BootMeasurement,
        DetectionCapability::InformationFlow,
        DetectionCapability::WatchdogLiveness,
    ];
}

impl fmt::Display for DetectionCapability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A response or recovery countermeasure the platform can execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ResponseCapability {
    /// Gate a bus master off the interconnect (physical isolation).
    IsolateMaster,
    /// Kill a compromised task.
    KillTask,
    /// Restart a task from a clean state.
    RestartTask,
    /// Quarantine the network interface.
    QuarantineNetwork,
    /// Rate-limit network ingress.
    RateLimit,
    /// Zeroise key material.
    ZeroizeKeys,
    /// Roll firmware back to the previous slot.
    Rollback,
    /// Recover from the golden image.
    GoldenRecovery,
    /// Reboot the system (the passive baseline's response).
    Reboot,
    /// Enter graceful degradation, shedding non-critical load.
    DegradedMode,
    /// Lock actuators in a safe position.
    ActuatorLockout,
}

impl ResponseCapability {
    /// Every capability, in stable order.
    pub const ALL: [ResponseCapability; 11] = [
        ResponseCapability::IsolateMaster,
        ResponseCapability::KillTask,
        ResponseCapability::RestartTask,
        ResponseCapability::QuarantineNetwork,
        ResponseCapability::RateLimit,
        ResponseCapability::ZeroizeKeys,
        ResponseCapability::Rollback,
        ResponseCapability::GoldenRecovery,
        ResponseCapability::Reboot,
        ResponseCapability::DegradedMode,
        ResponseCapability::ActuatorLockout,
    ];

    /// True for *active* countermeasures in the paper's sense — targeted
    /// action against the compromised resource, as opposed to the passive
    /// whole-system reset.
    pub fn is_active(self) -> bool {
        !matches!(self, ResponseCapability::Reboot)
    }
}

impl fmt::Display for ResponseCapability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_are_complete_and_unique() {
        let d: std::collections::HashSet<_> = DetectionCapability::ALL.iter().collect();
        assert_eq!(d.len(), DetectionCapability::ALL.len());
        let r: std::collections::HashSet<_> = ResponseCapability::ALL.iter().collect();
        assert_eq!(r.len(), ResponseCapability::ALL.len());
    }

    #[test]
    fn reboot_is_the_only_passive_response() {
        let passive: Vec<_> = ResponseCapability::ALL
            .iter()
            .filter(|c| !c.is_active())
            .collect();
        assert_eq!(passive, vec![&ResponseCapability::Reboot]);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(DetectionCapability::BusPolicing.to_string(), "BusPolicing");
        assert_eq!(ResponseCapability::KillTask.to_string(), "KillTask");
    }
}
