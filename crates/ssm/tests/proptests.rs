//! Property tests for the SSM: the evidence chain's tamper-evidence is the
//! load-bearing security property of the whole reproduction, so it gets
//! adversarial fuzzing.

use cres_sim::SimTime;
use cres_ssm::{EvidenceStore, HealthState, SystemHealth};
use proptest::prelude::*;

fn build_store(key: &[u8], entries: &[(u64, String)]) -> EvidenceStore {
    let mut s = EvidenceStore::new(key);
    for (at, payload) in entries {
        s.append(SimTime::at_cycle(*at), "m", payload);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_honest_chain_verifies(
        key in proptest::collection::vec(any::<u8>(), 1..64),
        entries in proptest::collection::vec((0u64..1_000_000, ".{0,40}"), 0..60)
    ) {
        let s = build_store(&key, &entries);
        prop_assert!(s.verify().is_ok());
        prop_assert!(EvidenceStore::verify_export(&key, s.records()).is_ok());
    }

    #[test]
    fn any_payload_tamper_is_detected(
        entries in proptest::collection::vec((0u64..1_000, "[a-z]{1,20}"), 1..40),
        victim in any::<prop::sample::Index>()
    ) {
        let mut s = build_store(b"key", &entries);
        let idx = victim.index(entries.len());
        s.records_mut_for_attack()[idx].payload.push('!');
        prop_assert!(s.verify().is_err());
    }

    #[test]
    fn any_single_bit_flip_in_macs_is_detected(
        entries in proptest::collection::vec((0u64..1_000, "[a-z]{1,20}"), 1..40),
        victim in any::<prop::sample::Index>(),
        byte in 0usize..32,
        bit in 0u8..8
    ) {
        let mut s = build_store(b"key", &entries);
        let idx = victim.index(entries.len());
        s.records_mut_for_attack()[idx].mac[byte] ^= 1 << bit;
        prop_assert!(s.verify().is_err());
    }

    #[test]
    fn any_interior_deletion_is_detected(
        entries in proptest::collection::vec((0u64..1_000, "[a-z]{1,20}"), 2..40),
        victim in any::<prop::sample::Index>()
    ) {
        let mut s = build_store(b"key", &entries);
        let idx = victim.index(entries.len() - 1); // never the last record
        s.records_mut_for_attack().remove(idx);
        prop_assert!(s.verify().is_err(), "deleting record {idx} went unnoticed");
    }

    #[test]
    fn any_swap_is_detected(
        entries in proptest::collection::vec((0u64..1_000, "[a-z]{1,20}"), 2..40),
        a in any::<prop::sample::Index>(),
        b in any::<prop::sample::Index>()
    ) {
        let mut s = build_store(b"key", &entries);
        let (i, j) = (a.index(entries.len()), b.index(entries.len()));
        prop_assume!(i != j);
        s.records_mut_for_attack().swap(i, j);
        prop_assert!(s.verify().is_err());
    }

    #[test]
    fn wrong_key_never_verifies_nonempty_chain(
        key in proptest::collection::vec(any::<u8>(), 1..32),
        other in proptest::collection::vec(any::<u8>(), 1..32),
        entries in proptest::collection::vec((0u64..1_000, "[a-z]{1,10}"), 1..20)
    ) {
        prop_assume!(key != other);
        let s = build_store(&key, &entries);
        prop_assert!(EvidenceStore::verify_export(&other, s.records()).is_err());
    }

    #[test]
    fn inclusion_proofs_verify_for_every_record(
        entries in proptest::collection::vec((0u64..1_000, "[a-z]{1,10}"), 1..30)
    ) {
        let mut s = build_store(b"key", &entries);
        let root = s.seal(SimTime::at_cycle(1_000_000));
        for i in 0..entries.len() as u64 {
            let (proof, r) = s.prove_inclusion(i).unwrap();
            prop_assert_eq!(r, root);
            prop_assert!(EvidenceStore::verify_inclusion(
                &s.records()[i as usize],
                &proof,
                &root
            ));
        }
    }

    #[test]
    fn availability_is_a_fraction(
        transitions in proptest::collection::vec((1u64..1_000_000, 0u8..4), 0..30),
        horizon in 1u64..2_000_000
    ) {
        let mut h = SystemHealth::new();
        let mut ts: Vec<_> = transitions;
        ts.sort_by_key(|(t, _)| *t);
        for (t, kind) in ts {
            let at = SimTime::at_cycle(t);
            match kind {
                0 => h.on_incident(at, cres_monitor::Severity::Critical),
                1 => h.on_degraded(at),
                2 => h.on_recovery_started(at),
                _ => h.on_recovered(at),
            }
        }
        let a = h.service_availability(SimTime::at_cycle(horizon));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&a), "availability {a}");
    }

    #[test]
    fn time_in_states_partitions_the_horizon(
        transitions in proptest::collection::vec((1u64..100_000, 0u8..4), 0..20)
    ) {
        let mut h = SystemHealth::new();
        let mut ts: Vec<_> = transitions;
        ts.sort_by_key(|(t, _)| *t);
        let horizon = 200_000u64;
        for (t, kind) in ts {
            let at = SimTime::at_cycle(t);
            match kind {
                0 => h.on_incident(at, cres_monitor::Severity::Alert),
                1 => h.on_degraded(at),
                2 => h.on_recovery_started(at),
                _ => h.on_recovered(at),
            }
        }
        let now = SimTime::at_cycle(horizon);
        let total: u64 = [
            HealthState::Healthy,
            HealthState::Suspicious,
            HealthState::Compromised,
            HealthState::Degraded,
            HealthState::Recovering,
        ]
        .iter()
        .map(|s| h.time_in(*s, now))
        .sum();
        prop_assert_eq!(total, horizon);
    }
}
