#![deny(missing_docs)]

//! The Independent Active Runtime System Security Manager — the paper's
//! first and central microarchitectural characteristic.
//!
//! > "An independent active runtime system security manager shall be
//! > responsible for protection, detection, response and recovery security
//! > functions … It shall continuously monitor system resources, use
//! > gathered information to detect benign or malicious system behaviour,
//! > respond to detected malicious activities by deploying active
//! > countermeasures and recover the system back to its healthy state. It
//! > is crucial that the system security manager must be physically
//! > independent and isolated."
//!
//! * [`evidence`] — the **hash-chained evidence store**: every accepted
//!   observation is folded into an HMAC chain keyed from SSM-private
//!   memory, giving the *continuity of data stream* the paper says no
//!   existing mechanism provides (experiment E6),
//! * [`correlate`] — the correlation engine turning raw monitor events into
//!   classified [`correlate::Incident`]s (threshold, sequence and
//!   immediate rules; ablation A1),
//! * [`health`] — the platform health state machine
//!   (Healthy → Suspicious → Compromised → Degraded → Recovering),
//! * [`planner`] — maps incidents to [`planner::ResponsePlan`]s under an
//!   active (CRES) or passive (reboot-only baseline) policy,
//! * [`ssm`] — [`ssm::SystemSecurityManager`] assembling the four.

pub mod correlate;
pub mod evidence;
pub mod evtext;
pub mod health;
pub mod planner;
pub mod ssm;

pub use correlate::{CorrelationConfig, CorrelationEngine, Incident, IncidentKind};
pub use evidence::{ChainError, EvidenceRecord, EvidenceStore, SealInfo};
pub use evtext::EvText;
pub use health::{HealthState, MonitorHealth, SystemHealth};
pub use planner::{DegradationTier, PlannerMode, ResponseAction, ResponsePlan, ResponsePlanner};
pub use ssm::{SsmConfig, SsmDeployment, SystemSecurityManager};
