//! The assembled System Security Manager.
//!
//! The SSM's run loop is: ingest monitor events → append each to the
//! evidence chain → correlate into incidents → update health → plan
//! responses. The platform executes the returned plans through the active
//! response manager (`cres-response`) and reports execution results back
//! via [`SystemSecurityManager::record_response`], closing the loop with
//! more evidence.
//!
//! [`SsmDeployment`] captures the paper's isolation argument: an
//! `IsolatedCore` SSM's state is unreachable from the GPP (attack injectors
//! get `None` from [`SystemSecurityManager::attack_surface`]), while a
//! `SharedWithGpp` deployment exposes its evidence store to any attacker
//! who owns the application cores — exactly the TEE weakness of §IV.

use crate::correlate::{CorrelationConfig, CorrelationEngine, Incident};
use crate::evidence::EvidenceStore;
use crate::health::{HealthState, MonitorHealth, SystemHealth};
use crate::planner::{DegradationTier, PlannerMode, ResponsePlan, ResponsePlanner};
use cres_monitor::MonitorEvent;
use cres_sim::{
    fault_code, MonitorId, MonitorRegistry, NullSink, SimDuration, SimTime, Stage, StageSink,
};

/// Modelled cycle cost of consuming one event in the correlation engine.
const CORRELATE_COST: u64 = 4;
/// Modelled cycle cost of classifying one incident.
const CLASSIFY_COST: u64 = 6;
/// Modelled cycle cost of planning a response.
const PLAN_COST: u64 = 5;
/// Modelled cycle cost of one keyed hash-chain append.
const EVIDENCE_APPEND_COST: u64 = 8;

/// Where the SSM physically runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsmDeployment {
    /// Own core, own private memory (the paper's prescription).
    IsolatedCore,
    /// Time-shared with the general-purpose processor (the TEE-like
    /// baseline topology).
    SharedWithGpp,
}

/// SSM configuration.
#[derive(Debug, Clone, Copy)]
pub struct SsmConfig {
    /// Physical deployment.
    pub deployment: SsmDeployment,
    /// Correlation engine configuration.
    pub correlation: CorrelationConfig,
    /// Response planning mode.
    pub planner: PlannerMode,
    /// Record evidence (ablation A2 switches this off to cost it).
    pub evidence_enabled: bool,
}

impl Default for SsmConfig {
    fn default() -> Self {
        SsmConfig {
            deployment: SsmDeployment::IsolatedCore,
            correlation: CorrelationConfig::default(),
            planner: PlannerMode::Active,
            evidence_enabled: true,
        }
    }
}

/// The system security manager.
#[derive(Debug, Clone)]
pub struct SystemSecurityManager {
    config: SsmConfig,
    evidence: EvidenceStore,
    engine: CorrelationEngine,
    health: SystemHealth,
    planner: ResponsePlanner,
    incidents: Vec<Incident>,
    monitor_health: Option<MonitorHealth>,
    registry: MonitorRegistry,
}

impl SystemSecurityManager {
    /// Creates an SSM keyed with `evidence_key` (derived from the device
    /// root key, held in SSM-private memory).
    pub fn new(config: SsmConfig, evidence_key: &[u8]) -> Self {
        SystemSecurityManager {
            config,
            evidence: EvidenceStore::new(evidence_key),
            engine: CorrelationEngine::new(config.correlation),
            health: SystemHealth::new(),
            planner: ResponsePlanner::new(config.planner),
            incidents: Vec::new(),
            monitor_health: None,
            registry: MonitorRegistry::new(),
        }
    }

    /// Restores the pristine just-constructed state under a (possibly new)
    /// configuration and evidence key, reusing the evidence store's record
    /// buffers and the intern table's storage. Behaviour after a reset is
    /// bit-identical to [`SystemSecurityManager::new`] — the platform
    /// pool's determinism proptest pins this.
    pub fn reset(&mut self, config: SsmConfig, evidence_key: &[u8]) {
        self.config = config;
        self.evidence.reset(evidence_key);
        self.engine = CorrelationEngine::new(config.correlation);
        self.health = SystemHealth::new();
        self.planner = ResponsePlanner::new(config.planner);
        self.incidents.clear();
        self.monitor_health = None;
        self.registry.clear();
    }

    /// Interns a monitor name at wiring time; events stamped with the
    /// returned [`MonitorId`] resolve back to `name` in evidence records
    /// and console output. Idempotent.
    pub fn intern_monitor(&mut self, name: &'static str) -> MonitorId {
        self.registry.intern(name)
    }

    /// Resolves an interned monitor id (`"?"` for unbound/foreign ids).
    #[inline]
    pub fn monitor_name(&self, id: MonitorId) -> &'static str {
        self.registry.name(id)
    }

    /// The monitor-name intern table.
    pub fn monitor_registry(&self) -> &MonitorRegistry {
        &self.registry
    }

    /// Arms heartbeat-based liveness tracking for a fleet of `count`
    /// monitors sampled every `period`. A monitor that misses
    /// `miss_threshold` consecutive periods is quarantined by
    /// [`SystemSecurityManager::check_monitor_health`].
    pub fn init_monitor_health(&mut self, count: usize, period: SimDuration, miss_threshold: u32) {
        self.monitor_health = Some(MonitorHealth::new(count, period, miss_threshold));
    }

    /// Records a heartbeat from monitor `index` at `now` (called by the
    /// platform every time the monitor produces a sample batch, empty or
    /// not). A no-op until [`SystemSecurityManager::init_monitor_health`].
    pub fn monitor_heartbeat(&mut self, index: usize, now: SimTime) {
        if let Some(tracker) = self.monitor_health.as_mut() {
            tracker.heartbeat(index, now);
        }
    }

    /// Sweeps monitor liveness at `now`. Newly dead monitors are
    /// quarantined: the loss is recorded as evidence, one `fault-plane` span
    /// per quarantine is reported to `sink`, and — on the first quarantine —
    /// the correlation engine switches into sensing-degraded mode (wider
    /// windows, lower threshold) so the surviving monitors compensate.
    /// Returns the indices quarantined by this sweep.
    pub fn check_monitor_health(&mut self, now: SimTime, sink: &mut dyn StageSink) -> Vec<usize> {
        let Some(tracker) = self.monitor_health.as_mut() else {
            return Vec::new();
        };
        let newly_dead = tracker.check(now);
        if newly_dead.is_empty() {
            return newly_dead;
        }
        let entering_degraded = !self.engine.is_degraded();
        for &index in &newly_dead {
            if self.config.evidence_enabled {
                self.evidence.append(
                    now,
                    "monitor-health",
                    &format!("monitor #{index} heartbeat lost; quarantined"),
                );
            }
            sink.record_span(now, Stage::FaultPlane, fault_code::MONITOR_QUARANTINED, 1);
        }
        if entering_degraded {
            self.engine.set_degraded(true);
            if self.config.evidence_enabled {
                self.evidence.append(
                    now,
                    "monitor-health",
                    "sensing degraded: correlation windows widened, threshold lowered",
                );
            }
            sink.record_span(now, Stage::FaultPlane, fault_code::SENSING_DEGRADED, 1);
        }
        newly_dead
    }

    /// True once monitor loss has pushed correlation into sensing-degraded
    /// compensation.
    pub fn sensing_degraded(&self) -> bool {
        self.engine.is_degraded()
    }

    /// Indices of quarantined monitors, ascending (empty until liveness
    /// tracking is armed).
    pub fn quarantined_monitors(&self) -> Vec<usize> {
        self.monitor_health
            .as_ref()
            .map_or_else(Vec::new, |t| t.quarantined())
    }

    /// The configuration in force.
    pub fn config(&self) -> &SsmConfig {
        &self.config
    }

    /// Current health state.
    pub fn health(&self) -> HealthState {
        self.health.state()
    }

    /// The health tracker (availability accounting).
    pub fn health_tracker(&self) -> &SystemHealth {
        &self.health
    }

    /// All classified incidents.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// The evidence store (read-only forensic export path).
    pub fn evidence(&self) -> &EvidenceStore {
        &self.evidence
    }

    /// Ingests a batch of monitor events observed at `now`; returns any
    /// response plans to execute.
    pub fn ingest(&mut self, now: SimTime, events: &[MonitorEvent]) -> Vec<ResponsePlan> {
        self.ingest_traced(now, events, &mut NullSink)
    }

    /// [`SystemSecurityManager::ingest`] with telemetry: every evidence
    /// append, correlation step, incident classification and produced plan
    /// is reported to `sink` as a span (`evidence-append` arg = chain
    /// sequence, `correlate` arg = 1 when the event classified an incident,
    /// `classify` arg = incident id, `plan` arg = action count).
    pub fn ingest_traced(
        &mut self,
        now: SimTime,
        events: &[MonitorEvent],
        sink: &mut dyn StageSink,
    ) -> Vec<ResponsePlan> {
        let mut plans = Vec::new();
        for event in events {
            let seq = if self.config.evidence_enabled {
                let seq = self.evidence.append(
                    event.at,
                    self.registry.name(event.monitor),
                    &format!(
                        "[{}] {} {}: {}",
                        event.severity,
                        event.capability,
                        event.subject,
                        event.rendered()
                    ),
                );
                sink.record_span(now, Stage::EvidenceAppend, seq as u32, EVIDENCE_APPEND_COST);
                Some(seq)
            } else {
                None
            };
            let incident = self.engine.ingest(now, event, self.health.state());
            sink.record_span(
                now,
                Stage::Correlate,
                u32::from(incident.is_some()),
                CORRELATE_COST,
            );
            if let Some(mut incident) = incident {
                if let Some(seq) = seq {
                    incident.evidence.push(seq);
                }
                sink.record_span(
                    incident.classified_at,
                    Stage::Classify,
                    incident.id as u32,
                    CLASSIFY_COST,
                );
                self.health
                    .on_incident(incident.classified_at, incident.severity);
                if self.config.evidence_enabled {
                    let seq = self.evidence.append(
                        incident.classified_at,
                        "incident",
                        &format!(
                            "#{} {} severity={} subject={} health={}",
                            incident.id,
                            incident.kind,
                            incident.severity,
                            incident.subject,
                            incident.health_at
                        ),
                    );
                    sink.record_span(now, Stage::EvidenceAppend, seq as u32, EVIDENCE_APPEND_COST);
                    incident.evidence.push(seq);
                }
                let plan = self.planner.plan(&incident);
                if !plan.is_empty() {
                    sink.record_span(now, Stage::Plan, plan.actions.len() as u32, PLAN_COST);
                    plans.push(plan);
                }
                self.incidents.push(incident);
            }
        }
        plans
    }

    /// Records a free-form platform event (boot measurements, provisioning
    /// milestones) into the evidence chain.
    pub fn record_note(&mut self, at: SimTime, category: &str, payload: &str) {
        if self.config.evidence_enabled {
            self.evidence.append(at, category, payload);
        }
    }

    /// Records the execution result of a countermeasure (evidence of the
    /// RESPOND function acting).
    pub fn record_response(&mut self, at: SimTime, action: &str, success: bool) {
        if self.config.evidence_enabled {
            self.evidence.append(
                at,
                "response",
                &format!("{action}: {}", if success { "executed" } else { "FAILED" }),
            );
        }
    }

    /// Records that degradation took effect.
    pub fn record_degraded(&mut self, at: SimTime) {
        self.health.on_degraded(at);
    }

    /// Threads the platform's degradation tier into plan generation and
    /// chains the transition as evidence. Called by the response policy
    /// engine on every tier change; subsequent plans are composed for the
    /// new posture (see [`ResponsePlanner::set_tier`]).
    pub fn set_response_tier(&mut self, at: SimTime, from: DegradationTier, to: DegradationTier) {
        self.planner.set_tier(to);
        if self.config.evidence_enabled {
            self.evidence
                .append(at, "policy", &format!("tier {from} -> {to}"));
        }
        if to > from {
            self.health.on_degraded(at);
        }
    }

    /// The degradation tier the planner is currently composing plans for.
    pub fn response_tier(&self) -> DegradationTier {
        self.planner.tier()
    }

    /// Records the start of a recovery procedure.
    pub fn record_recovery_started(&mut self, at: SimTime, method: &str) {
        self.health.on_recovery_started(at);
        if self.config.evidence_enabled {
            self.evidence
                .append(at, "recovery", &format!("started: {method}"));
        }
    }

    /// Records a completed recovery; health returns to `Healthy`.
    pub fn record_recovered(&mut self, at: SimTime) {
        self.health.on_recovered(at);
        if self.config.evidence_enabled {
            self.evidence
                .append(at, "recovery", "completed; observation window quiet");
        }
    }

    /// Seals the evidence chain under a Merkle root at simulated time `at`
    /// (periodic audit point). No-op returning `None` when the store is
    /// empty.
    pub fn seal_evidence(&mut self, at: SimTime) -> Option<[u8; 32]> {
        if self.evidence.is_empty() {
            None
        } else {
            Some(self.evidence.seal(at))
        }
    }

    /// Correlation statistics `(events seen, incidents raised)`.
    pub fn correlation_stats(&self) -> (u64, u64) {
        self.engine.stats()
    }

    /// **The isolation experiment's lever (E7).** Returns mutable access to
    /// the evidence store *only when the SSM shares resources with the
    /// GPP*; an isolated SSM exposes nothing to an attacker on the
    /// application cores.
    pub fn attack_surface(&mut self) -> Option<&mut EvidenceStore> {
        match self.config.deployment {
            SsmDeployment::SharedWithGpp => Some(&mut self.evidence),
            SsmDeployment::IsolatedCore => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cres_monitor::{Severity, Subject};
    use cres_policy::DetectionCapability;
    use cres_soc::task::TaskId;

    fn ev(at: u64, cap: DetectionCapability, sev: Severity, detail: &'static str) -> MonitorEvent {
        MonitorEvent::new(
            SimTime::at_cycle(at),
            cap,
            sev,
            Subject::Task(TaskId(1)),
            cres_monitor::Detail::Text(detail),
        )
    }

    fn ssm() -> SystemSecurityManager {
        SystemSecurityManager::new(SsmConfig::default(), b"evidence-key")
    }

    #[test]
    fn benign_events_recorded_but_no_plans() {
        let mut s = ssm();
        let plans = s.ingest(
            SimTime::at_cycle(50),
            &[ev(
                1,
                DetectionCapability::BusPolicing,
                Severity::Info,
                "ok",
            )],
        );
        assert!(plans.is_empty());
        assert_eq!(s.evidence().len(), 1);
        assert_eq!(s.health(), HealthState::Healthy);
        assert!(s.incidents().is_empty());
    }

    #[test]
    fn critical_event_produces_incident_plan_and_evidence() {
        let mut s = ssm();
        let plans = s.ingest(
            SimTime::at_cycle(50),
            &[ev(
                10,
                DetectionCapability::ControlFlowIntegrity,
                Severity::Critical,
                "illegal edge",
            )],
        );
        assert_eq!(plans.len(), 1);
        assert!(!plans[0].actions.is_empty());
        assert_eq!(s.health(), HealthState::Compromised);
        assert_eq!(s.incidents().len(), 1);
        // event + incident records
        assert_eq!(s.evidence().len(), 2);
        assert!(s.evidence().verify().is_ok());
        // incident links to its evidence
        assert_eq!(s.incidents()[0].evidence.len(), 2);
    }

    #[test]
    fn response_and_recovery_close_the_loop() {
        let mut s = ssm();
        s.ingest(
            SimTime::at_cycle(0),
            &[ev(
                10,
                DetectionCapability::ControlFlowIntegrity,
                Severity::Critical,
                "edge",
            )],
        );
        s.record_response(SimTime::at_cycle(12), "KillTask(task#1)", true);
        s.record_degraded(SimTime::at_cycle(13));
        s.record_recovery_started(SimTime::at_cycle(20), "restart from clean image");
        s.record_recovered(SimTime::at_cycle(100));
        assert_eq!(s.health(), HealthState::Healthy);
        assert!(s.evidence().verify().is_ok());
        let categories: Vec<&str> = s
            .evidence()
            .records()
            .iter()
            .map(|r| r.category.as_str())
            .collect();
        assert!(categories.contains(&"incident"));
        assert!(categories.contains(&"response"));
        assert!(categories.contains(&"recovery"));
    }

    #[test]
    fn evidence_disabled_records_nothing() {
        let mut s = SystemSecurityManager::new(
            SsmConfig {
                evidence_enabled: false,
                ..Default::default()
            },
            b"k",
        );
        let plans = s.ingest(
            SimTime::at_cycle(50),
            &[ev(
                1,
                DetectionCapability::ControlFlowIntegrity,
                Severity::Critical,
                "edge",
            )],
        );
        assert!(!plans.is_empty(), "response still works without evidence");
        assert!(s.evidence().is_empty());
        assert_eq!(s.seal_evidence(SimTime::at_cycle(1)), None);
    }

    #[test]
    fn passive_planner_reboots() {
        let mut s = SystemSecurityManager::new(
            SsmConfig {
                planner: PlannerMode::PassiveRebootOnly,
                ..Default::default()
            },
            b"k",
        );
        let plans = s.ingest(
            SimTime::at_cycle(50),
            &[ev(
                1,
                DetectionCapability::WatchdogLiveness,
                Severity::Critical,
                "expired",
            )],
        );
        assert_eq!(plans.len(), 1);
        assert_eq!(
            plans[0].actions,
            vec![crate::planner::ResponseAction::RebootSystem]
        );
    }

    #[test]
    fn isolated_ssm_exposes_no_attack_surface() {
        let mut isolated = ssm();
        assert!(isolated.attack_surface().is_none());
        let mut shared = SystemSecurityManager::new(
            SsmConfig {
                deployment: SsmDeployment::SharedWithGpp,
                ..Default::default()
            },
            b"k",
        );
        assert!(shared.attack_surface().is_some());
    }

    #[test]
    fn shared_ssm_evidence_tamper_is_detectable_but_possible() {
        let mut s = SystemSecurityManager::new(
            SsmConfig {
                deployment: SsmDeployment::SharedWithGpp,
                ..Default::default()
            },
            b"k",
        );
        s.ingest(
            SimTime::at_cycle(0),
            &[ev(
                1,
                DetectionCapability::ControlFlowIntegrity,
                Severity::Critical,
                "edge",
            )],
        );
        // attacker wipes the store through the shared surface
        s.attack_surface().unwrap().records_mut_for_attack().clear();
        assert!(
            s.evidence().is_empty(),
            "shared deployment lost its evidence"
        );
    }

    #[test]
    fn seal_returns_root_over_evidence() {
        let mut s = ssm();
        s.ingest(
            SimTime::at_cycle(0),
            &[ev(1, DetectionCapability::BusPolicing, Severity::Info, "x")],
        );
        let root = s.seal_evidence(SimTime::at_cycle(10)).unwrap();
        assert_ne!(root, [0u8; 32]);
    }

    #[test]
    fn monitor_health_quarantines_and_degrades_correlation() {
        let mut s = ssm();
        s.init_monitor_health(2, cres_sim::SimDuration::cycles(1_000), 3);
        assert!(!s.sensing_degraded());
        // Monitor 0 beats, monitor 1 never does.
        for round in 1..=5u64 {
            s.monitor_heartbeat(0, SimTime::at_cycle(round * 1_000));
        }
        let dead = s.check_monitor_health(SimTime::at_cycle(5_000), &mut NullSink);
        assert_eq!(dead, vec![1]);
        assert!(s.sensing_degraded());
        assert_eq!(s.quarantined_monitors(), vec![1]);
        let categories: Vec<&str> = s
            .evidence()
            .records()
            .iter()
            .map(|r| r.category.as_str())
            .collect();
        assert_eq!(
            categories
                .iter()
                .filter(|c| **c == "monitor-health")
                .count(),
            2,
            "expected quarantine + degradation evidence records"
        );
        // A second sweep neither re-quarantines nor re-records; the live
        // monitor keeps beating so only the dead one is in question.
        s.monitor_heartbeat(0, SimTime::at_cycle(9_000));
        let again = s.check_monitor_health(SimTime::at_cycle(9_000), &mut NullSink);
        assert!(again.is_empty());
    }

    #[test]
    fn monitor_health_is_inert_until_armed() {
        let mut s = ssm();
        s.monitor_heartbeat(0, SimTime::at_cycle(1_000));
        assert!(s
            .check_monitor_health(SimTime::at_cycle(1_000_000), &mut NullSink)
            .is_empty());
        assert!(!s.sensing_degraded());
        assert!(s.quarantined_monitors().is_empty());
    }

    #[test]
    fn correlation_stats_flow_through() {
        let mut s = ssm();
        for i in 0..10 {
            s.ingest(
                SimTime::at_cycle(0),
                &[ev(i, DetectionCapability::BusPolicing, Severity::Info, "x")],
            );
        }
        let (seen, raised) = s.correlation_stats();
        assert_eq!(seen, 10);
        assert_eq!(raised, 0);
    }
}
