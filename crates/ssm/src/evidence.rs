//! The hash-chained evidence store.
//!
//! Every observation the SSM accepts becomes an [`EvidenceRecord`] whose
//! HMAC covers the previous record's MAC — an append-only chain keyed with
//! a key that never leaves SSM-private memory. The consequences, which
//! experiment E6 measures:
//!
//! * an attacker who owns the GPP **cannot forge or truncate history
//!   undetectably** — any modification breaks every downstream MAC;
//! * evidence recorded *before and during* the compromise survives it,
//!   unlike the baseline's UART/log-buffer records which the attacker wipes.
//!
//! Batches can additionally be sealed under a Merkle root so an external
//! auditor can verify a single record without replaying the chain.

use crate::evtext::EvText;
use cres_crypto::hmac::HmacSha256;
use cres_crypto::merkle::{InclusionProof, MerkleAccumulator, MerkleTree};
use cres_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One link in the evidence chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvidenceRecord {
    /// Position in the chain (0-based, dense).
    pub seq: u64,
    /// Simulated time of the underlying observation.
    pub at: SimTime,
    /// Category tag (e.g. monitor name or `"incident"`); stored inline
    /// (allocation-free) for short text.
    pub category: EvText,
    /// Serialized observation payload; stored inline (allocation-free) for
    /// short text.
    pub payload: EvText,
    /// MAC of the previous record (all-zero for the genesis record).
    pub prev_mac: [u8; 32],
    /// MAC over `seq ‖ at ‖ category ‖ payload ‖ prev_mac`.
    pub mac: [u8; 32],
}

impl EvidenceRecord {
    fn compute_mac(
        key: &[u8],
        seq: u64,
        at: SimTime,
        category: &str,
        payload: &str,
        prev: &[u8; 32],
    ) -> [u8; 32] {
        let mut mac = HmacSha256::new(key);
        mac.update(&seq.to_le_bytes());
        mac.update(&at.cycle().to_le_bytes());
        mac.update(&(category.len() as u64).to_le_bytes());
        mac.update(category.as_bytes());
        mac.update(&(payload.len() as u64).to_le_bytes());
        mac.update(payload.as_bytes());
        mac.update(prev);
        mac.finalize()
    }
}

/// Where and why chain verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// Record `seq` has a MAC that does not verify (content tampered).
    BadMac(u64),
    /// Record `seq`'s `prev_mac` does not match its predecessor (splice).
    BrokenLink(u64),
    /// Sequence numbers are not dense from 0 (truncation or reorder).
    BadSequence {
        /// Expected sequence number.
        expected: u64,
        /// Found sequence number.
        found: u64,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::BadMac(s) => write!(f, "record {s}: MAC verification failed"),
            ChainError::BrokenLink(s) => write!(f, "record {s}: chain link broken"),
            ChainError::BadSequence { expected, found } => {
                write!(f, "sequence gap: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for ChainError {}

/// One audit seal: the Merkle root over the chain's first `covered`
/// records, stamped with the simulated time the seal was taken — the
/// anchor a forensic export cites when proving a record's inclusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SealInfo {
    /// Simulated time the seal was taken.
    pub at: SimTime,
    /// Merkle root over records `0..covered`.
    pub root: [u8; 32],
    /// Number of records the seal covers.
    pub covered: u64,
}

/// The append-only evidence store.
#[derive(Debug, Clone)]
pub struct EvidenceStore {
    key: Vec<u8>,
    records: Vec<EvidenceRecord>,
    seals: Vec<SealInfo>,
    // Incremental Merkle state over every appended record's MAC, so a seal
    // is O(log n) instead of a full-tree rebuild. Tracks the *appended*
    // history; if the raw records diverge from it (the E6/E7 attack
    // surface), `seal` falls back to the batch rebuild.
    accum: MerkleAccumulator,
}

impl EvidenceStore {
    /// Creates a store keyed with `key` (held in SSM-private memory by the
    /// platform).
    pub fn new(key: &[u8]) -> Self {
        EvidenceStore {
            key: key.to_vec(),
            records: Vec::new(),
            seals: Vec::new(),
            accum: MerkleAccumulator::new(),
        }
    }

    /// Restores the pristine just-constructed state under a (possibly new)
    /// key, keeping the record and seal buffers' capacity — the platform
    /// pool's reuse path.
    pub fn reset(&mut self, key: &[u8]) {
        self.key.clear();
        self.key.extend_from_slice(key);
        self.records.clear();
        self.seals.clear();
        self.accum.clear();
    }

    /// Appends an observation and returns its sequence number.
    pub fn append(&mut self, at: SimTime, category: &str, payload: &str) -> u64 {
        let seq = self.records.len() as u64;
        let prev_mac = self.records.last().map_or([0u8; 32], |r| r.mac);
        let mac = EvidenceRecord::compute_mac(&self.key, seq, at, category, payload, &prev_mac);
        self.accum.append_digest(&mac);
        self.records.push(EvidenceRecord {
            seq,
            at,
            category: EvText::from(category),
            payload: EvText::from(payload),
            prev_mac,
            mac,
        });
        seq
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records (forensic export).
    pub fn records(&self) -> &[EvidenceRecord] {
        &self.records
    }

    /// Verifies the whole chain.
    ///
    /// # Errors
    ///
    /// Returns the first [`ChainError`] found.
    pub fn verify(&self) -> Result<(), ChainError> {
        Self::verify_export(&self.key, &self.records)
    }

    /// Verifies an exported record list against a key — what a forensic
    /// workstation does with the SSM's dump.
    ///
    /// # Errors
    ///
    /// Returns the first [`ChainError`] found.
    pub fn verify_export(key: &[u8], records: &[EvidenceRecord]) -> Result<(), ChainError> {
        let mut prev = [0u8; 32];
        for (i, rec) in records.iter().enumerate() {
            if rec.seq != i as u64 {
                return Err(ChainError::BadSequence {
                    expected: i as u64,
                    found: rec.seq,
                });
            }
            if rec.prev_mac != prev {
                return Err(ChainError::BrokenLink(rec.seq));
            }
            let expect = EvidenceRecord::compute_mac(
                key,
                rec.seq,
                rec.at,
                &rec.category,
                &rec.payload,
                &rec.prev_mac,
            );
            if !cres_crypto::ct::ct_eq(&expect, &rec.mac) {
                return Err(ChainError::BadMac(rec.seq));
            }
            prev = rec.mac;
        }
        Ok(())
    }

    /// Seals all records so far under a Merkle root at simulated time
    /// `at`; returns the root.
    ///
    /// The fast path reads the incremental accumulator — O(log n) hashes
    /// per seal regardless of history length, and byte-identical to the
    /// batch tree's root. When the raw records no longer match the appended
    /// history (an attacker with store memory access truncated or replaced
    /// them), the root is rebuilt from the records as stored, preserving
    /// the pre-accumulator semantics the E6/E7 experiments pin.
    ///
    /// # Panics
    ///
    /// Panics when the store is empty.
    pub fn seal(&mut self, at: SimTime) -> [u8; 32] {
        assert!(
            !self.records.is_empty(),
            "Merkle tree needs at least one leaf"
        );
        let root = if self.accum.leaf_count() == self.records.len() as u64 {
            self.accum
                .root()
                .expect("accumulator non-empty when records are")
        } else {
            MerkleTree::build_from_hashes(self.records.iter().map(|r| &r.mac)).root()
        };
        self.seals.push(SealInfo {
            at,
            root,
            covered: self.records.len() as u64,
        });
        root
    }

    /// The seal history, oldest first.
    pub fn seals(&self) -> &[SealInfo] {
        &self.seals
    }

    /// Produces an inclusion proof for record `seq` against the latest seal
    /// covering it.
    pub fn prove_inclusion(&self, seq: u64) -> Option<(InclusionProof, [u8; 32])> {
        let seal = *self.seals.iter().rev().find(|seal| seq < seal.covered)?;
        let tree = MerkleTree::build_from_hashes(
            self.records[..seal.covered as usize].iter().map(|r| &r.mac),
        );
        debug_assert_eq!(tree.root(), seal.root);
        tree.inclusion_proof(seq as usize).map(|p| (p, seal.root))
    }

    /// Verifies an inclusion proof produced by
    /// [`EvidenceStore::prove_inclusion`].
    #[must_use]
    pub fn verify_inclusion(
        record: &EvidenceRecord,
        proof: &InclusionProof,
        root: &[u8; 32],
    ) -> bool {
        MerkleTree::verify(root, &record.mac, proof)
    }

    /// **Attack surface for E6/E7**: mutable access to the raw records, as
    /// an attacker with write access to the store's memory would have. Only
    /// meaningful when the SSM is *not* physically isolated.
    pub fn records_mut_for_attack(&mut self) -> &mut Vec<EvidenceRecord> {
        &mut self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> SimTime {
        SimTime::at_cycle(c)
    }

    fn store_with(n: u64) -> EvidenceStore {
        let mut s = EvidenceStore::new(b"ssm-private-key");
        for i in 0..n {
            s.append(t(i * 10), "bus-policy", &format!("event {i}"));
        }
        s
    }

    #[test]
    fn empty_chain_verifies() {
        assert!(store_with(0).verify().is_ok());
    }

    #[test]
    fn intact_chain_verifies() {
        assert!(store_with(50).verify().is_ok());
    }

    #[test]
    fn sequence_numbers_are_dense() {
        let s = store_with(5);
        let seqs: Vec<u64> = s.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn payload_tamper_detected() {
        let mut s = store_with(10);
        s.records_mut_for_attack()[4].payload = "benign-looking".into();
        assert_eq!(s.verify(), Err(ChainError::BadMac(4)));
    }

    #[test]
    fn mac_tamper_detected_at_next_link() {
        let mut s = store_with(10);
        // forge record 4's MAC: its own check fails OR the link to 5 breaks
        s.records_mut_for_attack()[4].mac[0] ^= 1;
        let err = s.verify().unwrap_err();
        assert!(matches!(
            err,
            ChainError::BadMac(4) | ChainError::BrokenLink(5)
        ));
    }

    #[test]
    fn truncation_detected() {
        let mut s = store_with(10);
        // attacker deletes the last 3 records — but an auditor knows the
        // chain length from the last seal, and deleting *interior* records
        // breaks sequence density:
        s.records_mut_for_attack().remove(5);
        assert_eq!(
            s.verify(),
            Err(ChainError::BadSequence {
                expected: 5,
                found: 6
            })
        );
    }

    #[test]
    fn splice_detected() {
        let mut s = store_with(10);
        // attacker replaces record 3 with a re-MACed forgery under the
        // wrong key (they don't have the SSM key)
        let rec = &mut s.records_mut_for_attack()[3];
        rec.payload = "forged".into();
        rec.mac = HmacSha256::mac(b"attacker-key", b"forged");
        let err = s.verify().unwrap_err();
        assert!(matches!(
            err,
            ChainError::BadMac(3) | ChainError::BrokenLink(4)
        ));
    }

    #[test]
    fn wrong_key_export_fails() {
        let s = store_with(5);
        assert!(EvidenceStore::verify_export(b"other-key", s.records()).is_err());
        assert!(EvidenceStore::verify_export(b"ssm-private-key", s.records()).is_ok());
    }

    #[test]
    fn seal_and_prove_inclusion() {
        let mut s = store_with(20);
        let root = s.seal(t(200));
        let (proof, got_root) = s.prove_inclusion(7).unwrap();
        assert_eq!(got_root, root);
        assert!(EvidenceStore::verify_inclusion(
            &s.records()[7],
            &proof,
            &root
        ));
        // wrong record fails
        assert!(!EvidenceStore::verify_inclusion(
            &s.records()[8],
            &proof,
            &root
        ));
    }

    #[test]
    fn inclusion_requires_covering_seal() {
        let mut s = store_with(5);
        s.seal(t(100));
        s.append(t(999), "late", "after seal");
        assert!(s.prove_inclusion(4).is_some());
        assert!(
            s.prove_inclusion(5).is_none(),
            "record after seal not covered"
        );
        s.seal(t(1_000));
        assert!(s.prove_inclusion(5).is_some());
        assert_eq!(s.seals().len(), 2);
        // seals carry their audit timestamps and coverage, oldest first
        assert_eq!(s.seals()[0].at, t(100));
        assert_eq!(s.seals()[0].covered, 5);
        assert_eq!(s.seals()[1].at, t(1_000));
        assert_eq!(s.seals()[1].covered, 6);
    }

    #[test]
    fn records_after_compromise_still_chain() {
        // evidence continuity: compromise at t=50, SSM keeps appending
        let mut s = store_with(5);
        s.append(t(50), "incident", "CFI violation on task#1");
        s.append(t(60), "response", "isolated CPU1");
        assert!(s.verify().is_ok());
        assert_eq!(s.len(), 7);
    }
}
