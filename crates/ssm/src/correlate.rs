//! The correlation engine: monitor events → classified incidents.
//!
//! Raw monitor events are noisy — a single denied bus transaction may be a
//! benign bug. The engine applies three rule shapes before declaring an
//! incident:
//!
//! * **immediate** — any `Critical` event is an incident by itself;
//! * **threshold** — N events of one capability at ≥ severity within a
//!   window (e.g. repeated guarded-region probes ⇒ reconnaissance);
//! * **sequence** — capability A followed by capability B within a window
//!   (e.g. policy violation then exfil signature ⇒ staged intrusion).
//!
//! Ablation A1 runs the platform with the engine disabled (every Warning+
//! event becomes an incident) to quantify the false-positive cost.

use crate::health::HealthState;
use cres_monitor::{Detail, MonitorEvent, Severity, Subject};
use cres_policy::DetectionCapability;
use cres_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Classified incident kinds — the vocabulary response planning works in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IncidentKind {
    /// Control-flow hijack / code injection.
    CodeInjection,
    /// Scanning of protected memory.
    MemoryProbe,
    /// Firmware or write-guarded region tampered.
    FirmwareTamper,
    /// Network flood / DoS.
    NetworkFlood,
    /// Exploit-signature traffic.
    ExploitTraffic,
    /// Data exfiltration in progress.
    Exfiltration,
    /// Sensor spoofing / implausible physics.
    SensorSpoof,
    /// Voltage/clock/thermal fault injection.
    FaultInjection,
    /// Debug-port intrusion.
    DebugIntrusion,
    /// Syscall-behaviour anomaly.
    BehaviourAnomaly,
    /// Repeated out-of-policy access (reconnaissance).
    PolicyViolation,
    /// System hang (watchdog).
    SystemHang,
}

impl fmt::Display for IncidentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A classified incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// Incident id (dense per engine).
    pub id: u64,
    /// When the classifying event occurred (the underlying observation).
    pub at: SimTime,
    /// When the SSM classified it (the next sampling boundary) — detection
    /// latency is measured against this.
    pub classified_at: SimTime,
    /// Incident class.
    pub kind: IncidentKind,
    /// Highest severity among contributing events.
    pub severity: Severity,
    /// The resource concerned.
    pub subject: Subject,
    /// Evidence-store sequence numbers of the contributing events (filled
    /// by the SSM).
    pub evidence: Vec<u64>,
    /// Health state at classification time.
    pub health_at: HealthState,
    /// True when the sequence rule fired: this incident follows a
    /// *different-kind* incident within the escalation window, indicating a
    /// staged, multi-vector intrusion rather than an isolated event.
    pub escalated: bool,
}

/// Classifies a single event's capability/severity into an incident kind.
fn classify(event: &MonitorEvent) -> IncidentKind {
    use DetectionCapability::*;
    match event.capability {
        ControlFlowIntegrity => IncidentKind::CodeInjection,
        MemoryGuard => {
            if event.severity >= Severity::Critical {
                IncidentKind::FirmwareTamper
            } else {
                IncidentKind::MemoryProbe
            }
        }
        BusPolicing => match event.detail {
            Detail::DebugPortActive { .. } => IncidentKind::DebugIntrusion,
            // synthetic Text events (tests, ablations) keep the old
            // substring contract
            Detail::Text(s) if s.contains("debug port") => IncidentKind::DebugIntrusion,
            _ => IncidentKind::PolicyViolation,
        },
        SyscallSequence => IncidentKind::BehaviourAnomaly,
        NetworkRate => IncidentKind::NetworkFlood,
        NetworkSignature => match event.detail {
            Detail::OutboundExfiltration { .. } => IncidentKind::Exfiltration,
            Detail::Text(s) if s.contains("exfiltration") => IncidentKind::Exfiltration,
            _ => IncidentKind::ExploitTraffic,
        },
        InformationFlow => IncidentKind::Exfiltration,
        SensorPlausibility => IncidentKind::SensorSpoof,
        Environmental => IncidentKind::FaultInjection,
        BootMeasurement => IncidentKind::FirmwareTamper,
        WatchdogLiveness => IncidentKind::SystemHang,
    }
}

/// Correlation engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrelationConfig {
    /// Enable threshold/sequence correlation. When off, every event at
    /// `Warning` or above immediately becomes an incident (ablation A1).
    pub enabled: bool,
    /// Threshold rule: this many same-capability `Warning`+ events inside
    /// the window raise an incident.
    pub threshold: u32,
    /// Correlation window length.
    pub window: SimDuration,
    /// Sequence rule: a second incident of a *different* kind within this
    /// window of the previous incident is escalated to `Critical`.
    pub escalation_window: SimDuration,
}

impl Default for CorrelationConfig {
    fn default() -> Self {
        CorrelationConfig {
            enabled: true,
            threshold: 3,
            window: SimDuration::cycles(200_000),
            escalation_window: SimDuration::cycles(500_000),
        }
    }
}

/// The correlation engine.
#[derive(Debug, Clone)]
pub struct CorrelationEngine {
    config: CorrelationConfig,
    recent: VecDeque<(SimTime, DetectionCapability, Severity, Subject)>,
    last_incident: Option<(SimTime, IncidentKind)>,
    next_id: u64,
    incidents_raised: u64,
    escalations: u64,
    events_seen: u64,
    degraded: bool,
}

impl CorrelationEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: CorrelationConfig) -> Self {
        CorrelationEngine {
            config,
            recent: VecDeque::new(),
            last_incident: None,
            next_id: 0,
            incidents_raised: 0,
            escalations: 0,
            events_seen: 0,
            degraded: false,
        }
    }

    /// Switches sensing-degraded mode on or off. Degraded mode compensates
    /// for a thinner event stream (quarantined monitors, lossy delivery) by
    /// widening both correlation windows and lowering the threshold-rule
    /// count, so the engine trades false-positive margin for coverage
    /// instead of going blind.
    pub fn set_degraded(&mut self, degraded: bool) {
        self.degraded = degraded;
    }

    /// True while sensing-degraded compensation is active.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Threshold-rule event count currently in force (one lower when
    /// degraded, floored at 2 so a single Warning still never raises).
    pub fn effective_threshold(&self) -> u32 {
        if self.degraded {
            self.config.threshold.saturating_sub(1).max(2)
        } else {
            self.config.threshold
        }
    }

    /// Threshold-rule window currently in force (4× when degraded).
    pub fn effective_window(&self) -> SimDuration {
        if self.degraded {
            SimDuration::cycles(self.config.window.as_cycles().saturating_mul(4))
        } else {
            self.config.window
        }
    }

    /// Sequence-rule escalation window currently in force (2× when
    /// degraded).
    pub fn effective_escalation_window(&self) -> SimDuration {
        if self.degraded {
            SimDuration::cycles(self.config.escalation_window.as_cycles().saturating_mul(2))
        } else {
            self.config.escalation_window
        }
    }

    /// Feeds one event observed at classification time `now`; returns an
    /// incident when a rule fires.
    pub fn ingest(
        &mut self,
        now: SimTime,
        event: &MonitorEvent,
        health: HealthState,
    ) -> Option<Incident> {
        self.events_seen += 1;
        if event.severity < Severity::Warning {
            return None;
        }
        if !self.config.enabled {
            return Some(self.raise(now, event, classify(event), health));
        }
        // Immediate rule: Critical events are incidents on their own.
        if event.severity >= Severity::Alert {
            return Some(self.raise(now, event, classify(event), health));
        }
        // Threshold rule over Warning-grade events.
        let horizon = SimTime::at_cycle(
            event
                .at
                .cycle()
                .saturating_sub(self.effective_window().as_cycles()),
        );
        self.recent.retain(|(at, _, _, _)| *at >= horizon);
        self.recent
            .push_back((event.at, event.capability, event.severity, event.subject));
        let same_capability = self
            .recent
            .iter()
            .filter(|(_, cap, _, _)| *cap == event.capability)
            .count() as u32;
        if same_capability >= self.effective_threshold() {
            self.recent
                .retain(|(_, cap, _, _)| *cap != event.capability);
            return Some(self.raise(now, event, classify(event), health));
        }
        None
    }

    fn raise(
        &mut self,
        now: SimTime,
        event: &MonitorEvent,
        kind: IncidentKind,
        health: HealthState,
    ) -> Incident {
        let id = self.next_id;
        self.next_id += 1;
        self.incidents_raised += 1;
        let classified_at = now.max(event.at);
        // Sequence rule: a different-kind incident inside the escalation
        // window marks a staged intrusion and escalates to Critical.
        let escalated = self.config.enabled
            && self.last_incident.is_some_and(|(at, prev_kind)| {
                prev_kind != kind
                    && classified_at.saturating_since(at) <= self.effective_escalation_window()
            });
        if escalated {
            self.escalations += 1;
        }
        self.last_incident = Some((classified_at, kind));
        Incident {
            id,
            at: event.at,
            classified_at,
            kind,
            severity: if escalated {
                Severity::Critical
            } else {
                event.severity
            },
            subject: event.subject,
            evidence: Vec::new(),
            health_at: health,
            escalated,
        }
    }

    /// Number of sequence-rule escalations so far.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// `(events seen, incidents raised)` — the A1 signal-to-noise numbers.
    pub fn stats(&self) -> (u64, u64) {
        (self.events_seen, self.incidents_raised)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cres_soc::addr::MasterId;

    fn ev(at: u64, cap: DetectionCapability, sev: Severity, detail: &'static str) -> MonitorEvent {
        MonitorEvent::new(
            SimTime::at_cycle(at),
            cap,
            sev,
            Subject::Master(MasterId::CPU0),
            Detail::Text(detail),
        )
    }

    fn engine() -> CorrelationEngine {
        CorrelationEngine::new(CorrelationConfig::default())
    }

    #[test]
    fn info_events_never_raise() {
        let mut e = engine();
        for i in 0..100 {
            assert!(e
                .ingest(
                    SimTime::at_cycle(0),
                    &ev(i, DetectionCapability::BusPolicing, Severity::Info, "x"),
                    HealthState::Healthy
                )
                .is_none());
        }
    }

    #[test]
    fn critical_event_is_immediate_incident() {
        let mut e = engine();
        let inc = e
            .ingest(
                SimTime::at_cycle(0),
                &ev(
                    5,
                    DetectionCapability::ControlFlowIntegrity,
                    Severity::Critical,
                    "edge",
                ),
                HealthState::Healthy,
            )
            .unwrap();
        assert_eq!(inc.kind, IncidentKind::CodeInjection);
        assert_eq!(inc.severity, Severity::Critical);
        assert_eq!(inc.health_at, HealthState::Healthy);
    }

    #[test]
    fn single_warning_does_not_raise_but_repeats_do() {
        let mut e = engine();
        assert!(e
            .ingest(
                SimTime::at_cycle(0),
                &ev(
                    0,
                    DetectionCapability::BusPolicing,
                    Severity::Warning,
                    "denied"
                ),
                HealthState::Healthy
            )
            .is_none());
        assert!(e
            .ingest(
                SimTime::at_cycle(0),
                &ev(
                    10,
                    DetectionCapability::BusPolicing,
                    Severity::Warning,
                    "denied"
                ),
                HealthState::Healthy
            )
            .is_none());
        let inc = e
            .ingest(
                SimTime::at_cycle(0),
                &ev(
                    20,
                    DetectionCapability::BusPolicing,
                    Severity::Warning,
                    "denied",
                ),
                HealthState::Healthy,
            )
            .unwrap();
        assert_eq!(inc.kind, IncidentKind::PolicyViolation);
        // counter resets after raising
        assert!(e
            .ingest(
                SimTime::at_cycle(0),
                &ev(
                    30,
                    DetectionCapability::BusPolicing,
                    Severity::Warning,
                    "denied"
                ),
                HealthState::Healthy
            )
            .is_none());
    }

    #[test]
    fn warnings_outside_window_do_not_accumulate() {
        let mut e = engine();
        let w = CorrelationConfig::default().window.as_cycles();
        for i in 0..5 {
            assert!(
                e.ingest(
                    SimTime::at_cycle(0),
                    &ev(
                        i * (w + 1),
                        DetectionCapability::BusPolicing,
                        Severity::Warning,
                        "denied"
                    ),
                    HealthState::Healthy
                )
                .is_none(),
                "event {i} raised despite window expiry"
            );
        }
    }

    #[test]
    fn different_capabilities_do_not_cross_count() {
        let mut e = engine();
        assert!(e
            .ingest(
                SimTime::at_cycle(0),
                &ev(0, DetectionCapability::BusPolicing, Severity::Warning, "d"),
                HealthState::Healthy
            )
            .is_none());
        assert!(e
            .ingest(
                SimTime::at_cycle(0),
                &ev(1, DetectionCapability::MemoryGuard, Severity::Warning, "d"),
                HealthState::Healthy
            )
            .is_none());
        assert!(e
            .ingest(
                SimTime::at_cycle(0),
                &ev(2, DetectionCapability::NetworkRate, Severity::Warning, "d"),
                HealthState::Healthy
            )
            .is_none());
    }

    #[test]
    fn disabled_engine_raises_everything() {
        let mut e = CorrelationEngine::new(CorrelationConfig {
            enabled: false,
            ..Default::default()
        });
        let inc = e.ingest(
            SimTime::at_cycle(0),
            &ev(
                0,
                DetectionCapability::BusPolicing,
                Severity::Warning,
                "denied",
            ),
            HealthState::Healthy,
        );
        assert!(inc.is_some());
        let (seen, raised) = e.stats();
        assert_eq!((seen, raised), (1, 1));
    }

    #[test]
    fn classification_table() {
        let cases = [
            (
                DetectionCapability::ControlFlowIntegrity,
                Severity::Critical,
                "x",
                IncidentKind::CodeInjection,
            ),
            (
                DetectionCapability::MemoryGuard,
                Severity::Alert,
                "probe",
                IncidentKind::MemoryProbe,
            ),
            (
                DetectionCapability::MemoryGuard,
                Severity::Critical,
                "write",
                IncidentKind::FirmwareTamper,
            ),
            (
                DetectionCapability::BusPolicing,
                Severity::Alert,
                "debug port active",
                IncidentKind::DebugIntrusion,
            ),
            (
                DetectionCapability::BusPolicing,
                Severity::Alert,
                "out-of-policy",
                IncidentKind::PolicyViolation,
            ),
            (
                DetectionCapability::NetworkRate,
                Severity::Alert,
                "flood",
                IncidentKind::NetworkFlood,
            ),
            (
                DetectionCapability::NetworkSignature,
                Severity::Critical,
                "outbound exfiltration",
                IncidentKind::Exfiltration,
            ),
            (
                DetectionCapability::NetworkSignature,
                Severity::Alert,
                "malformed",
                IncidentKind::ExploitTraffic,
            ),
            (
                DetectionCapability::SensorPlausibility,
                Severity::Alert,
                "drift",
                IncidentKind::SensorSpoof,
            ),
            (
                DetectionCapability::Environmental,
                Severity::Critical,
                "voltage",
                IncidentKind::FaultInjection,
            ),
            (
                DetectionCapability::SyscallSequence,
                Severity::Alert,
                "unseen",
                IncidentKind::BehaviourAnomaly,
            ),
            (
                DetectionCapability::WatchdogLiveness,
                Severity::Critical,
                "expired",
                IncidentKind::SystemHang,
            ),
            (
                DetectionCapability::BootMeasurement,
                Severity::Critical,
                "pcr",
                IncidentKind::FirmwareTamper,
            ),
        ];
        for (cap, sev, detail, expected) in cases {
            let mut e = engine();
            let inc = e
                .ingest(
                    SimTime::at_cycle(0),
                    &ev(0, cap, sev, detail),
                    HealthState::Healthy,
                )
                .unwrap();
            assert_eq!(inc.kind, expected, "{cap:?}/{detail}");
        }
    }

    #[test]
    fn sequence_rule_escalates_staged_intrusions() {
        let mut e = engine();
        // first incident: policy violation (Alert)
        let first = e
            .ingest(
                SimTime::at_cycle(1_000),
                &ev(
                    1_000,
                    DetectionCapability::BusPolicing,
                    Severity::Alert,
                    "out-of-policy",
                ),
                HealthState::Healthy,
            )
            .unwrap();
        assert!(!first.escalated, "first incident must not escalate");
        assert_eq!(first.severity, Severity::Alert);
        // different-kind incident inside the window: escalated to Critical
        let second = e
            .ingest(
                SimTime::at_cycle(50_000),
                &ev(
                    50_000,
                    DetectionCapability::NetworkSignature,
                    Severity::Alert,
                    "malformed",
                ),
                HealthState::Suspicious,
            )
            .unwrap();
        assert!(second.escalated);
        assert_eq!(second.severity, Severity::Critical);
        assert_eq!(e.escalations(), 1);
    }

    #[test]
    fn same_kind_repeat_does_not_escalate() {
        let mut e = engine();
        for i in 0..3u64 {
            let inc = e
                .ingest(
                    SimTime::at_cycle(i * 10_000),
                    &ev(
                        i * 10_000,
                        DetectionCapability::ControlFlowIntegrity,
                        Severity::Critical,
                        "edge",
                    ),
                    HealthState::Healthy,
                )
                .unwrap();
            assert!(!inc.escalated, "repeat of the same kind escalated at {i}");
        }
        assert_eq!(e.escalations(), 0);
    }

    #[test]
    fn escalation_window_expires() {
        let mut e = engine();
        let w = CorrelationConfig::default().escalation_window.as_cycles();
        e.ingest(
            SimTime::at_cycle(0),
            &ev(0, DetectionCapability::BusPolicing, Severity::Alert, "x"),
            HealthState::Healthy,
        )
        .unwrap();
        let late = e
            .ingest(
                SimTime::at_cycle(w + 1),
                &ev(
                    w + 1,
                    DetectionCapability::NetworkSignature,
                    Severity::Alert,
                    "y",
                ),
                HealthState::Healthy,
            )
            .unwrap();
        assert!(!late.escalated, "escalation fired outside the window");
    }

    #[test]
    fn disabled_engine_never_escalates() {
        let mut e = CorrelationEngine::new(CorrelationConfig {
            enabled: false,
            ..Default::default()
        });
        e.ingest(
            SimTime::at_cycle(0),
            &ev(0, DetectionCapability::BusPolicing, Severity::Warning, "x"),
            HealthState::Healthy,
        )
        .unwrap();
        let second = e
            .ingest(
                SimTime::at_cycle(100),
                &ev(
                    100,
                    DetectionCapability::NetworkRate,
                    Severity::Warning,
                    "y",
                ),
                HealthState::Healthy,
            )
            .unwrap();
        assert!(!second.escalated);
    }

    #[test]
    fn degraded_mode_widens_windows_and_lowers_threshold() {
        let mut e = engine();
        let config = CorrelationConfig::default();
        assert_eq!(e.effective_threshold(), config.threshold);
        assert_eq!(e.effective_window(), config.window);
        assert_eq!(e.effective_escalation_window(), config.escalation_window);
        e.set_degraded(true);
        assert!(e.is_degraded());
        assert_eq!(e.effective_threshold(), config.threshold - 1);
        assert_eq!(
            e.effective_window().as_cycles(),
            config.window.as_cycles() * 4
        );
        assert_eq!(
            e.effective_escalation_window().as_cycles(),
            config.escalation_window.as_cycles() * 2
        );
        e.set_degraded(false);
        assert_eq!(e.effective_threshold(), config.threshold);
    }

    #[test]
    fn degraded_threshold_never_drops_below_two() {
        let mut e = CorrelationEngine::new(CorrelationConfig {
            threshold: 2,
            ..Default::default()
        });
        e.set_degraded(true);
        assert_eq!(e.effective_threshold(), 2);
        // A single Warning must still never raise on its own.
        assert!(e
            .ingest(
                SimTime::at_cycle(0),
                &ev(0, DetectionCapability::BusPolicing, Severity::Warning, "d"),
                HealthState::Degraded
            )
            .is_none());
    }

    #[test]
    fn degraded_mode_raises_on_fewer_warnings() {
        let mut e = engine();
        e.set_degraded(true);
        // Default threshold is 3; degraded lowers it to 2.
        assert!(e
            .ingest(
                SimTime::at_cycle(0),
                &ev(0, DetectionCapability::BusPolicing, Severity::Warning, "d"),
                HealthState::Degraded
            )
            .is_none());
        let inc = e.ingest(
            SimTime::at_cycle(0),
            &ev(10, DetectionCapability::BusPolicing, Severity::Warning, "d"),
            HealthState::Degraded,
        );
        assert!(inc.is_some(), "degraded threshold of 2 should have fired");
    }

    #[test]
    fn incident_ids_are_dense() {
        let mut e = engine();
        for i in 0..5 {
            let inc = e
                .ingest(
                    SimTime::at_cycle(0),
                    &ev(
                        i,
                        DetectionCapability::ControlFlowIntegrity,
                        Severity::Critical,
                        "x",
                    ),
                    HealthState::Healthy,
                )
                .unwrap();
            assert_eq!(inc.id, i);
        }
        assert_eq!(e.stats(), (5, 5));
    }
}
