//! The platform health state machine.
//!
//! `Healthy → Suspicious → Compromised → Degraded → Recovering → Healthy`:
//! incidents push the state toward `Compromised`, countermeasure execution
//! moves it to `Degraded` (services shed) or `Recovering` (repair in
//! progress), and a completed recovery with a quiet observation window
//! returns it to `Healthy`. Experiments use the recorded transition history
//! to compute time-in-state availability.

use cres_monitor::Severity;
use cres_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The platform health states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HealthState {
    /// Nominal operation.
    Healthy,
    /// Warnings observed; heightened monitoring.
    Suspicious,
    /// Confirmed incident; active threat present.
    Compromised,
    /// Operating with reduced functionality (critical services only).
    Degraded,
    /// Repair/restore in progress.
    Recovering,
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The health tracker with transition history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemHealth {
    state: HealthState,
    history: Vec<(SimTime, HealthState)>,
}

impl Default for SystemHealth {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemHealth {
    /// Creates a healthy tracker.
    pub fn new() -> Self {
        SystemHealth {
            state: HealthState::Healthy,
            history: vec![(SimTime::ZERO, HealthState::Healthy)],
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Full transition history `(when, entered state)`.
    pub fn history(&self) -> &[(SimTime, HealthState)] {
        &self.history
    }

    fn transition(&mut self, at: SimTime, to: HealthState) {
        if self.state != to {
            self.state = to;
            self.history.push((at, to));
        }
    }

    /// Records that an incident of `severity` was classified.
    pub fn on_incident(&mut self, at: SimTime, severity: Severity) {
        let next = match (self.state, severity) {
            (_, Severity::Critical) => HealthState::Compromised,
            (HealthState::Healthy, _) => HealthState::Suspicious,
            (HealthState::Suspicious, _) => HealthState::Compromised,
            (s, _) => s,
        };
        self.transition(at, next);
    }

    /// Records that degradation countermeasures took effect.
    pub fn on_degraded(&mut self, at: SimTime) {
        self.transition(at, HealthState::Degraded);
    }

    /// Records that recovery actions started.
    pub fn on_recovery_started(&mut self, at: SimTime) {
        self.transition(at, HealthState::Recovering);
    }

    /// Records that recovery completed and the observation window was
    /// quiet.
    pub fn on_recovered(&mut self, at: SimTime) {
        self.transition(at, HealthState::Healthy);
    }

    /// Cycles spent in `state` up to `now`. Transitions after `now` are
    /// ignored and the open segment is clamped at `now`, so querying at any
    /// instant partitions exactly `now` cycles across the states.
    pub fn time_in(&self, state: HealthState, now: SimTime) -> u64 {
        let mut total = 0u64;
        for pair in self.history.windows(2) {
            let (start, s) = pair[0];
            let (end, _) = pair[1];
            if s == state {
                total += end.min(now).saturating_since(start).as_cycles();
            }
        }
        if let Some(&(start, s)) = self.history.last() {
            if s == state {
                total += now.saturating_since(start).as_cycles();
            }
        }
        total
    }

    /// Fraction of time up to `now` spent in [`HealthState::Healthy`] or
    /// [`HealthState::Degraded`] (i.e. delivering at least critical
    /// services).
    pub fn service_availability(&self, now: SimTime) -> f64 {
        let total = now.cycle().max(1);
        let up = self.time_in(HealthState::Healthy, now) + self.time_in(HealthState::Degraded, now);
        up as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> SimTime {
        SimTime::at_cycle(c)
    }

    #[test]
    fn starts_healthy() {
        let h = SystemHealth::new();
        assert_eq!(h.state(), HealthState::Healthy);
        assert_eq!(h.history().len(), 1);
    }

    #[test]
    fn warning_escalation_ladder() {
        let mut h = SystemHealth::new();
        h.on_incident(t(10), Severity::Alert);
        assert_eq!(h.state(), HealthState::Suspicious);
        h.on_incident(t(20), Severity::Alert);
        assert_eq!(h.state(), HealthState::Compromised);
    }

    #[test]
    fn critical_jumps_straight_to_compromised() {
        let mut h = SystemHealth::new();
        h.on_incident(t(10), Severity::Critical);
        assert_eq!(h.state(), HealthState::Compromised);
    }

    #[test]
    fn full_lifecycle() {
        let mut h = SystemHealth::new();
        h.on_incident(t(100), Severity::Critical);
        h.on_degraded(t(150));
        h.on_recovery_started(t(300));
        h.on_recovered(t(500));
        assert_eq!(h.state(), HealthState::Healthy);
        let states: Vec<HealthState> = h.history().iter().map(|(_, s)| *s).collect();
        assert_eq!(
            states,
            vec![
                HealthState::Healthy,
                HealthState::Compromised,
                HealthState::Degraded,
                HealthState::Recovering,
                HealthState::Healthy
            ]
        );
    }

    #[test]
    fn repeated_same_state_not_recorded() {
        let mut h = SystemHealth::new();
        h.on_incident(t(10), Severity::Critical);
        h.on_incident(t(20), Severity::Critical);
        h.on_incident(t(30), Severity::Critical);
        assert_eq!(h.history().len(), 2);
    }

    #[test]
    fn time_accounting() {
        let mut h = SystemHealth::new();
        h.on_incident(t(100), Severity::Critical); // healthy 0..100
        h.on_recovery_started(t(150)); // compromised 100..150
        h.on_recovered(t(200)); // recovering 150..200, healthy 200..300
        let now = t(300);
        assert_eq!(h.time_in(HealthState::Healthy, now), 200);
        assert_eq!(h.time_in(HealthState::Compromised, now), 50);
        assert_eq!(h.time_in(HealthState::Recovering, now), 50);
        assert_eq!(h.time_in(HealthState::Degraded, now), 0);
    }

    #[test]
    fn availability_counts_degraded_as_up() {
        let mut h = SystemHealth::new();
        h.on_incident(t(100), Severity::Critical);
        h.on_degraded(t(120));
        // healthy 100 + degraded 80 out of 200
        let a = h.service_availability(t(200));
        assert!((a - 0.9).abs() < 1e-9, "availability {a}");
    }
}
