//! The platform health state machine.
//!
//! `Healthy → Suspicious → Compromised → Degraded → Recovering → Healthy`:
//! incidents push the state toward `Compromised`, countermeasure execution
//! moves it to `Degraded` (services shed) or `Recovering` (repair in
//! progress), and a completed recovery with a quiet observation window
//! returns it to `Healthy`. Experiments use the recorded transition history
//! to compute time-in-state availability.

use cres_monitor::Severity;
use cres_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The platform health states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HealthState {
    /// Nominal operation.
    Healthy,
    /// Warnings observed; heightened monitoring.
    Suspicious,
    /// Confirmed incident; active threat present.
    Compromised,
    /// Operating with reduced functionality (critical services only).
    Degraded,
    /// Repair/restore in progress.
    Recovering,
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The health tracker with transition history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemHealth {
    state: HealthState,
    history: Vec<(SimTime, HealthState)>,
}

impl Default for SystemHealth {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemHealth {
    /// Creates a healthy tracker.
    pub fn new() -> Self {
        SystemHealth {
            state: HealthState::Healthy,
            history: vec![(SimTime::ZERO, HealthState::Healthy)],
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Full transition history `(when, entered state)`.
    pub fn history(&self) -> &[(SimTime, HealthState)] {
        &self.history
    }

    fn transition(&mut self, at: SimTime, to: HealthState) {
        if self.state != to {
            self.state = to;
            self.history.push((at, to));
        }
    }

    /// Records that an incident of `severity` was classified.
    pub fn on_incident(&mut self, at: SimTime, severity: Severity) {
        let next = match (self.state, severity) {
            (_, Severity::Critical) => HealthState::Compromised,
            (HealthState::Healthy, _) => HealthState::Suspicious,
            (HealthState::Suspicious, _) => HealthState::Compromised,
            (s, _) => s,
        };
        self.transition(at, next);
    }

    /// Records that degradation countermeasures took effect.
    pub fn on_degraded(&mut self, at: SimTime) {
        self.transition(at, HealthState::Degraded);
    }

    /// Records that recovery actions started.
    pub fn on_recovery_started(&mut self, at: SimTime) {
        self.transition(at, HealthState::Recovering);
    }

    /// Records that recovery completed and the observation window was
    /// quiet.
    pub fn on_recovered(&mut self, at: SimTime) {
        self.transition(at, HealthState::Healthy);
    }

    /// Cycles spent in `state` up to `now`. Transitions after `now` are
    /// ignored and the open segment is clamped at `now`, so querying at any
    /// instant partitions exactly `now` cycles across the states.
    pub fn time_in(&self, state: HealthState, now: SimTime) -> u64 {
        let mut total = 0u64;
        for pair in self.history.windows(2) {
            let (start, s) = pair[0];
            let (end, _) = pair[1];
            if s == state {
                total += end.min(now).saturating_since(start).as_cycles();
            }
        }
        if let Some(&(start, s)) = self.history.last() {
            if s == state {
                total += now.saturating_since(start).as_cycles();
            }
        }
        total
    }

    /// Fraction of time up to `now` spent in [`HealthState::Healthy`] or
    /// [`HealthState::Degraded`] (i.e. delivering at least critical
    /// services).
    pub fn service_availability(&self, now: SimTime) -> f64 {
        let total = now.cycle().max(1);
        let up = self.time_in(HealthState::Healthy, now) + self.time_in(HealthState::Degraded, now);
        up as f64 / total as f64
    }
}

/// Heartbeat-based liveness tracking for the monitor fleet.
///
/// Every periodic sampling round each live monitor reports a heartbeat; a
/// monitor that misses [`MonitorHealth::miss_threshold`] consecutive rounds
/// is declared dead and **quarantined** — the SSM stops trusting its
/// silence, records the loss as evidence, and switches the correlation
/// engine into sensing-degraded mode so the remaining monitors compensate
/// instead of the platform going blind.
///
/// # Example
///
/// ```
/// use cres_ssm::MonitorHealth;
/// use cres_sim::{SimDuration, SimTime};
///
/// let mut health = MonitorHealth::new(2, SimDuration::cycles(1_000), 3);
/// health.heartbeat(0, SimTime::at_cycle(1_000));
/// health.heartbeat(1, SimTime::at_cycle(1_000));
/// // Monitor 1 falls silent; three missed deadlines later it is quarantined.
/// health.heartbeat(0, SimTime::at_cycle(5_000));
/// let dead = health.check(SimTime::at_cycle(5_000));
/// assert_eq!(dead, vec![1]);
/// assert!(health.is_quarantined(1));
/// assert!(!health.is_quarantined(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorHealth {
    /// Last heartbeat per monitor index (`None` until first beat).
    last_seen: Vec<Option<SimTime>>,
    /// Monitors declared dead.
    quarantined: Vec<bool>,
    /// Expected heartbeat period (the platform's monitor sampling period).
    period: SimDuration,
    /// Consecutive missed periods tolerated before quarantine.
    miss_threshold: u32,
}

impl MonitorHealth {
    /// Creates a tracker for `count` monitors beating every `period`,
    /// tolerating `miss_threshold` missed periods.
    pub fn new(count: usize, period: SimDuration, miss_threshold: u32) -> Self {
        MonitorHealth {
            last_seen: vec![None; count],
            quarantined: vec![false; count],
            period,
            miss_threshold: miss_threshold.max(1),
        }
    }

    /// Number of monitors tracked.
    pub fn monitor_count(&self) -> usize {
        self.last_seen.len()
    }

    /// Consecutive missed periods tolerated before quarantine.
    pub fn miss_threshold(&self) -> u32 {
        self.miss_threshold
    }

    /// Records a heartbeat from monitor `index` at `now`. Heartbeats from a
    /// quarantined monitor are ignored — a resurrected monitor is not
    /// trusted again within a run.
    pub fn heartbeat(&mut self, index: usize, now: SimTime) {
        if index < self.last_seen.len() && !self.quarantined[index] {
            self.last_seen[index] = Some(match self.last_seen[index] {
                Some(prev) => prev.max(now),
                None => now,
            });
        }
    }

    /// Sweeps all monitors at `now` and returns the indices quarantined by
    /// *this* sweep (each index is returned exactly once per run). A monitor
    /// is dead once `now` is more than `miss_threshold × period` past its
    /// last heartbeat; monitors that never beat are measured from cycle 0.
    pub fn check(&mut self, now: SimTime) -> Vec<usize> {
        let deadline = self
            .period
            .as_cycles()
            .saturating_mul(self.miss_threshold as u64);
        let mut newly_dead = Vec::new();
        for index in 0..self.last_seen.len() {
            if self.quarantined[index] {
                continue;
            }
            let last = self.last_seen[index].unwrap_or(SimTime::ZERO);
            if now.saturating_since(last).as_cycles() > deadline {
                self.quarantined[index] = true;
                newly_dead.push(index);
            }
        }
        newly_dead
    }

    /// True when monitor `index` has been quarantined.
    pub fn is_quarantined(&self, index: usize) -> bool {
        self.quarantined.get(index).copied().unwrap_or(false)
    }

    /// Indices of all quarantined monitors, ascending.
    pub fn quarantined(&self) -> Vec<usize> {
        (0..self.quarantined.len())
            .filter(|&i| self.quarantined[i])
            .collect()
    }

    /// Number of quarantined monitors.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.iter().filter(|&&q| q).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> SimTime {
        SimTime::at_cycle(c)
    }

    #[test]
    fn starts_healthy() {
        let h = SystemHealth::new();
        assert_eq!(h.state(), HealthState::Healthy);
        assert_eq!(h.history().len(), 1);
    }

    #[test]
    fn warning_escalation_ladder() {
        let mut h = SystemHealth::new();
        h.on_incident(t(10), Severity::Alert);
        assert_eq!(h.state(), HealthState::Suspicious);
        h.on_incident(t(20), Severity::Alert);
        assert_eq!(h.state(), HealthState::Compromised);
    }

    #[test]
    fn critical_jumps_straight_to_compromised() {
        let mut h = SystemHealth::new();
        h.on_incident(t(10), Severity::Critical);
        assert_eq!(h.state(), HealthState::Compromised);
    }

    #[test]
    fn full_lifecycle() {
        let mut h = SystemHealth::new();
        h.on_incident(t(100), Severity::Critical);
        h.on_degraded(t(150));
        h.on_recovery_started(t(300));
        h.on_recovered(t(500));
        assert_eq!(h.state(), HealthState::Healthy);
        let states: Vec<HealthState> = h.history().iter().map(|(_, s)| *s).collect();
        assert_eq!(
            states,
            vec![
                HealthState::Healthy,
                HealthState::Compromised,
                HealthState::Degraded,
                HealthState::Recovering,
                HealthState::Healthy
            ]
        );
    }

    #[test]
    fn repeated_same_state_not_recorded() {
        let mut h = SystemHealth::new();
        h.on_incident(t(10), Severity::Critical);
        h.on_incident(t(20), Severity::Critical);
        h.on_incident(t(30), Severity::Critical);
        assert_eq!(h.history().len(), 2);
    }

    #[test]
    fn time_accounting() {
        let mut h = SystemHealth::new();
        h.on_incident(t(100), Severity::Critical); // healthy 0..100
        h.on_recovery_started(t(150)); // compromised 100..150
        h.on_recovered(t(200)); // recovering 150..200, healthy 200..300
        let now = t(300);
        assert_eq!(h.time_in(HealthState::Healthy, now), 200);
        assert_eq!(h.time_in(HealthState::Compromised, now), 50);
        assert_eq!(h.time_in(HealthState::Recovering, now), 50);
        assert_eq!(h.time_in(HealthState::Degraded, now), 0);
    }

    #[test]
    fn availability_counts_degraded_as_up() {
        let mut h = SystemHealth::new();
        h.on_incident(t(100), Severity::Critical);
        h.on_degraded(t(120));
        // healthy 100 + degraded 80 out of 200
        let a = h.service_availability(t(200));
        assert!((a - 0.9).abs() < 1e-9, "availability {a}");
    }

    fn beats() -> MonitorHealth {
        MonitorHealth::new(3, SimDuration::cycles(1_000), 3)
    }

    #[test]
    fn live_monitors_are_never_quarantined() {
        let mut m = beats();
        for round in 1..=20u64 {
            let now = t(round * 1_000);
            for i in 0..3 {
                m.heartbeat(i, now);
            }
            assert!(m.check(now).is_empty(), "false positive at round {round}");
        }
        assert_eq!(m.quarantined_count(), 0);
    }

    #[test]
    fn silent_monitor_is_quarantined_after_threshold() {
        let mut m = beats();
        // All three beat at 1000; monitor 2 then falls silent.
        for i in 0..3 {
            m.heartbeat(i, t(1_000));
        }
        // Within 3 periods of its last beat: still trusted.
        m.heartbeat(0, t(4_000));
        m.heartbeat(1, t(4_000));
        assert!(m.check(t(4_000)).is_empty());
        // Past the 3-period deadline: quarantined, exactly once.
        m.heartbeat(0, t(5_000));
        m.heartbeat(1, t(5_000));
        assert_eq!(m.check(t(5_000)), vec![2]);
        assert!(m.is_quarantined(2));
        assert_eq!(m.quarantined(), vec![2]);
        // Live monitors keep beating; the dead one is not re-reported.
        m.heartbeat(0, t(9_000));
        m.heartbeat(1, t(9_000));
        assert!(m.check(t(9_000)).is_empty(), "re-quarantined");
    }

    #[test]
    fn monitor_that_never_beats_is_measured_from_zero() {
        let mut m = beats();
        assert!(m.check(t(3_000)).is_empty());
        assert_eq!(m.check(t(3_001)), vec![0, 1, 2]);
    }

    #[test]
    fn quarantined_monitor_heartbeats_are_ignored() {
        let mut m = beats();
        assert_eq!(m.check(t(10_000)), vec![0, 1, 2]);
        m.heartbeat(1, t(10_500));
        assert!(m.is_quarantined(1));
        assert_eq!(m.quarantined_count(), 3);
    }

    #[test]
    fn out_of_range_indices_are_harmless() {
        let mut m = beats();
        m.heartbeat(99, t(1_000));
        assert!(!m.is_quarantined(99));
    }
}
