//! Compact text storage for evidence records.
//!
//! Evidence categories ("bus-policy", "incident", …) and steady-state
//! payloads are short, but [`crate::EvidenceStore::append`] used to copy
//! both into fresh `String`s — the last 2 allocs/iter on the
//! `evidence_append` bench after PR 4 made the surrounding tick
//! allocation-free. [`EvText`] stores up to [`EvText::INLINE_CAP`] bytes
//! inline (no heap) and spills to an owned `String` only for the long
//! incident payloads that are already built with `format!` on cold paths.

use std::fmt;
use std::ops::Deref;

/// A string that lives inline when short, on the heap when long.
///
/// Behaves like `&str` wherever the evidence pipeline reads it (it derefs
/// to `str` and compares against string literals); constructing one from a
/// `&str` of at most [`EvText::INLINE_CAP`] bytes performs **zero heap
/// allocations** — the contract the `evidence_append` alloc ratchet pins.
#[derive(Clone)]
pub struct EvText(Repr);

#[derive(Clone)]
enum Repr {
    Inline {
        len: u8,
        buf: [u8; EvText::INLINE_CAP],
    },
    Heap(String),
}

impl EvText {
    /// Longest byte length stored without touching the heap. Every
    /// steady-state category and payload the platform emits fits; longer
    /// text (rendered incident detail) spills to an owned `String`.
    pub const INLINE_CAP: usize = 63;

    /// The empty text.
    pub fn new() -> Self {
        EvText(Repr::Inline {
            len: 0,
            buf: [0u8; Self::INLINE_CAP],
        })
    }

    /// The text as a string slice.
    pub fn as_str(&self) -> &str {
        match &self.0 {
            Repr::Inline { len, buf } => std::str::from_utf8(&buf[..usize::from(*len)])
                .expect("EvText inline bytes are copied from valid UTF-8"),
            Repr::Heap(s) => s.as_str(),
        }
    }

    /// Byte length.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => usize::from(*len),
            Repr::Heap(s) => s.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one character, spilling to the heap if the inline buffer is
    /// full.
    pub fn push(&mut self, c: char) {
        let must_spill = matches!(
            &self.0,
            Repr::Inline { len, .. } if usize::from(*len) + c.len_utf8() > Self::INLINE_CAP
        );
        if must_spill {
            let mut s = String::with_capacity(self.len() + c.len_utf8());
            s.push_str(self.as_str());
            self.0 = Repr::Heap(s);
        }
        match &mut self.0 {
            Repr::Heap(s) => s.push(c),
            Repr::Inline { len, buf } => {
                let at = usize::from(*len);
                c.encode_utf8(&mut buf[at..]);
                *len = (at + c.len_utf8()) as u8;
            }
        }
    }
}

impl Default for EvText {
    fn default() -> Self {
        Self::new()
    }
}

impl From<&str> for EvText {
    fn from(s: &str) -> Self {
        if s.len() <= Self::INLINE_CAP {
            let mut buf = [0u8; Self::INLINE_CAP];
            buf[..s.len()].copy_from_slice(s.as_bytes());
            EvText(Repr::Inline {
                len: s.len() as u8,
                buf,
            })
        } else {
            EvText(Repr::Heap(s.to_string()))
        }
    }
}

impl From<String> for EvText {
    fn from(s: String) -> Self {
        if s.len() <= Self::INLINE_CAP {
            Self::from(s.as_str())
        } else {
            EvText(Repr::Heap(s))
        }
    }
}

impl Deref for EvText {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for EvText {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

// Equality is over the text, never the representation: an inline "x" and a
// heap "x" are the same value.
impl PartialEq for EvText {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for EvText {}

impl PartialEq<str> for EvText {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for EvText {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl fmt::Display for EvText {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self.as_str(), f)
    }
}

impl fmt::Debug for EvText {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_text_stays_inline() {
        let t = EvText::from("bus-policy");
        assert!(matches!(t.0, Repr::Inline { .. }));
        assert_eq!(t.as_str(), "bus-policy");
        assert_eq!(t.len(), 10);
        assert_eq!(t, "bus-policy");
    }

    #[test]
    fn exactly_cap_stays_inline_one_more_spills() {
        let at_cap = "x".repeat(EvText::INLINE_CAP);
        let t = EvText::from(at_cap.as_str());
        assert!(matches!(t.0, Repr::Inline { .. }));
        let over = "x".repeat(EvText::INLINE_CAP + 1);
        let t = EvText::from(over.as_str());
        assert!(matches!(t.0, Repr::Heap(_)));
        assert_eq!(t.as_str(), over);
    }

    #[test]
    fn push_spills_at_boundary_and_preserves_content() {
        let mut t = EvText::from("y".repeat(EvText::INLINE_CAP - 1).as_str());
        t.push('a');
        assert!(matches!(t.0, Repr::Inline { .. }));
        t.push('b');
        assert!(matches!(t.0, Repr::Heap(_)));
        let mut expect = "y".repeat(EvText::INLINE_CAP - 1);
        expect.push_str("ab");
        assert_eq!(t.as_str(), expect);
    }

    #[test]
    fn multibyte_push_never_splits_a_char() {
        // 62 bytes inline, then a 3-byte char must spill whole.
        let mut t = EvText::from("z".repeat(62).as_str());
        t.push('€');
        assert!(matches!(t.0, Repr::Heap(_)));
        assert!(t.as_str().ends_with('€'));
        assert_eq!(t.len(), 65);
    }

    #[test]
    fn equality_ignores_representation() {
        let inline = EvText::from("same");
        let mut heap = EvText(Repr::Heap("same".to_string()));
        assert_eq!(inline, heap);
        heap.push('!');
        assert_ne!(inline, heap);
    }

    #[test]
    fn deref_and_display_behave_like_str() {
        let t = EvText::from("started reboot");
        assert!(t.starts_with("started"));
        assert_eq!(format!("{t}"), "started reboot");
        assert_eq!(format!("{t:?}"), "\"started reboot\"");
    }
}
