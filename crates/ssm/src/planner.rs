//! Response planning: incident → plan of countermeasures.
//!
//! The planner is where the paper's active/passive contrast lives as
//! policy:
//!
//! * [`PlannerMode::Active`] — the CRES posture: targeted countermeasures
//!   per incident kind, escalating to recovery actions, preferring
//!   isolation + degradation over whole-system resets;
//! * [`PlannerMode::PassiveRebootOnly`] — the state of the art the paper
//!   critiques: the only response to anything is a reboot (and most
//!   incidents are never even seen, because the baseline's only detector
//!   is the watchdog);
//! * [`PlannerMode::None`] — detection without response (for ablations).

use crate::correlate::{Incident, IncidentKind};
use cres_monitor::Subject;
use cres_soc::addr::MasterId;
use cres_soc::task::TaskId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Graded service-degradation tiers, from full service to fail-safe halt.
///
/// The tiers form a total order (`Full < ShedNonCritical < CriticalOnly <
/// SafeHalt`): a *higher* tier is a *tighter* posture. The response policy
/// engine (in `cres-response`) moves the platform along this ladder one
/// step at a time — raising under incident pressure, lowering with
/// hysteresis as health returns — and the planner consults the current
/// tier when composing plans, so countermeasures tighten with posture.
///
/// # Example
///
/// ```
/// use cres_ssm::DegradationTier;
/// assert!(DegradationTier::Full < DegradationTier::SafeHalt);
/// assert_eq!(DegradationTier::Full.raised(), DegradationTier::ShedNonCritical);
/// assert_eq!(DegradationTier::Full.lowered(), DegradationTier::Full);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DegradationTier {
    /// All tasks run, network open, actuators live.
    Full,
    /// Best-effort tasks suspended, network ingress rate-limited.
    ShedNonCritical,
    /// Only `Critical` tasks run, network quarantined.
    CriticalOnly,
    /// Everything suspended, network quarantined, actuators locked in
    /// their safe position — the fail-safe end state.
    SafeHalt,
}

impl DegradationTier {
    /// All tiers, loosest posture first.
    pub const ALL: [DegradationTier; 4] = [
        DegradationTier::Full,
        DegradationTier::ShedNonCritical,
        DegradationTier::CriticalOnly,
        DegradationTier::SafeHalt,
    ];

    /// Dense index in [`DegradationTier::ALL`] order.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable lower-case name (used in the report JSON schema).
    pub const fn name(self) -> &'static str {
        match self {
            DegradationTier::Full => "full",
            DegradationTier::ShedNonCritical => "shed-non-critical",
            DegradationTier::CriticalOnly => "critical-only",
            DegradationTier::SafeHalt => "safe-halt",
        }
    }

    /// Resolves a name produced by [`DegradationTier::name`].
    pub fn from_name(name: &str) -> Option<DegradationTier> {
        DegradationTier::ALL.into_iter().find(|t| t.name() == name)
    }

    /// One step tighter (`SafeHalt` saturates).
    pub const fn raised(self) -> DegradationTier {
        match self {
            DegradationTier::Full => DegradationTier::ShedNonCritical,
            DegradationTier::ShedNonCritical => DegradationTier::CriticalOnly,
            DegradationTier::CriticalOnly | DegradationTier::SafeHalt => DegradationTier::SafeHalt,
        }
    }

    /// One step looser (`Full` saturates).
    pub const fn lowered(self) -> DegradationTier {
        match self {
            DegradationTier::Full | DegradationTier::ShedNonCritical => DegradationTier::Full,
            DegradationTier::CriticalOnly => DegradationTier::ShedNonCritical,
            DegradationTier::SafeHalt => DegradationTier::CriticalOnly,
        }
    }
}

impl fmt::Display for DegradationTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One executable countermeasure, fully parameterised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResponseAction {
    /// Gate a master off the interconnect and revoke its grants.
    IsolateMaster(MasterId),
    /// Kill a task.
    KillTask(TaskId),
    /// Restart a task from its entry point.
    RestartTask(TaskId),
    /// Quarantine the NIC (drop all traffic).
    QuarantineNetwork,
    /// Rate-limit NIC ingress to the given packets/window.
    RateLimitNetwork(u32),
    /// Zeroise TEE/keystore key material.
    ZeroizeKeys,
    /// Roll firmware back to the previous slot and reboot.
    RollbackFirmware,
    /// Reflash from the golden image and reboot.
    GoldenRecovery,
    /// Reboot all application cores (the passive countermeasure).
    RebootSystem,
    /// Enter degraded mode: suspend all non-critical tasks.
    EnterDegradedMode,
    /// Lock all actuators in their current safe position.
    LockActuators,
    /// Stop trusting a sensor: hold last-good value / fall back.
    DistrustSensor(usize),
}

impl fmt::Display for ResponseAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An ordered plan of countermeasures for one incident.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponsePlan {
    /// The incident id this plan answers.
    pub incident: u64,
    /// Actions in execution order.
    pub actions: Vec<ResponseAction>,
}

impl ResponsePlan {
    /// True when the plan contains no actions.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// Planner policy mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlannerMode {
    /// Targeted active countermeasures (the CRES posture).
    Active,
    /// Reboot is the only countermeasure (the passive baseline).
    PassiveRebootOnly,
    /// Detection only; no response (ablation).
    None,
}

/// The response planner.
#[derive(Debug, Clone)]
pub struct ResponsePlanner {
    mode: PlannerMode,
    tier: DegradationTier,
    plans_issued: u64,
}

impl ResponsePlanner {
    /// Creates a planner in the given mode.
    pub fn new(mode: PlannerMode) -> Self {
        ResponsePlanner {
            mode,
            tier: DegradationTier::Full,
            plans_issued: 0,
        }
    }

    /// The active mode.
    pub fn mode(&self) -> PlannerMode {
        self.mode
    }

    /// The degradation tier the planner is composing plans for.
    pub fn tier(&self) -> DegradationTier {
        self.tier
    }

    /// Informs the planner of the platform's current degradation tier
    /// (set by the response policy engine). At `CriticalOnly` and above
    /// the planner stops offering soft network countermeasures: a flood
    /// that would normally be rate-limited is quarantined outright.
    pub fn set_tier(&mut self, tier: DegradationTier) {
        self.tier = tier;
    }

    /// Number of non-empty plans issued.
    pub fn plans_issued(&self) -> u64 {
        self.plans_issued
    }

    /// Plans countermeasures for an incident.
    pub fn plan(&mut self, incident: &Incident) -> ResponsePlan {
        let actions = match self.mode {
            PlannerMode::None => Vec::new(),
            PlannerMode::PassiveRebootOnly => vec![ResponseAction::RebootSystem],
            PlannerMode::Active => self.active_plan(incident),
        };
        if !actions.is_empty() {
            self.plans_issued += 1;
        }
        ResponsePlan {
            incident: incident.id,
            actions,
        }
    }

    fn active_plan(&self, incident: &Incident) -> Vec<ResponseAction> {
        use ResponseAction::*;
        match incident.kind {
            IncidentKind::CodeInjection | IncidentKind::BehaviourAnomaly => {
                let mut plan = Vec::new();
                if let Subject::Task(task) = incident.subject {
                    plan.push(KillTask(task));
                    plan.push(RestartTask(task));
                } else if let Subject::Master(m) = incident.subject {
                    plan.push(IsolateMaster(m));
                }
                plan.push(EnterDegradedMode);
                plan
            }
            IncidentKind::MemoryProbe | IncidentKind::PolicyViolation => match incident.subject {
                Subject::Master(m) if !matches!(m, MasterId::SSM) => {
                    vec![IsolateMaster(m)]
                }
                _ => vec![EnterDegradedMode],
            },
            IncidentKind::FirmwareTamper => {
                vec![EnterDegradedMode, RollbackFirmware]
            }
            IncidentKind::NetworkFlood => {
                // Above CriticalOnly the soft option is gone: posture says
                // non-critical traffic is already shed, so quarantine.
                if self.tier >= DegradationTier::CriticalOnly {
                    vec![QuarantineNetwork]
                } else {
                    vec![RateLimitNetwork(16)]
                }
            }
            IncidentKind::ExploitTraffic => vec![QuarantineNetwork],
            IncidentKind::Exfiltration => {
                vec![QuarantineNetwork, ZeroizeKeys, EnterDegradedMode]
            }
            IncidentKind::SensorSpoof => match incident.subject {
                Subject::Sensor(idx) => vec![DistrustSensor(idx), LockActuators],
                _ => vec![LockActuators],
            },
            IncidentKind::FaultInjection => vec![ZeroizeKeys, LockActuators, EnterDegradedMode],
            IncidentKind::DebugIntrusion => {
                vec![IsolateMaster(MasterId::DEBUG), ZeroizeKeys]
            }
            IncidentKind::SystemHang => vec![RebootSystem],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthState;
    use cres_monitor::Severity;
    use cres_sim::SimTime;

    fn incident(kind: IncidentKind, subject: Subject) -> Incident {
        Incident {
            id: 1,
            at: SimTime::at_cycle(10),
            classified_at: SimTime::at_cycle(10),
            kind,
            severity: Severity::Critical,
            subject,
            evidence: vec![],
            health_at: HealthState::Healthy,
            escalated: false,
        }
    }

    #[test]
    fn none_mode_never_plans() {
        let mut p = ResponsePlanner::new(PlannerMode::None);
        let plan = p.plan(&incident(
            IncidentKind::CodeInjection,
            Subject::Task(TaskId(1)),
        ));
        assert!(plan.is_empty());
        assert_eq!(p.plans_issued(), 0);
    }

    #[test]
    fn passive_mode_always_reboots() {
        let mut p = ResponsePlanner::new(PlannerMode::PassiveRebootOnly);
        for kind in [
            IncidentKind::CodeInjection,
            IncidentKind::Exfiltration,
            IncidentKind::NetworkFlood,
        ] {
            let plan = p.plan(&incident(kind, Subject::Platform));
            assert_eq!(plan.actions, vec![ResponseAction::RebootSystem]);
        }
    }

    #[test]
    fn code_injection_kills_and_restarts_the_task() {
        let mut p = ResponsePlanner::new(PlannerMode::Active);
        let plan = p.plan(&incident(
            IncidentKind::CodeInjection,
            Subject::Task(TaskId(7)),
        ));
        assert_eq!(
            plan.actions,
            vec![
                ResponseAction::KillTask(TaskId(7)),
                ResponseAction::RestartTask(TaskId(7)),
                ResponseAction::EnterDegradedMode
            ]
        );
    }

    #[test]
    fn memory_probe_isolates_the_offending_master() {
        let mut p = ResponsePlanner::new(PlannerMode::Active);
        let plan = p.plan(&incident(
            IncidentKind::MemoryProbe,
            Subject::Master(MasterId::DMA),
        ));
        assert_eq!(
            plan.actions,
            vec![ResponseAction::IsolateMaster(MasterId::DMA)]
        );
    }

    #[test]
    fn planner_never_isolates_the_ssm_itself() {
        let mut p = ResponsePlanner::new(PlannerMode::Active);
        let plan = p.plan(&incident(
            IncidentKind::MemoryProbe,
            Subject::Master(MasterId::SSM),
        ));
        assert!(!plan
            .actions
            .contains(&ResponseAction::IsolateMaster(MasterId::SSM)));
    }

    #[test]
    fn exfiltration_quarantines_and_zeroizes() {
        let mut p = ResponsePlanner::new(PlannerMode::Active);
        let plan = p.plan(&incident(IncidentKind::Exfiltration, Subject::Network));
        assert!(plan.actions.contains(&ResponseAction::QuarantineNetwork));
        assert!(plan.actions.contains(&ResponseAction::ZeroizeKeys));
    }

    #[test]
    fn sensor_spoof_distrusts_and_locks() {
        let mut p = ResponsePlanner::new(PlannerMode::Active);
        let plan = p.plan(&incident(IncidentKind::SensorSpoof, Subject::Sensor(2)));
        assert_eq!(
            plan.actions,
            vec![
                ResponseAction::DistrustSensor(2),
                ResponseAction::LockActuators
            ]
        );
    }

    #[test]
    fn flood_rate_limits_rather_than_quarantines() {
        let mut p = ResponsePlanner::new(PlannerMode::Active);
        let plan = p.plan(&incident(IncidentKind::NetworkFlood, Subject::Network));
        assert_eq!(plan.actions, vec![ResponseAction::RateLimitNetwork(16)]);
    }

    #[test]
    fn hang_still_reboots_in_active_mode() {
        // a hung system has no targeted alternative — the watchdog path
        // survives as the backstop
        let mut p = ResponsePlanner::new(PlannerMode::Active);
        let plan = p.plan(&incident(IncidentKind::SystemHang, Subject::Platform));
        assert_eq!(plan.actions, vec![ResponseAction::RebootSystem]);
    }

    #[test]
    fn tier_ladder_is_total_and_single_step() {
        for (i, tier) in DegradationTier::ALL.into_iter().enumerate() {
            assert_eq!(tier.index(), i);
            assert_eq!(DegradationTier::from_name(tier.name()), Some(tier));
            assert!(tier.raised() >= tier);
            assert!(tier.lowered() <= tier);
            assert!(tier.raised().index() <= i + 1);
            assert!(tier.lowered().index() + 1 >= i);
        }
        assert_eq!(
            DegradationTier::SafeHalt.raised(),
            DegradationTier::SafeHalt
        );
        assert_eq!(DegradationTier::Full.lowered(), DegradationTier::Full);
        assert_eq!(DegradationTier::from_name("not-a-tier"), None);
    }

    #[test]
    fn flood_quarantined_at_critical_only_tier() {
        let mut p = ResponsePlanner::new(PlannerMode::Active);
        p.set_tier(DegradationTier::CriticalOnly);
        let plan = p.plan(&incident(IncidentKind::NetworkFlood, Subject::Network));
        assert_eq!(plan.actions, vec![ResponseAction::QuarantineNetwork]);
        p.set_tier(DegradationTier::Full);
        let plan = p.plan(&incident(IncidentKind::NetworkFlood, Subject::Network));
        assert_eq!(plan.actions, vec![ResponseAction::RateLimitNetwork(16)]);
    }

    #[test]
    fn every_kind_has_an_active_plan() {
        let mut p = ResponsePlanner::new(PlannerMode::Active);
        for kind in [
            IncidentKind::CodeInjection,
            IncidentKind::MemoryProbe,
            IncidentKind::FirmwareTamper,
            IncidentKind::NetworkFlood,
            IncidentKind::ExploitTraffic,
            IncidentKind::Exfiltration,
            IncidentKind::SensorSpoof,
            IncidentKind::FaultInjection,
            IncidentKind::DebugIntrusion,
            IncidentKind::BehaviourAnomaly,
            IncidentKind::PolicyViolation,
            IncidentKind::SystemHang,
        ] {
            let plan = p.plan(&incident(kind, Subject::Platform));
            assert!(!plan.is_empty(), "{kind} has no plan");
        }
    }
}
