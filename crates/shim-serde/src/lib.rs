#![warn(missing_docs)]

//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the real `serde`
//! cannot be fetched. This workspace only ever uses serde as a *marker*
//! (`#[derive(Serialize, Deserialize)]` on report and domain types; nothing
//! drives serde's `Serializer`/`Deserializer` data model), so this crate
//! provides exactly that surface:
//!
//! * [`Serialize`] / [`Deserialize`] marker traits with blanket impls, so
//!   any `T: Serialize` bound a caller writes is satisfiable;
//! * the `derive` feature re-exports no-op derive macros under the same
//!   names, keeping every `#[derive(Serialize, Deserialize)]` in the tree
//!   compiling unchanged.
//!
//! Types that genuinely need to cross a process boundary serialize through
//! the hand-written JSON codec in `cres_platform::json` instead.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use shim_serde_derive::{Deserialize, Serialize};
