//! Breach report generation.

use crate::timeline::{Phase, Timeline};
use cres_ssm::{ChainError, EvidenceRecord, EvidenceStore};
use serde::Serialize;
use std::collections::BTreeMap;

/// A generated breach report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BreachReport {
    /// Chain-integrity verdict (`None` = intact, `Some` = first failure).
    pub integrity_failure: Option<String>,
    /// Total evidence records examined.
    pub total_records: usize,
    /// Record counts per category.
    pub by_category: BTreeMap<String, usize>,
    /// Extracted incident payload lines.
    pub incidents: Vec<String>,
    /// Extracted response payload lines with their outcomes.
    pub responses: Vec<String>,
    /// Whether a completed recovery is on record.
    pub recovered: bool,
    /// The reconstructed timeline.
    pub timeline: Timeline,
}

impl BreachReport {
    /// Generates a report from an evidence export, verifying the chain
    /// under `key` first.
    pub fn generate(key: &[u8], records: &[EvidenceRecord]) -> Self {
        let integrity_failure = match EvidenceStore::verify_export(key, records) {
            Ok(()) => None,
            Err(e @ ChainError::BadMac(_))
            | Err(e @ ChainError::BrokenLink(_))
            | Err(e @ ChainError::BadSequence { .. }) => Some(e.to_string()),
        };
        let mut by_category: BTreeMap<String, usize> = BTreeMap::new();
        for r in records {
            *by_category.entry(r.category.to_string()).or_default() += 1;
        }
        let incidents = records
            .iter()
            .filter(|r| r.category == "incident")
            .map(|r| r.payload.to_string())
            .collect();
        let responses = records
            .iter()
            .filter(|r| r.category == "response")
            .map(|r| r.payload.to_string())
            .collect();
        let recovered = records
            .iter()
            .any(|r| r.category == "recovery" && r.payload.starts_with("completed"));
        BreachReport {
            integrity_failure,
            total_records: records.len(),
            by_category,
            incidents,
            responses,
            recovered,
            timeline: Timeline::reconstruct(records),
        }
    }

    /// True when the chain verified intact.
    pub fn chain_intact(&self) -> bool {
        self.integrity_failure.is_none()
    }

    /// Renders the report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("==== CRES BREACH REPORT ====\n");
        out.push_str(&format!(
            "chain integrity : {}\n",
            match &self.integrity_failure {
                None => "INTACT".to_string(),
                Some(e) => format!("VIOLATED ({e})"),
            }
        ));
        out.push_str(&format!("records         : {}\n", self.total_records));
        for (cat, n) in &self.by_category {
            out.push_str(&format!("  {cat:<14}: {n}\n"));
        }
        out.push_str(&format!("incidents       : {}\n", self.incidents.len()));
        for i in &self.incidents {
            out.push_str(&format!("  - {i}\n"));
        }
        out.push_str(&format!("responses       : {}\n", self.responses.len()));
        for r in &self.responses {
            out.push_str(&format!("  - {r}\n"));
        }
        out.push_str(&format!(
            "recovery        : {}\n",
            if self.recovered {
                "COMPLETED"
            } else {
                "NOT COMPLETED"
            }
        ));
        out.push_str("---- timeline ----\n");
        out.push_str(&self.timeline.render());
        out
    }

    /// Number of attack-phase entries — a quick "how much of the attack did
    /// we capture" figure.
    pub fn attack_entries(&self) -> usize {
        self.timeline.in_phase(Phase::Attack).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cres_sim::SimTime;

    fn t(c: u64) -> SimTime {
        SimTime::at_cycle(c)
    }

    fn store() -> EvidenceStore {
        let mut s = EvidenceStore::new(b"report-key");
        s.append(t(1), "bus-policy", "ok");
        s.append(t(50), "cfi", "illegal edge");
        s.append(t(51), "incident", "#0 CodeInjection severity=Critical");
        s.append(t(60), "response", "KillTask(task#1): executed");
        s.append(t(100), "recovery", "started: restart");
        s.append(t(200), "recovery", "completed; observation window quiet");
        s
    }

    #[test]
    fn intact_chain_reports_intact() {
        let s = store();
        let report = BreachReport::generate(b"report-key", s.records());
        assert!(report.chain_intact());
        assert_eq!(report.total_records, 6);
        assert_eq!(report.incidents.len(), 1);
        assert_eq!(report.responses.len(), 1);
        assert!(report.recovered);
        assert_eq!(report.by_category["recovery"], 2);
        assert_eq!(report.attack_entries(), 1);
    }

    #[test]
    fn tampered_chain_reports_violation() {
        let mut s = store();
        s.records_mut_for_attack()[2].payload = "#0 Nothing happened".into();
        let report = BreachReport::generate(b"report-key", s.records());
        assert!(!report.chain_intact());
        assert!(report
            .integrity_failure
            .as_ref()
            .unwrap()
            .contains("record 2"));
    }

    #[test]
    fn wrong_key_reports_violation() {
        let s = store();
        let report = BreachReport::generate(b"wrong", s.records());
        assert!(!report.chain_intact());
    }

    #[test]
    fn incomplete_recovery_is_flagged() {
        let mut s = EvidenceStore::new(b"k");
        s.append(t(1), "incident", "#0 Exfiltration severity=Critical");
        s.append(t(2), "recovery", "started: rollback");
        let report = BreachReport::generate(b"k", s.records());
        assert!(!report.recovered);
    }

    #[test]
    fn render_is_complete() {
        let s = store();
        let text = BreachReport::generate(b"report-key", s.records()).render();
        for needle in [
            "CRES BREACH REPORT",
            "INTACT",
            "CodeInjection",
            "KillTask",
            "COMPLETED",
            "timeline",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn empty_export_renders() {
        let report = BreachReport::generate(b"k", &[]);
        assert!(report.chain_intact());
        assert_eq!(report.total_records, 0);
        assert!(!report.recovered);
        assert!(report.render().contains("records         : 0"));
    }
}
