//! Attack-timeline reconstruction from evidence records.

use cres_sim::SimTime;
use cres_ssm::EvidenceRecord;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which phase of the incident lifecycle an entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Before the first classified incident.
    PreIncident,
    /// From the first incident until the first response action.
    Attack,
    /// From the first response until recovery starts.
    Response,
    /// From recovery start until recovery completion.
    Recovery,
    /// After recovery completed.
    PostRecovery,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// One reconstructed timeline entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineEntry {
    /// When it happened.
    pub at: SimTime,
    /// Evidence sequence number.
    pub seq: u64,
    /// Source category (monitor name, `"incident"`, `"response"`, …).
    pub category: String,
    /// Payload text.
    pub detail: String,
    /// Assigned lifecycle phase.
    pub phase: Phase,
}

/// A reconstructed timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    entries: Vec<TimelineEntry>,
}

impl Timeline {
    /// Reconstructs a timeline from an evidence export (assumed
    /// chain-verified by the caller; see
    /// [`cres_ssm::EvidenceStore::verify_export`]).
    pub fn reconstruct(records: &[EvidenceRecord]) -> Self {
        let first_incident = records
            .iter()
            .find(|r| r.category == "incident")
            .map(|r| r.at);
        let first_response = records
            .iter()
            .find(|r| r.category == "response")
            .map(|r| r.at);
        let recovery_start = records
            .iter()
            .find(|r| r.category == "recovery" && r.payload.starts_with("started"))
            .map(|r| r.at);
        let recovery_end = records
            .iter()
            .find(|r| r.category == "recovery" && r.payload.starts_with("completed"))
            .map(|r| r.at);

        let phase_of = |at: SimTime| -> Phase {
            if let Some(end) = recovery_end {
                if at > end {
                    return Phase::PostRecovery;
                }
            }
            if let Some(start) = recovery_start {
                if at >= start {
                    return Phase::Recovery;
                }
            }
            if let Some(resp) = first_response {
                if at >= resp {
                    return Phase::Response;
                }
            }
            if let Some(inc) = first_incident {
                if at >= inc {
                    return Phase::Attack;
                }
            }
            Phase::PreIncident
        };

        let entries = records
            .iter()
            .map(|r| TimelineEntry {
                at: r.at,
                seq: r.seq,
                category: r.category.to_string(),
                detail: r.payload.to_string(),
                phase: phase_of(r.at),
            })
            .collect();
        Timeline { entries }
    }

    /// All entries in chain order.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// Entries in a given phase.
    pub fn in_phase(&self, phase: Phase) -> impl Iterator<Item = &TimelineEntry> {
        self.entries.iter().filter(move |e| e.phase == phase)
    }

    /// The span `(first, last)` of the timeline, `None` when empty.
    pub fn span(&self) -> Option<(SimTime, SimTime)> {
        Some((self.entries.first()?.at, self.entries.last()?.at))
    }

    /// **The E6 metric.** Fraction of ground-truth attack instants that
    /// have at least one evidence entry within `tolerance` cycles.
    pub fn coverage(&self, ground_truth: &[SimTime], tolerance: u64) -> f64 {
        if ground_truth.is_empty() {
            return 1.0;
        }
        let covered = ground_truth
            .iter()
            .filter(|t| {
                self.entries
                    .iter()
                    .any(|e| e.at.cycle().abs_diff(t.cycle()) <= tolerance)
            })
            .count();
        covered as f64 / ground_truth.len() as f64
    }

    /// Renders the timeline as indented text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut current_phase: Option<Phase> = None;
        for e in &self.entries {
            if current_phase != Some(e.phase) {
                out.push_str(&format!("--- {} ---\n", e.phase));
                current_phase = Some(e.phase);
            }
            out.push_str(&format!(
                "  {} #{:<4} [{}] {}\n",
                e.at, e.seq, e.category, e.detail
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cres_ssm::EvidenceStore;

    fn t(c: u64) -> SimTime {
        SimTime::at_cycle(c)
    }

    /// Builds a realistic evidence export covering a full lifecycle.
    fn lifecycle_store() -> EvidenceStore {
        let mut s = EvidenceStore::new(b"k");
        s.append(t(10), "bus-policy", "benign read");
        s.append(t(20), "bus-policy", "benign write");
        s.append(t(100), "cfi", "illegal edge bb0 -> bb7");
        s.append(t(101), "incident", "#0 CodeInjection severity=Critical");
        s.append(t(110), "cfi", "illegal edge bb7 -> bb9");
        s.append(t(120), "response", "KillTask(task#1): executed");
        s.append(t(125), "response", "EnterDegradedMode: executed");
        s.append(t(200), "recovery", "started: restart from clean image");
        s.append(t(300), "recovery", "completed; observation window quiet");
        s.append(t(400), "bus-policy", "benign read");
        s
    }

    #[test]
    fn phases_are_assigned_correctly() {
        let s = lifecycle_store();
        let tl = Timeline::reconstruct(s.records());
        // the detection at t=100 precedes the incident record at t=101 and
        // is therefore classified pre-incident; phases are keyed off the
        // incident/response/recovery records
        assert_eq!(tl.in_phase(Phase::PreIncident).count(), 3);
        assert_eq!(tl.in_phase(Phase::Attack).count(), 2); // incident, cfi
        assert_eq!(tl.in_phase(Phase::Response).count(), 2);
        assert_eq!(tl.in_phase(Phase::Recovery).count(), 2);
        assert_eq!(tl.in_phase(Phase::PostRecovery).count(), 1);
    }

    #[test]
    fn span_and_order() {
        let s = lifecycle_store();
        let tl = Timeline::reconstruct(s.records());
        assert_eq!(tl.span(), Some((t(10), t(400))));
        assert_eq!(tl.entries().len(), 10);
    }

    #[test]
    fn empty_timeline() {
        let tl = Timeline::reconstruct(&[]);
        assert!(tl.entries().is_empty());
        assert_eq!(tl.span(), None);
        assert_eq!(tl.coverage(&[], 10), 1.0);
    }

    #[test]
    fn no_incident_means_all_preincident() {
        let mut s = EvidenceStore::new(b"k");
        s.append(t(1), "bus-policy", "x");
        s.append(t(2), "sensor", "y");
        let tl = Timeline::reconstruct(s.records());
        assert!(tl.entries().iter().all(|e| e.phase == Phase::PreIncident));
    }

    #[test]
    fn coverage_full_and_partial() {
        let s = lifecycle_store();
        let tl = Timeline::reconstruct(s.records());
        // ground truth: attack steps at 100 and 110 — both evidenced
        assert_eq!(tl.coverage(&[t(100), t(110)], 5), 1.0);
        // an unobserved step at t=5000
        let c = tl.coverage(&[t(100), t(110), t(5000)], 5);
        assert!((c - 2.0 / 3.0).abs() < 1e-9);
        // zero coverage for a wiped store
        let empty = Timeline::reconstruct(&[]);
        assert_eq!(empty.coverage(&[t(100)], 5), 0.0);
    }

    #[test]
    fn render_contains_phases_and_details() {
        let s = lifecycle_store();
        let tl = Timeline::reconstruct(s.records());
        let text = tl.render();
        for needle in [
            "PreIncident",
            "Attack",
            "Response",
            "Recovery",
            "PostRecovery",
            "illegal edge",
            "KillTask",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
