//! Incident dossiers: evidence-backed reconstruction of a correlated
//! incident, with every cited record proven against a Merkle seal.
//!
//! A fleet verdict names devices; a dossier explains them. For each
//! carrier device the dossier extracts the records an operator would cite
//! in a post-incident review — onset incidents, response actions, tier
//! transitions, recovery markers — and attaches a Merkle inclusion proof
//! for each against the seal covering it, so the citations stay checkable
//! after the store itself is gone. The types here are fleet-agnostic: the
//! export plane supplies the fleet context (signature, correlation
//! window, carrier list) and this module supplies the per-device
//! reconstruction and proof discipline.

use cres_crypto::merkle::InclusionProof;
use cres_sim::SimTime;
use cres_ssm::{EvidenceRecord, EvidenceStore};
use serde::{Deserialize, Serialize};

/// Evidence categories a dossier cites: the decision trail (incident,
/// response, tier transition, recovery), not the raw monitor chatter.
const CITED_CATEGORIES: [&str; 4] = ["incident", "response", "policy", "recovery"];

/// One cited evidence record with its inclusion proof.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvidenceCitation {
    /// The cited record, verbatim from the device's export.
    pub record: EvidenceRecord,
    /// Inclusion proof against `root`; `None` when no seal covered the
    /// record (it then cannot be independently verified).
    pub proof: Option<InclusionProof>,
    /// The Merkle root of the covering seal.
    pub root: Option<[u8; 32]>,
    /// True when the proof verifies the record against the root.
    pub verified: bool,
}

/// One device's slice of an incident dossier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceDossier {
    /// Device id.
    pub device: u32,
    /// The injected attack, when ground truth is known.
    pub attack: Option<String>,
    /// First classified incident on the device.
    pub onset: Option<SimTime>,
    /// Response actions recorded.
    pub responses: u32,
    /// Policy tier / breaker transitions recorded.
    pub tier_changes: u32,
    /// True when a completed recovery is on record.
    pub recovered: bool,
    /// Whole-chain verification result for the device's export.
    pub chain_ok: bool,
    /// The cited records, chain order, each with its proof.
    pub citations: Vec<EvidenceCitation>,
}

impl DeviceDossier {
    /// Reconstructs one device's dossier from its (sealed) evidence
    /// store: verifies the chain, extracts the cited categories and
    /// proves each citation against the latest seal covering it.
    pub fn from_store(device: u32, attack: Option<String>, store: &EvidenceStore) -> Self {
        let records = store.records();
        let onset = records
            .iter()
            .find(|r| r.category == "incident")
            .map(|r| r.at);
        let responses = records.iter().filter(|r| r.category == "response").count() as u32;
        let tier_changes = records.iter().filter(|r| r.category == "policy").count() as u32;
        let recovered = records
            .iter()
            .any(|r| r.category == "recovery" && r.payload.starts_with("completed"));
        let citations = records
            .iter()
            .filter(|r| CITED_CATEGORIES.contains(&r.category.as_ref()))
            .map(|record| match store.prove_inclusion(record.seq) {
                Some((proof, root)) => {
                    let verified = EvidenceStore::verify_inclusion(record, &proof, &root);
                    EvidenceCitation {
                        record: record.clone(),
                        proof: Some(proof),
                        root: Some(root),
                        verified,
                    }
                }
                None => EvidenceCitation {
                    record: record.clone(),
                    proof: None,
                    root: None,
                    verified: false,
                },
            })
            .collect();
        DeviceDossier {
            device,
            attack,
            onset,
            responses,
            tier_changes,
            recovered,
            chain_ok: store.verify().is_ok(),
            citations,
        }
    }

    /// True when the chain verifies and every citation's proof does too.
    pub fn all_verified(&self) -> bool {
        self.chain_ok && self.citations.iter().all(|c| c.verified)
    }
}

/// A full incident dossier: the fleet-level correlation facts plus one
/// reconstructed [`DeviceDossier`] per carrier device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentDossier {
    /// The correlated attack signature.
    pub signature: String,
    /// True for a coordinated campaign, false for lateral movement.
    pub campaign: bool,
    /// The correlation window `(first onset, correlation instant)`.
    pub window: (SimTime, SimTime),
    /// Per-carrier reconstructions, device-id order.
    pub devices: Vec<DeviceDossier>,
}

impl IncidentDossier {
    /// Total citations across all carrier devices.
    pub fn citation_count(&self) -> usize {
        self.devices.iter().map(|d| d.citations.len()).sum()
    }

    /// True when every carrier's chain and every cited record verifies.
    pub fn all_verified(&self) -> bool {
        self.devices.iter().all(DeviceDossier::all_verified)
    }

    /// Renders the dossier as operator-readable text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} \"{}\": {} devices, window {} .. {}\n",
            if self.campaign {
                "coordinated campaign"
            } else {
                "lateral movement"
            },
            self.signature,
            self.devices.len(),
            self.window.0,
            self.window.1,
        );
        for d in &self.devices {
            out.push_str(&format!(
                "  device {:>5}  attack {:<16} onset {:<12} responses {:>2}  tiers {:>2}  \
                 recovered {}  citations {:>3} ({})\n",
                d.device,
                d.attack.as_deref().unwrap_or("-"),
                d.onset.map_or("-".into(), |t| t.to_string()),
                d.responses,
                d.tier_changes,
                if d.recovered { "yes" } else { "no " },
                d.citations.len(),
                if d.all_verified() {
                    "all proofs verify"
                } else {
                    "UNVERIFIED"
                },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> SimTime {
        SimTime::at_cycle(c)
    }

    fn sealed_store() -> EvidenceStore {
        let mut s = EvidenceStore::new(b"k");
        s.append(t(10), "bus-policy", "benign read");
        s.append(t(100), "cfi", "illegal edge bb0 -> bb7");
        s.append(t(101), "incident", "#0 CodeInjection severity=Critical");
        s.append(t(120), "response", "KillTask(task#1): executed");
        s.append(t(130), "policy", "tier raised to Essential");
        s.append(t(300), "recovery", "completed; observation window quiet");
        s.seal(t(400));
        s
    }

    #[test]
    fn dossier_cites_decision_trail_with_verifying_proofs() {
        let s = sealed_store();
        let d = DeviceDossier::from_store(7, Some("code-injection".into()), &s);
        assert_eq!(d.device, 7);
        assert_eq!(d.onset, Some(t(101)));
        assert_eq!(d.responses, 1);
        assert_eq!(d.tier_changes, 1);
        assert!(d.recovered);
        assert!(d.chain_ok);
        // incident + response + policy + recovery — not the monitor chatter
        assert_eq!(d.citations.len(), 4);
        assert!(d.all_verified());
    }

    #[test]
    fn unsealed_records_cannot_be_cited_as_verified() {
        let mut s = sealed_store();
        s.append(t(500), "incident", "#1 late incident, never sealed");
        let d = DeviceDossier::from_store(0, None, &s);
        assert_eq!(d.citations.len(), 5);
        assert!(!d.all_verified(), "uncovered record must not verify");
        let late = d.citations.last().unwrap();
        assert!(late.proof.is_none() && !late.verified);
    }

    #[test]
    fn tampered_store_fails_chain_even_if_proofs_match() {
        let mut s = sealed_store();
        s.records_mut_for_attack()[1].payload = "benign-looking".into();
        let d = DeviceDossier::from_store(0, None, &s);
        assert!(!d.chain_ok);
        assert!(!d.all_verified());
    }

    #[test]
    fn incident_dossier_aggregates_and_renders() {
        let s = sealed_store();
        let dossier = IncidentDossier {
            signature: "code-injection".into(),
            campaign: true,
            window: (t(101), t(150)),
            devices: vec![
                DeviceDossier::from_store(3, Some("code-injection".into()), &s),
                DeviceDossier::from_store(9, Some("code-injection".into()), &s),
            ],
        };
        assert_eq!(dossier.citation_count(), 8);
        assert!(dossier.all_verified());
        let text = dossier.render();
        for needle in [
            "coordinated campaign",
            "code-injection",
            "all proofs verify",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
