#![warn(missing_docs)]

//! Cyber forensics over the SSM's evidence export.
//!
//! The paper's motivation for evidence continuity is *forensics*: "to gain
//! evidence of the security breach to effectively evaluate, improve and
//! deploy active response and mitigation strategies". This crate is the
//! analyst's side of that loop:
//!
//! * [`timeline`] — reconstructs an attack timeline from an evidence
//!   export, segments it into phases and measures **coverage** against
//!   ground truth (the E6 metric),
//! * [`report`] — generates a breach report: chain-integrity verdict,
//!   incident inventory, response/recovery audit and the reconstructed
//!   timeline, rendered as text.

pub mod incident;
pub mod report;
pub mod timeline;

pub use incident::{DeviceDossier, EvidenceCitation, IncidentDossier};
pub use report::BreachReport;
pub use timeline::{Phase, Timeline, TimelineEntry};
