//! Property tests for the simulation kernel: event ordering, RNG bounds,
//! statistics invariants and the monitor-name interner.

use cres_sim::stats::{Histogram, Running};
use cres_sim::{DetRng, MonitorId, MonitorRegistry, SimDuration, SimTime, Simulator};
use proptest::prelude::*;

/// Name pool for interner properties — interning requires `&'static str`,
/// so properties draw indices into a fixed pool rather than free strings.
const NAME_POOL: [&str; 12] = [
    "bus-policy",
    "network",
    "sensor",
    "env",
    "watchdog",
    "cfi",
    "syscall",
    "info-flow",
    "aux-0",
    "aux-1",
    "aux-2",
    "aux-3",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn events_fire_in_nondecreasing_time_order(times in proptest::collection::vec(0u64..10_000, 1..100)) {
        let mut sim: Simulator<Vec<u64>> = Simulator::new();
        for &t in &times {
            sim.schedule_at(SimTime::at_cycle(t), move |w: &mut Vec<u64>, sim| {
                w.push(sim.now().cycle());
            });
        }
        let mut world = Vec::new();
        sim.run_to_completion(&mut world, 10_000);
        prop_assert_eq!(world.len(), times.len());
        prop_assert!(world.windows(2).all(|w| w[0] <= w[1]), "{world:?}");
    }

    #[test]
    fn equal_time_events_fire_in_schedule_order(n in 1usize..60) {
        let mut sim: Simulator<Vec<usize>> = Simulator::new();
        for i in 0..n {
            sim.schedule_at(SimTime::at_cycle(42), move |w: &mut Vec<usize>, _| w.push(i));
        }
        let mut world = Vec::new();
        sim.run_to_completion(&mut world, 1_000);
        prop_assert_eq!(world, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_never_fires_past_horizon(
        times in proptest::collection::vec(0u64..10_000, 1..50),
        horizon in 0u64..10_000
    ) {
        let mut sim: Simulator<Vec<u64>> = Simulator::new();
        for &t in &times {
            sim.schedule_at(SimTime::at_cycle(t), move |w: &mut Vec<u64>, sim| {
                w.push(sim.now().cycle());
            });
        }
        let mut world = Vec::new();
        sim.run_until(&mut world, SimTime::at_cycle(horizon));
        prop_assert!(world.iter().all(|&t| t <= horizon));
        let expected = times.iter().filter(|&&t| t <= horizon).count();
        prop_assert_eq!(world.len(), expected);
    }

    #[test]
    fn rng_range_is_uniformly_bounded(seed: u64, low in 0u64..1000, span in 1u64..1000) {
        let mut rng = DetRng::seed_from(seed);
        for _ in 0..100 {
            let v = rng.range_u64(low, low + span);
            prop_assert!(v >= low && v < low + span);
        }
    }

    #[test]
    fn rng_fork_streams_are_independent_of_consumption(seed: u64, pre in 0usize..16) {
        // forking after consuming N values must not equal forking after N+1
        let mut a = DetRng::seed_from(seed);
        let mut b = DetRng::seed_from(seed);
        for _ in 0..pre {
            a.next_u64();
            b.next_u64();
        }
        let fa = a.fork("x").next_u64();
        b.next_u64();
        let fb = b.fork("x").next_u64();
        prop_assert_ne!(fa, fb);
    }

    #[test]
    fn running_merge_is_order_insensitive(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut forward = Running::new();
        let mut backward = Running::new();
        for &x in &xs {
            forward.push(x);
        }
        for &x in xs.iter().rev() {
            backward.push(x);
        }
        prop_assert!((forward.mean() - backward.mean()).abs() < 1e-6);
        prop_assert!(
            (forward.population_variance() - backward.population_variance()).abs() < 1.0
        );
    }

    #[test]
    fn histogram_counts_sum_to_total(values in proptest::collection::vec(0u64..100_000, 0..200)) {
        let mut h = Histogram::exponential(1, 16);
        for &v in &values {
            h.record(v);
        }
        let total: u64 = h.bucket_counts().iter().sum();
        prop_assert_eq!(total, values.len() as u64);
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    #[test]
    fn duration_arithmetic_is_consistent(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let t = SimTime::at_cycle(a);
        let d = SimDuration::cycles(b);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d).saturating_since(t), d);
    }

    #[test]
    fn intern_resolve_round_trips(
        picks in proptest::collection::vec(0usize..NAME_POOL.len(), 1..64)
    ) {
        let mut reg = MonitorRegistry::new();
        for &i in &picks {
            let id = reg.intern(NAME_POOL[i]);
            prop_assert_eq!(reg.name(id), NAME_POOL[i]);
            prop_assert_eq!(reg.get(NAME_POOL[i]), Some(id));
        }
    }

    #[test]
    fn interned_ids_are_stable_across_reinterning(
        picks in proptest::collection::vec(0usize..NAME_POOL.len(), 1..64)
    ) {
        let mut reg = MonitorRegistry::new();
        let first: Vec<MonitorId> = picks.iter().map(|&i| reg.intern(NAME_POOL[i])).collect();
        let second: Vec<MonitorId> = picks.iter().map(|&i| reg.intern(NAME_POOL[i])).collect();
        prop_assert_eq!(first, second, "re-interning must return the same id");
    }

    #[test]
    fn interned_ids_are_dense_in_first_seen_order(
        picks in proptest::collection::vec(0usize..NAME_POOL.len(), 1..64)
    ) {
        let mut reg = MonitorRegistry::new();
        // Expected: distinct names in first-occurrence order get 0, 1, 2, …
        let mut expected: Vec<&str> = Vec::new();
        for &i in &picks {
            let id = reg.intern(NAME_POOL[i]);
            if !expected.contains(&NAME_POOL[i]) {
                expected.push(NAME_POOL[i]);
            }
            let pos = expected.iter().position(|&n| n == NAME_POOL[i]).unwrap();
            prop_assert_eq!(id.index(), pos, "ids must be dense in first-seen order");
        }
        prop_assert_eq!(reg.len(), expected.len());
        let names: Vec<&str> = reg.iter().map(|(_, n)| n).collect();
        prop_assert_eq!(names, expected);
    }

    #[test]
    fn unbound_and_out_of_range_ids_resolve_to_placeholder(
        picks in proptest::collection::vec(0usize..NAME_POOL.len(), 0..8)
    ) {
        let mut reg = MonitorRegistry::new();
        for &i in &picks {
            reg.intern(NAME_POOL[i]);
        }
        prop_assert!(!MonitorId::UNBOUND.is_bound());
        prop_assert_eq!(reg.name(MonitorId::UNBOUND), "?");
        prop_assert_eq!(reg.get("never-interned"), None);
    }
}
