//! The discrete-event scheduler.
//!
//! [`Simulator<W>`] owns the simulated clock and a priority queue of pending
//! events. An event is a boxed `FnOnce(&mut W, &mut Simulator<W>)`: it
//! mutates the world and may schedule follow-up events. Events at the same
//! instant fire in schedule order, which keeps runs bit-reproducible.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Opaque handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Simulator<W>)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    id: EventId,
    action: Option<EventFn<W>>,
    label: &'static str,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // with the lower sequence number winning ties.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event simulator over a world type `W`.
///
/// The simulator does not own the world; callers pass `&mut W` into
/// [`Simulator::step`] / [`Simulator::run_until`] so the world can also be
/// inspected between steps.
pub struct Simulator<W> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<W>>,
    next_seq: u64,
    fired: u64,
    cancelled: Vec<EventId>,
}

impl<W> fmt::Debug for Simulator<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("fired", &self.fired)
            .finish()
    }
}

impl<W> Default for Simulator<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Simulator<W> {
    /// Creates an empty simulator at time zero.
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            fired: 0,
            cancelled: Vec::new(),
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events currently pending (including cancelled ones not yet
    /// reaped).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `action` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut W, &mut Simulator<W>) + 'static,
    ) -> EventId {
        self.schedule_labeled(at, "event", action)
    }

    /// Schedules `action` to fire after `delay`.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut W, &mut Simulator<W>) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, action)
    }

    /// Schedules `action` with a static label (visible in panics/debugging).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_labeled(
        &mut self,
        at: SimTime,
        label: &'static str,
        action: impl FnOnce(&mut W, &mut Simulator<W>) + 'static,
    ) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event {label:?} in the past ({at} < {})",
            self.now
        );
        let id = EventId(self.next_seq);
        self.queue.push(Scheduled {
            at,
            seq: self.next_seq,
            id,
            action: Some(Box::new(action)),
            label,
        });
        self.next_seq += 1;
        id
    }

    /// Cancels a pending event. Cancelling an already-fired or unknown event
    /// is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.push(id);
    }

    /// Schedules a periodic event firing every `period`, starting after one
    /// period. The callback returns `true` to keep the series running.
    pub fn schedule_periodic(
        &mut self,
        period: SimDuration,
        mut action: impl FnMut(&mut W, &mut Simulator<W>) -> bool + 'static,
    ) {
        assert!(!period.is_zero(), "periodic events need a non-zero period");
        fn rearm<W>(
            sim: &mut Simulator<W>,
            period: SimDuration,
            mut action: impl FnMut(&mut W, &mut Simulator<W>) -> bool + 'static,
        ) {
            sim.schedule_labeled(sim.now + period, "periodic", move |w, sim| {
                if action(w, sim) {
                    rearm(sim, period, action);
                }
            });
        }
        rearm(self, period, move |w, sim| action(w, sim));
    }

    /// Fires the next pending event, advancing the clock to its timestamp.
    ///
    /// Returns `false` when the queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        loop {
            let Some(mut ev) = self.queue.pop() else {
                return false;
            };
            if let Some(pos) = self.cancelled.iter().position(|c| *c == ev.id) {
                self.cancelled.swap_remove(pos);
                continue;
            }
            debug_assert!(
                ev.at >= self.now,
                "event queue went backwards at {:?}",
                ev.label
            );
            self.now = ev.at;
            self.fired += 1;
            let action = ev
                .action
                .take()
                .unwrap_or_else(|| panic!("event {:?} fired twice", ev.label));
            action(world, self);
            return true;
        }
    }

    /// Runs events until the queue is empty or the clock would pass
    /// `horizon`. Events exactly at the horizon do fire. Returns the number
    /// of events fired. The clock is left at the later of its current value
    /// and the horizon (when the queue drained early it stays where it was).
    pub fn run_until(&mut self, world: &mut W, horizon: SimTime) -> u64 {
        let before = self.fired;
        while let Some(head) = self.queue.peek() {
            if head.at > horizon {
                break;
            }
            self.step(world);
        }
        if self.now < horizon && !self.queue.is_empty() {
            self.now = horizon;
        }
        self.fired - before
    }

    /// Runs the simulation to exhaustion (or until `max_events` fire, as a
    /// runaway guard). Returns the number of events fired.
    pub fn run_to_completion(&mut self, world: &mut W, max_events: u64) -> u64 {
        let before = self.fired;
        while self.fired - before < max_events {
            if !self.step(world) {
                break;
            }
        }
        self.fired - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Simulator<Vec<u32>> = Simulator::new();
        sim.schedule_at(SimTime::at_cycle(30), |w, _| w.push(3));
        sim.schedule_at(SimTime::at_cycle(10), |w, _| w.push(1));
        sim.schedule_at(SimTime::at_cycle(20), |w, _| w.push(2));
        let mut world = Vec::new();
        sim.run_to_completion(&mut world, 100);
        assert_eq!(world, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::at_cycle(30));
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let mut sim: Simulator<Vec<u32>> = Simulator::new();
        for i in 0..50 {
            sim.schedule_at(SimTime::at_cycle(5), move |w, _| w.push(i));
        }
        let mut world = Vec::new();
        sim.run_to_completion(&mut world, 100);
        assert_eq!(world, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_followups() {
        let mut sim: Simulator<u64> = Simulator::new();
        sim.schedule_in(SimDuration::cycles(1), |w, sim| {
            *w += 1;
            sim.schedule_in(SimDuration::cycles(1), |w, sim| {
                *w += 10;
                sim.schedule_in(SimDuration::cycles(1), |w, _| *w += 100);
            });
        });
        let mut world = 0;
        sim.run_to_completion(&mut world, 100);
        assert_eq!(world, 111);
        assert_eq!(sim.now(), SimTime::at_cycle(3));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim: Simulator<u64> = Simulator::new();
        sim.schedule_at(SimTime::at_cycle(10), |w, _| *w += 1);
        sim.schedule_at(SimTime::at_cycle(20), |w, _| *w += 1);
        sim.schedule_at(SimTime::at_cycle(30), |w, _| *w += 1);
        let mut world = 0;
        let fired = sim.run_until(&mut world, SimTime::at_cycle(20));
        assert_eq!(fired, 2);
        assert_eq!(world, 2);
        assert_eq!(sim.now(), SimTime::at_cycle(20));
        sim.run_until(&mut world, SimTime::at_cycle(100));
        assert_eq!(world, 3);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut sim: Simulator<u64> = Simulator::new();
        let id = sim.schedule_at(SimTime::at_cycle(10), |w, _| *w += 1);
        sim.schedule_at(SimTime::at_cycle(20), |w, _| *w += 100);
        sim.cancel(id);
        let mut world = 0;
        sim.run_to_completion(&mut world, 100);
        assert_eq!(world, 100);
    }

    #[test]
    fn cancel_unknown_is_noop() {
        let mut sim: Simulator<u64> = Simulator::new();
        sim.cancel(EventId(999));
        let mut world = 0;
        assert!(!sim.step(&mut world));
    }

    #[test]
    fn periodic_runs_until_false() {
        let mut sim: Simulator<u64> = Simulator::new();
        sim.schedule_periodic(SimDuration::cycles(10), |w, _| {
            *w += 1;
            *w < 5
        });
        let mut world = 0;
        sim.run_to_completion(&mut world, 1000);
        assert_eq!(world, 5);
        assert_eq!(sim.now(), SimTime::at_cycle(50));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Simulator<u64> = Simulator::new();
        sim.schedule_at(SimTime::at_cycle(10), |_, _| {});
        let mut world = 0;
        sim.step(&mut world);
        sim.schedule_at(SimTime::at_cycle(5), |_, _| {});
    }

    #[test]
    fn runaway_guard_stops_infinite_series() {
        let mut sim: Simulator<u64> = Simulator::new();
        sim.schedule_periodic(SimDuration::cycles(1), |w, _| {
            *w += 1;
            true
        });
        let mut world = 0;
        let fired = sim.run_to_completion(&mut world, 500);
        assert_eq!(fired, 500);
    }

    #[test]
    fn debug_output_is_nonempty() {
        let sim: Simulator<u64> = Simulator::new();
        assert!(format!("{sim:?}").contains("Simulator"));
    }
}
