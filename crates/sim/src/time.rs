//! Simulated time: cycle-granular instants and durations.
//!
//! The SoC substrate is cycle-approximate, so the base unit of simulated
//! time is one clock cycle of the reference clock. Experiment harnesses that
//! want wall-clock-like units convert through a configured clock frequency
//! (see [`SimDuration::as_micros_at`]).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in clock cycles since simulation
/// start.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. Adding a
/// [`SimDuration`] yields a later instant; subtracting two instants yields
/// the duration between them.
///
/// # Example
///
/// ```
/// use cres_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::cycles(40);
/// assert_eq!(t.cycle(), 40);
/// assert_eq!(t - SimTime::at_cycle(15), SimDuration::cycles(25));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, measured in clock cycles.
///
/// # Example
///
/// ```
/// use cres_sim::SimDuration;
/// assert_eq!(SimDuration::cycles(3) * 4, SimDuration::cycles(12));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant at the given absolute cycle count.
    pub const fn at_cycle(cycle: u64) -> Self {
        SimTime(cycle)
    }

    /// Returns the absolute cycle count of this instant.
    pub const fn cycle(self) -> u64 {
        self.0
    }

    /// Returns the duration elapsed since an earlier instant, saturating to
    /// zero if `earlier` is actually later.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns `self + d`, saturating at [`SimTime::MAX`] instead of
    /// overflowing.
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration spanning `n` clock cycles.
    pub const fn cycles(n: u64) -> Self {
        SimDuration(n)
    }

    /// Returns the number of cycles in this duration.
    pub const fn as_cycles(self) -> u64 {
        self.0
    }

    /// Returns true if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Converts to microseconds assuming the given clock frequency in MHz.
    ///
    /// Used only for presentation in experiment reports.
    pub fn as_micros_at(self, clock_mhz: u64) -> f64 {
        assert!(clock_mhz > 0, "clock frequency must be non-zero");
        self.0 as f64 / clock_mhz as f64
    }

    /// Saturating duration subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl From<u64> for SimDuration {
    fn from(n: u64) -> Self {
        SimDuration(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::at_cycle(100);
        let d = SimDuration::cycles(42);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn ordering_matches_cycle_counts() {
        assert!(SimTime::at_cycle(1) < SimTime::at_cycle(2));
        assert!(SimDuration::cycles(5) > SimDuration::cycles(4));
        assert_eq!(SimTime::ZERO, SimTime::at_cycle(0));
    }

    #[test]
    fn saturating_ops_do_not_panic() {
        assert_eq!(
            SimTime::at_cycle(5).saturating_since(SimTime::at_cycle(9)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::cycles(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::cycles(3).saturating_sub(SimDuration::cycles(7)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "SimTime underflow")]
    fn underflow_panics() {
        let _ = SimTime::at_cycle(1) - SimDuration::cycles(2);
    }

    #[test]
    fn scalar_mul_div() {
        assert_eq!(SimDuration::cycles(6) * 7, SimDuration::cycles(42));
        assert_eq!(SimDuration::cycles(42) / 6, SimDuration::cycles(7));
    }

    #[test]
    fn micros_conversion_uses_clock() {
        // 1000 cycles at 100 MHz = 10 us.
        assert!((SimDuration::cycles(1000).as_micros_at(100) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(SimTime::at_cycle(7).to_string(), "@7");
        assert_eq!(SimDuration::cycles(7).to_string(), "7cy");
    }
}
