//! Pipeline-stage vocabulary for cycle-accurate telemetry.
//!
//! The platform's resilience pipeline — monitor sampling → event emission →
//! correlation → incident classification → response planning → response
//! execution → evidence append — is instrumented with *spans*: one record
//! per unit of pipeline work, stamped with the sim cycle clock. This module
//! defines the vocabulary every instrumented crate shares:
//!
//! * [`Stage`] — the pipeline stage IDs (including the fault-plane
//!   meta-stage for faults injected into the pipeline itself),
//! * [`StageSink`] — the receiver instrumented code reports spans to,
//! * [`NullSink`] — the zero-cost sink used when telemetry is disabled.
//!
//! The concrete recorder (trace ring buffer + metrics registry) lives in
//! `cres_platform::telemetry`; this crate only hosts the vocabulary so the
//! monitor, SSM and response crates can report spans without depending on
//! the platform assembly crate.

use crate::time::SimTime;

/// A pipeline stage a span can belong to.
///
/// Every span carries one stage ID; per-stage aggregation (count and cycle
/// cost) is the backbone of the telemetry report.
///
/// # Example
///
/// ```
/// use cres_sim::Stage;
/// assert_eq!(Stage::ALL.len(), Stage::COUNT);
/// assert_eq!(Stage::Correlate.name(), "correlate");
/// assert_eq!(Stage::from_name("respond"), Some(Stage::Respond));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// One resource monitor inspecting its resource (span arg: events
    /// produced by this sample).
    MonitorSample,
    /// One monitor event handed to the SSM (span arg: severity rank).
    EventEmit,
    /// The correlation engine consuming one event (span arg: 1 when the
    /// event classified an incident, else 0).
    Correlate,
    /// One incident classified (span arg: incident id, truncated to u32).
    Classify,
    /// One non-empty response plan produced (span arg: action count).
    Plan,
    /// One countermeasure executed (span arg: 1 on success, else 0).
    Respond,
    /// One record folded into the evidence hash chain (span arg: chain
    /// sequence number, truncated to u32).
    EvidenceAppend,
    /// One fault injected into the pipeline itself, or one recovery step
    /// taken against it — event loss/delay/reorder/corruption, monitor
    /// stall/crash, response drop, delivery retry, degraded-mode transition
    /// (span arg: a `cres_platform::faultplane` fault code).
    FaultPlane,
    /// One decision taken by the stateful response policy engine — a
    /// degradation-tier transition, a circuit-breaker state change, or a
    /// countermeasure suppressed behind an open breaker (span arg: a
    /// [`policy_code`] constant).
    Policy,
}

impl Stage {
    /// Number of stages (sizing for per-stage accumulator arrays).
    pub const COUNT: usize = 9;

    /// All stages, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::MonitorSample,
        Stage::EventEmit,
        Stage::Correlate,
        Stage::Classify,
        Stage::Plan,
        Stage::Respond,
        Stage::EvidenceAppend,
        Stage::FaultPlane,
        Stage::Policy,
    ];

    /// Dense index of this stage in [`Stage::ALL`] order.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable lower-case name (used in the telemetry JSON schema).
    pub const fn name(self) -> &'static str {
        match self {
            Stage::MonitorSample => "monitor-sample",
            Stage::EventEmit => "event-emit",
            Stage::Correlate => "correlate",
            Stage::Classify => "classify",
            Stage::Plan => "plan",
            Stage::Respond => "respond",
            Stage::EvidenceAppend => "evidence-append",
            Stage::FaultPlane => "fault-plane",
            Stage::Policy => "policy",
        }
    }

    /// Resolves a name produced by [`Stage::name`].
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Span `arg` codes for [`Stage::FaultPlane`] spans — the shared vocabulary
/// for "what kind of fault (or recovery step) was this". Defined here so the
/// SSM can report quarantine/degradation spans without depending on the
/// platform crate that hosts the injector.
pub mod fault_code {
    /// A monitor event was dropped in transit (all delivery retries spent).
    pub const EVENT_LOST: u32 = 1;
    /// A monitor event was held back and delivered in a later batch.
    pub const EVENT_DELAYED: u32 = 2;
    /// Two adjacent events swapped places in a batch.
    pub const EVENT_REORDERED: u32 = 3;
    /// An event's severity/detail were mangled in transit.
    pub const EVENT_CORRUPTED: u32 = 4;
    /// A monitor skipped one sampling round.
    pub const MONITOR_STALLED: u32 = 5;
    /// A monitor died permanently at its crash cycle.
    pub const MONITOR_CRASHED: u32 = 6;
    /// A response command was dropped before reaching the backend.
    pub const RESPONSE_DROPPED: u32 = 7;
    /// A delivery retry (event or response) was spent.
    pub const DELIVERY_RETRY: u32 = 8;
    /// A delivery initially faulted but a retry got it through.
    pub const DELIVERY_RECOVERED: u32 = 9;
    /// The SSM quarantined a dead monitor.
    pub const MONITOR_QUARANTINED: u32 = 10;
    /// The correlation engine entered sensing-degraded compensation.
    pub const SENSING_DEGRADED: u32 = 11;
}

/// Span `arg` codes for [`Stage::Policy`] spans — the shared vocabulary for
/// "what did the response policy engine decide". Defined here (like
/// [`fault_code`]) so the response crate can report policy spans without
/// depending on the platform crate that hosts the recorder.
pub mod policy_code {
    /// The degradation tier was raised one step (posture tightened).
    pub const TIER_RAISED: u32 = 1;
    /// The degradation tier was lowered one step (service restored).
    pub const TIER_LOWERED: u32 = 2;
    /// A per-resource circuit breaker tripped closed → open.
    pub const BREAKER_OPENED: u32 = 3;
    /// An open breaker's cooldown expired; it is probing (open → half-open).
    pub const BREAKER_HALF_OPEN: u32 = 4;
    /// A half-open breaker saw a clean probe window and reset to closed.
    pub const BREAKER_CLOSED: u32 = 5;
    /// A global countermeasure was suppressed behind an open breaker.
    pub const ACTION_SUPPRESSED: u32 = 6;
}

/// The receiver instrumented pipeline code reports spans to.
///
/// Implementations decide what a span costs and where it goes; the
/// instrumented crates only describe the work. `cycles` is the *modelled*
/// cost of the pipeline work itself (e.g. a monitor's `sample_cost()`), not
/// the cost of recording — recording cost is the implementation's business.
pub trait StageSink {
    /// Records one span of pipeline work observed at `at`.
    fn record_span(&mut self, at: SimTime, stage: Stage, arg: u32, cycles: u64);
}

/// A sink that discards everything — the disabled-telemetry path.
///
/// # Example
///
/// ```
/// use cres_sim::{NullSink, Stage, StageSink, SimTime};
/// let mut sink = NullSink;
/// sink.record_span(SimTime::ZERO, Stage::Plan, 2, 3); // no-op
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl StageSink for NullSink {
    #[inline]
    fn record_span(&mut self, _at: SimTime, _stage: Stage, _arg: u32, _cycles: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
    }

    #[test]
    fn names_round_trip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_name(stage.name()), Some(stage));
            assert_eq!(stage.to_string(), stage.name());
        }
        assert_eq!(Stage::from_name("not-a-stage"), None);
    }

    #[test]
    fn null_sink_accepts_spans() {
        let mut sink = NullSink;
        for stage in Stage::ALL {
            sink.record_span(SimTime::at_cycle(1), stage, 0, 1);
        }
    }
}
