//! Monitor-name interning: a small dense index ↔ name table.
//!
//! The hot monitor→SSM path must not carry heap-allocated names on every
//! event. Monitor names are known at platform wiring time and there are at
//! most a dozen of them, so the platform interns each name once into a
//! [`MonitorRegistry`] and events carry the resulting [`MonitorId`] — a
//! `Copy` index resolved back to `&'static str` only at the cold edges
//! (evidence serialization, console rendering, report export).

/// Dense, stable identifier for an interned monitor name.
///
/// Ids are assigned in interning order starting at 0, so they double as
/// indices into per-monitor tables. The all-ones value is reserved for
/// [`MonitorId::UNBOUND`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MonitorId(u16);

impl MonitorId {
    /// Sentinel for an event that has not been stamped with its producing
    /// monitor (freshly constructed, or synthesized in tests). Resolves to
    /// `"?"` in a registry.
    pub const UNBOUND: MonitorId = MonitorId(u16::MAX);

    /// The dense index this id maps to.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True unless this is [`MonitorId::UNBOUND`].
    #[inline]
    pub fn is_bound(self) -> bool {
        self != Self::UNBOUND
    }
}

/// Intern table mapping monitor names to dense [`MonitorId`]s.
///
/// Built once at platform wiring time; lookups on the hot path are a
/// bounds-checked array index, never a hash or string compare.
///
/// ```
/// use cres_sim::{MonitorId, MonitorRegistry};
///
/// let mut reg = MonitorRegistry::new();
/// let bus = reg.intern("bus-policy");
/// assert_eq!(bus.index(), 0);
/// assert_eq!(reg.intern("bus-policy"), bus); // idempotent
/// assert_eq!(reg.name(bus), "bus-policy");
/// assert_eq!(reg.name(MonitorId::UNBOUND), "?");
/// ```
#[derive(Debug, Clone, Default)]
pub struct MonitorRegistry {
    names: Vec<&'static str>,
}

impl MonitorRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing id when already present.
    /// Ids are dense: the n-th distinct name gets index n.
    ///
    /// # Panics
    ///
    /// Panics if the table would exceed the id space (65535 names) — far
    /// beyond any realistic monitor fleet.
    pub fn intern(&mut self, name: &'static str) -> MonitorId {
        if let Some(pos) = self.names.iter().position(|n| *n == name) {
            return MonitorId(pos as u16);
        }
        let idx = self.names.len();
        assert!(idx < usize::from(u16::MAX), "monitor registry full");
        self.names.push(name);
        MonitorId(idx as u16)
    }

    /// Forgets every interned name, keeping the table's storage — the
    /// platform pool re-interns at re-wiring time, so a reset registry
    /// reaches the same dense ids without reallocating.
    pub fn clear(&mut self) {
        self.names.clear();
    }

    /// Looks up a name without interning it.
    pub fn get(&self, name: &str) -> Option<MonitorId> {
        self.names
            .iter()
            .position(|n| *n == name)
            .map(|pos| MonitorId(pos as u16))
    }

    /// Resolves an id back to its name; [`MonitorId::UNBOUND`] and ids
    /// from another registry resolve to `"?"` rather than panicking.
    #[inline]
    pub fn name(&self, id: MonitorId) -> &'static str {
        self.names.get(id.index()).copied().unwrap_or("?")
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (MonitorId, &'static str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (MonitorId(i as u16), *n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_dense_and_idempotent() {
        let mut reg = MonitorRegistry::new();
        let a = reg.intern("a");
        let b = reg.intern("b");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(reg.intern("a"), a);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn unknown_ids_resolve_to_placeholder() {
        let reg = MonitorRegistry::new();
        assert_eq!(reg.name(MonitorId::UNBOUND), "?");
        assert!(!MonitorId::UNBOUND.is_bound());
    }

    #[test]
    fn get_does_not_intern() {
        let mut reg = MonitorRegistry::new();
        assert_eq!(reg.get("x"), None);
        let x = reg.intern("x");
        assert_eq!(reg.get("x"), Some(x));
        assert_eq!(reg.len(), 1);
    }
}
