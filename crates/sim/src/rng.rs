//! Deterministic random number generation.
//!
//! All stochastic behaviour in the simulation — workload inter-arrival
//! times, attack scheduling jitter, sensor noise — draws from [`DetRng`]
//! streams. A single experiment seed is forked into independent streams per
//! subsystem so that adding randomness consumption in one subsystem does not
//! perturb another (a classic reproducibility hazard in DES harnesses).
//!
//! The generator is xoshiro256** with SplitMix64 seeding, implemented here
//! so the simulation kernel has no dependency on external RNG crates and its
//! output is stable across toolchain upgrades.

/// A deterministic, forkable pseudo-random number generator.
///
/// Not cryptographically secure — the crypto substrate has its own
/// [HMAC-DRBG](../../cres_crypto/drbg/index.html) for key material.
///
/// # Example
///
/// ```
/// use cres_sim::DetRng;
/// let mut a = DetRng::seed_from(42);
/// let mut b = DetRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let mut child = a.fork("sensor-noise");
/// assert_ne!(child.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: [u64; 4],
}

/// SplitMix64 step, used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { state }
    }

    /// Derives an independent child stream labelled by `tag`.
    ///
    /// Forking mixes a hash of the label into fresh SplitMix64 state, so two
    /// forks with different labels are statistically independent, and the
    /// same `(seed, tag)` pair always produces the same stream.
    pub fn fork(&mut self, tag: &str) -> DetRng {
        // FNV-1a over the tag keeps the derivation deterministic and cheap.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tag.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        DetRng::seed_from(self.next_u64() ^ h)
    }

    /// Returns the next 64 random bits (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value in `[low, high)`.
    ///
    /// Uses Lemire-style rejection to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn range_u64(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "empty range [{low}, {high})");
        let span = high - low;
        if span.is_power_of_two() {
            return low + (self.next_u64() & (span - 1));
        }
        // Rejection sampling on the top of the range.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return low + (v % span);
            }
        }
    }

    /// Returns a uniformly distributed `usize` in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        self.range_u64(0, len as u64) as usize
    }

    /// Returns true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform dyadic rational in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns an exponentially distributed value with the given mean.
    ///
    /// Used for Poisson inter-arrival workloads.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.next_f64(); // avoid ln(0)
        -mean * u.ln()
    }

    /// Returns a sample from a normal distribution via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Returns a random permutation of `0..len` (Fisher–Yates).
    pub fn permutation(&mut self, len: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..len).collect();
        for i in (1..len).rev() {
            let j = self.index(i + 1);
            v.swap(i, j);
        }
        v
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_reproducible_and_independent() {
        let mut parent1 = DetRng::seed_from(99);
        let mut parent2 = DetRng::seed_from(99);
        let mut c1 = parent1.fork("bus");
        let mut c2 = parent2.fork("bus");
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut parent3 = DetRng::seed_from(99);
        let mut other = parent3.fork("net");
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = DetRng::seed_from(3);
        for _ in 0..10_000 {
            let v = r.range_u64(10, 17);
            assert!((10..17).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = DetRng::seed_from(4);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[(r.range_u64(0, 7)) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        DetRng::seed_from(0).range_u64(5, 5);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::seed_from(5);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = DetRng::seed_from(6);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.exponential(20.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 20.0).abs() < 0.5, "mean was {mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = DetRng::seed_from(8);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.2, "var was {var}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = DetRng::seed_from(9);
        let p = r.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut r = DetRng::seed_from(10);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed_from(11);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // out-of-range probabilities are clamped rather than panicking
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }
}
