#![warn(missing_docs)]

//! Deterministic discrete-event simulation kernel for the CRES platform.
//!
//! Every other crate in the workspace that models time-dependent behaviour —
//! the [SoC substrate](https://docs.rs/cres-soc), the resource monitors, the
//! system security manager — runs on top of this kernel. The kernel provides:
//!
//! * [`SimTime`] / [`SimDuration`] — a cycle-granular simulated clock,
//! * [`Simulator`] — an event queue with deterministic FIFO tie-breaking,
//! * [`DetRng`] — a seedable, forkable deterministic random number generator
//!   (xoshiro256** seeded via SplitMix64),
//! * [`trace::TraceBuffer`] — a bounded in-simulation trace recorder,
//! * [`stage`] — the pipeline-stage vocabulary ([`Stage`], [`StageSink`])
//!   the telemetry layer's instrumentation points speak,
//! * [`intern`] — the [`MonitorId`] interner keeping monitor names off the
//!   hot event path,
//! * [`stats`] — streaming statistics (Welford mean/variance, histograms)
//!   used by experiment harnesses.
//!
//! # Determinism
//!
//! Reproducibility of every experiment in the paper harness rests on two
//! properties enforced here: events scheduled for the same instant fire in
//! schedule order (a monotone sequence number breaks ties), and all
//! randomness flows from [`DetRng`] streams forked from a single seed.
//!
//! # Example
//!
//! ```
//! use cres_sim::{Simulator, SimTime, SimDuration};
//!
//! let mut sim: Simulator<u64> = Simulator::new();
//! sim.schedule_in(SimDuration::cycles(10), |world, sim| {
//!     *world += 1;
//!     // events may schedule follow-ups
//!     sim.schedule_in(SimDuration::cycles(5), |world, _| *world += 10);
//! });
//! let mut world = 0u64;
//! sim.run_until(&mut world, SimTime::at_cycle(100));
//! assert_eq!(world, 11);
//! ```

pub mod event;
pub mod intern;
pub mod rng;
pub mod stage;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::{EventId, Simulator};
pub use intern::{MonitorId, MonitorRegistry};
pub use rng::DetRng;
pub use stage::{fault_code, policy_code, NullSink, Stage, StageSink};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceBuffer, TraceEntry};
