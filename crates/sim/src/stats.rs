//! Streaming statistics used by experiment harnesses and monitors.
//!
//! Provides Welford online mean/variance ([`Running`]), a fixed-bucket
//! [`Histogram`] with percentile queries, and a windowed min/max/mean
//! [`Summary`] convenience for report tables.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Online mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use cres_sim::stats::Running;
/// let mut r = Running::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     r.push(x);
/// }
/// assert!((r.mean() - 5.0).abs() < 1e-12);
/// assert!((r.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Running {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than one observation).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (0 for fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Running) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Running {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min().unwrap_or(f64::NAN),
            self.max().unwrap_or(f64::NAN)
        )
    }
}

/// A histogram over `u64` values with caller-defined bucket boundaries.
///
/// Boundaries are upper bounds: a value `v` lands in the first bucket whose
/// bound is `>= v`; values beyond the last bound land in an overflow bucket.
///
/// # Example
///
/// ```
/// use cres_sim::stats::Histogram;
/// let mut h = Histogram::new(&[10, 100, 1000]);
/// h.record(5);
/// h.record(50);
/// h.record(5000);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_counts(), &[1, 1, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
}

impl Histogram {
    /// Creates a histogram with the given strictly increasing upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
        }
    }

    /// Creates a histogram with exponential bounds `base, base*2, ...` of
    /// the given length.
    pub fn exponential(base: u64, buckets: usize) -> Self {
        assert!(base > 0 && buckets > 0);
        let bounds: Vec<u64> = (0..buckets)
            .map(|i| base.saturating_mul(1u64 << i.min(62)))
            .collect();
        Histogram::new(&bounds)
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let idx = match self.bounds.binary_search(&v) {
            Ok(i) => i,
            Err(i) => i,
        };
        self.counts[idx.min(self.bounds.len())] += 1;
        self.total += 1;
        self.sum += u128::from(v);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Approximate quantile: the upper bound of the bucket containing the
    /// `q`-quantile observation (`q` in `[0, 1]`). Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    u64::MAX
                });
            }
        }
        Some(u64::MAX)
    }
}

/// A compact min/mean/max summary row, convenient for printed tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: u64,
    /// Minimum observation.
    pub min: f64,
    /// Mean observation.
    pub mean: f64,
    /// Maximum observation.
    pub max: f64,
}

impl From<&Running> for Summary {
    fn from(r: &Running) -> Self {
        Summary {
            n: r.count(),
            min: r.min().unwrap_or(0.0),
            mean: r.mean(),
            max: r.max().unwrap_or(0.0),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={:.2} mean={:.2} max={:.2}",
            self.n, self.min, self.mean, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_empty_is_defined() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.count(), 0);
        assert_eq!(r.min(), None);
        assert_eq!(r.max(), None);
    }

    #[test]
    fn running_matches_naive_computation() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((r.mean() - mean).abs() < 1e-9);
        assert!((r.population_variance() - var).abs() < 1e-9);
    }

    #[test]
    fn running_merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| i as f64 * 0.7).collect();
        let mut all = Running::new();
        let mut a = Running::new();
        let mut b = Running::new();
        for (i, &x) in xs.iter().enumerate() {
            all.push(x);
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-6);
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = Running::new();
        let mut b = Running::new();
        b.push(3.0);
        a.merge(&b); // empty += nonempty
        assert_eq!(a.count(), 1);
        let empty = Running::new();
        a.merge(&empty); // nonempty += empty
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn histogram_bucket_assignment() {
        let mut h = Histogram::new(&[10, 20]);
        h.record(10); // exact bound lands in its bucket
        h.record(11);
        h.record(21);
        assert_eq!(h.bucket_counts(), &[1, 1, 1]);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(&[1, 2, 4, 8, 16, 32]);
        for v in 1..=32 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(32));
        let median = h.quantile(0.5).unwrap();
        assert!(median == 16, "median bucket bound was {median}");
    }

    #[test]
    fn histogram_empty_quantile_none() {
        let h = Histogram::new(&[1]);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_bad_bounds() {
        Histogram::new(&[5, 5]);
    }

    #[test]
    fn exponential_bounds_grow() {
        let h = Histogram::exponential(10, 4);
        let mut h2 = h.clone();
        h2.record(15);
        assert_eq!(h2.bucket_counts()[1], 1);
    }

    #[test]
    fn summary_from_running() {
        let mut r = Running::new();
        r.push(1.0);
        r.push(3.0);
        let s = Summary::from(&r);
        assert_eq!(s.n, 2);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(!s.to_string().is_empty());
    }
}
