//! Bounded in-simulation trace recording.
//!
//! A [`TraceBuffer`] is the substrate's equivalent of an on-chip trace
//! macrocell: a bounded ring of timestamped entries with overflow
//! accounting and a [`TraceBuffer::wipe`] method modelling an attacker (or
//! crash handler) erasing a log held in unprotected memory. The platform's
//! wipeable audit trail is the UART console log and its tamper-evident one
//! is the SSM's hash-chained store; this buffer is the general-purpose
//! debug-trace utility available to harness code.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// When the entry was recorded.
    pub at: SimTime,
    /// Producer subsystem, e.g. `"bus"` or `"ssm"`.
    pub source: String,
    /// Free-form message.
    pub message: String,
}

/// A bounded ring buffer of trace entries.
///
/// When full, the oldest entry is evicted; `dropped()` counts evictions so
/// forensic tooling can tell a quiet system from an overflowing one.
///
/// # Example
///
/// ```
/// use cres_sim::{TraceBuffer, SimTime};
/// let mut t = TraceBuffer::with_capacity(2);
/// t.record(SimTime::at_cycle(1), "bus", "read 0x1000");
/// t.record(SimTime::at_cycle(2), "bus", "write 0x2000");
/// t.record(SimTime::at_cycle(3), "bus", "read 0x3000");
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.dropped(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceBuffer {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace buffer capacity must be non-zero");
        TraceBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Records an entry, evicting the oldest when full.
    pub fn record(&mut self, at: SimTime, source: &str, message: impl Into<String>) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry {
            at,
            source: source.to_string(),
            message: message.into(),
        });
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates retained entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Returns retained entries from `source` only.
    pub fn from_source<'a>(&'a self, source: &'a str) -> impl Iterator<Item = &'a TraceEntry> {
        self.entries.iter().filter(move |e| e.source == source)
    }

    /// Erases all retained entries — this models an attacker (or a panic
    /// handler) wiping a log that lives in unprotected memory. The
    /// `dropped` counter is also cleared: a thorough attacker leaves no
    /// residue.
    pub fn wipe(&mut self) {
        self.entries.clear();
        self.dropped = 0;
    }
}

impl<'a> IntoIterator for &'a TraceBuffer {
    type Item = &'a TraceEntry;
    type IntoIter = std::collections::vec_deque::Iter<'a, TraceEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> SimTime {
        SimTime::at_cycle(c)
    }

    #[test]
    fn records_in_order() {
        let mut tb = TraceBuffer::with_capacity(10);
        tb.record(t(1), "a", "one");
        tb.record(t(2), "b", "two");
        let msgs: Vec<_> = tb.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["one", "two"]);
    }

    #[test]
    fn eviction_keeps_newest() {
        let mut tb = TraceBuffer::with_capacity(3);
        for i in 0..5 {
            tb.record(t(i), "s", format!("m{i}"));
        }
        assert_eq!(tb.len(), 3);
        assert_eq!(tb.dropped(), 2);
        assert_eq!(tb.iter().next().unwrap().message, "m2");
    }

    #[test]
    fn source_filter() {
        let mut tb = TraceBuffer::with_capacity(10);
        tb.record(t(1), "bus", "x");
        tb.record(t(2), "net", "y");
        tb.record(t(3), "bus", "z");
        assert_eq!(tb.from_source("bus").count(), 2);
        assert_eq!(tb.from_source("net").count(), 1);
        assert_eq!(tb.from_source("cpu").count(), 0);
    }

    #[test]
    fn wipe_clears_everything() {
        let mut tb = TraceBuffer::with_capacity(2);
        for i in 0..4 {
            tb.record(t(i), "s", "m");
        }
        tb.wipe();
        assert!(tb.is_empty());
        assert_eq!(tb.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        TraceBuffer::with_capacity(0);
    }

    #[test]
    fn into_iterator_works() {
        let mut tb = TraceBuffer::with_capacity(4);
        tb.record(t(1), "s", "m");
        let n = (&tb).into_iter().count();
        assert_eq!(n, 1);
    }
}
