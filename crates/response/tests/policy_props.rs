//! Property suites for the response policy engine — the ISSUE-pinned
//! invariants: the tier ladder is a total order with single-step monotone
//! transitions, hysteresis never flaps under an adversarial alternating
//! signal, and the engine is a pure deterministic function of its input
//! sequence (so campaign results cannot depend on worker count).

use cres_response::{BreakerKey, PolicyConfig, PolicyDecision, ResponsePolicy};
use cres_sim::{NullSink, SimTime};
use cres_ssm::DegradationTier;
use proptest::prelude::*;

/// One scripted stimulus for the engine: an incident of some severity
/// weight against one of a few resources, or an incident-free tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stimulus {
    Incident { resource: u8, weight: u32 },
    Quiet,
}

fn stimulus(code: u16) -> Stimulus {
    // low bit-budget decode so `Vec<u16>` drives rich scripts: ~half the
    // space is quiet ticks, the rest spreads over 4 resources × weights 1..4
    if code % 2 == 0 {
        Stimulus::Quiet
    } else {
        Stimulus::Incident {
            resource: (code / 2 % 4) as u8,
            weight: u32::from(code / 8 % 4) + 1,
        }
    }
}

fn key_for(resource: u8) -> BreakerKey {
    match resource % 4 {
        0 => BreakerKey::Network,
        1 => BreakerKey::Sensor(0),
        2 => BreakerKey::Sensor(1),
        _ => BreakerKey::Platform,
    }
}

/// Drives a script through a fresh engine, returning every decision with
/// the tick index it fired on.
fn drive(config: PolicyConfig, script: &[u16]) -> Vec<(usize, PolicyDecision)> {
    let mut policy = ResponsePolicy::new(config);
    let mut sink = NullSink;
    let mut out = Vec::new();
    for (tick, &code) in script.iter().enumerate() {
        let now = SimTime::at_cycle(tick as u64 * 5_000);
        let decisions = match stimulus(code) {
            Stimulus::Incident { resource, weight } => {
                policy.on_incident(key_for(resource), weight, now, &mut sink)
            }
            Stimulus::Quiet => policy.quiet_tick(now, &mut sink),
        };
        out.extend(decisions.into_iter().map(|d| (tick, d)));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The tier ladder is a total order consistent with its index, and
    /// raise/lower move exactly one step, saturating at the ends.
    #[test]
    fn tier_ladder_is_total_and_single_step(a in 0usize..4, b in 0usize..4) {
        let ta = DegradationTier::ALL[a];
        let tb = DegradationTier::ALL[b];
        prop_assert_eq!(ta < tb, a < b);
        prop_assert_eq!(ta == tb, a == b);
        prop_assert_eq!(ta.index(), a);
        prop_assert_eq!(ta.raised().index(), (a + 1).min(3));
        prop_assert_eq!(ta.lowered().index(), a.saturating_sub(1));
        prop_assert_eq!(DegradationTier::from_name(ta.name()), Some(ta));
    }

    /// Every tier transition the engine emits is single-step, in the
    /// claimed direction, and chains exactly from the previous tier.
    #[test]
    fn tier_transitions_are_monotone_single_steps(
        script in proptest::collection::vec(any::<u16>(), 0..400)
    ) {
        let mut tier = DegradationTier::Full;
        for (_, decision) in drive(PolicyConfig::enabled(), &script) {
            match decision {
                PolicyDecision::TierRaised { from, to } => {
                    prop_assert_eq!(from, tier);
                    prop_assert_eq!(to, from.raised());
                    prop_assert!(to > from);
                    tier = to;
                }
                PolicyDecision::TierLowered { from, to } => {
                    prop_assert_eq!(from, tier);
                    prop_assert_eq!(to, from.lowered());
                    prop_assert!(to < from);
                    tier = to;
                }
                _ => {}
            }
        }
    }

    /// Hysteresis never flaps: a step down requires a full quiet holdoff
    /// (`exit_quiet_ticks` incident-free ticks since the last incident
    /// *and* since the last step down), and a step back up requires a new
    /// incident — an alternating signal can never produce lower/raise
    /// churn inside one holdoff window.
    #[test]
    fn hysteresis_never_flaps(
        script in proptest::collection::vec(any::<u16>(), 1..400)
    ) {
        let config = PolicyConfig::enabled();
        let decisions = drive(config, &script);
        let mut last_disturbance: Option<usize> = None; // incident or step-down tick
        let mut incident_since_lower = true;
        for (tick, &code) in script.iter().enumerate() {
            if matches!(stimulus(code), Stimulus::Incident { .. }) {
                last_disturbance = Some(tick);
                incident_since_lower = true;
            }
            for (_, decision) in decisions.iter().filter(|(t, _)| *t == tick) {
                match decision {
                    PolicyDecision::TierLowered { .. } => {
                        let quiet_run = tick - last_disturbance.map_or(0, |t| t + 1) + 1;
                        prop_assert!(
                            quiet_run >= config.exit_quiet_ticks as usize,
                            "lowered after only {quiet_run} quiet ticks at tick {tick}"
                        );
                        last_disturbance = Some(tick);
                        incident_since_lower = false;
                    }
                    PolicyDecision::TierRaised { .. } => {
                        prop_assert!(
                            incident_since_lower,
                            "tier raised with no incident since the last step down (tick {tick})"
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    /// The engine is a pure function of its stimulus script: two replays
    /// produce identical decision streams and identical availability
    /// reports — the determinism that makes campaign output independent of
    /// `CRES_JOBS` worker interleaving.
    #[test]
    fn engine_is_deterministic_over_any_script(
        script in proptest::collection::vec(any::<u16>(), 0..300)
    ) {
        let a = drive(PolicyConfig::enabled(), &script);
        let b = drive(PolicyConfig::enabled(), &script);
        prop_assert_eq!(a, b);

        let run_report = |script: &[u16]| {
            let mut policy = ResponsePolicy::new(PolicyConfig::enabled());
            let mut sink = NullSink;
            for (tick, &code) in script.iter().enumerate() {
                let now = SimTime::at_cycle(tick as u64 * 5_000);
                match stimulus(code) {
                    Stimulus::Incident { resource, weight } => {
                        policy.on_incident(key_for(resource), weight, now, &mut sink);
                    }
                    Stimulus::Quiet => {
                        policy.quiet_tick(now, &mut sink);
                    }
                }
                policy.sample_service(1, 1, tick as u64 % 2, 1);
            }
            policy.finish(SimTime::at_cycle(script.len() as u64 * 5_000))
        };
        prop_assert_eq!(run_report(&script), run_report(&script));
    }

    /// Availability accounting never over-credits: delivered ≤ offered for
    /// both classes, and the per-tier time budget sums to the run length.
    #[test]
    fn availability_accounting_is_conservative(
        script in proptest::collection::vec(any::<u16>(), 1..200),
        running in proptest::collection::vec(any::<bool>(), 1..200)
    ) {
        let mut policy = ResponsePolicy::new(PolicyConfig::enabled());
        let mut sink = NullSink;
        for (tick, &code) in script.iter().enumerate() {
            let now = SimTime::at_cycle(tick as u64 * 5_000);
            match stimulus(code) {
                Stimulus::Incident { resource, weight } => {
                    policy.on_incident(key_for(resource), weight, now, &mut sink);
                }
                Stimulus::Quiet => {
                    policy.quiet_tick(now, &mut sink);
                }
            }
            let up = running[tick % running.len()];
            policy.sample_service(u64::from(up), 1, 2, 3);
        }
        let end = SimTime::at_cycle(script.len() as u64 * 5_000);
        let report = policy.finish(end);
        prop_assert!(report.critical_delivered <= report.critical_offered);
        prop_assert!(report.noncritical_delivered <= report.noncritical_offered);
        prop_assert!(report.critical_availability() >= 0.0);
        prop_assert!(report.critical_availability() <= 1.0);
        prop_assert_eq!(
            report.time_in_tier.iter().sum::<u64>(),
            end.cycle(),
            "tier time budget must partition the run"
        );
    }
}
