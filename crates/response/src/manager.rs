//! The response manager: plan execution and graceful degradation.

use crate::backend::RecoveryBackend;
use cres_sim::{SimDuration, SimTime, Stage, StageSink};
use cres_soc::addr::MasterId;
use cres_soc::task::{Criticality, TaskId, TaskState};
use cres_soc::Soc;
use cres_ssm::{DegradationTier, ResponseAction, ResponsePlan};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Result of executing one action.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionOutcome {
    /// The countermeasure took effect.
    Success,
    /// Execution was attempted and failed.
    Failed(String),
    /// The action did not apply (e.g. unknown task).
    Skipped(String),
}

impl ActionOutcome {
    /// True for [`ActionOutcome::Success`].
    pub fn is_success(&self) -> bool {
        matches!(self, ActionOutcome::Success)
    }
}

impl fmt::Display for ActionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionOutcome::Success => write!(f, "success"),
            ActionOutcome::Failed(why) => write!(f, "failed: {why}"),
            ActionOutcome::Skipped(why) => write!(f, "skipped: {why}"),
        }
    }
}

/// An executed countermeasure, for the evidence loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutedAction {
    /// When it executed.
    pub at: SimTime,
    /// The action.
    pub action: ResponseAction,
    /// What happened.
    pub outcome: ActionOutcome,
}

/// Modelled cycle cost of executing one countermeasure, reported in
/// `respond` telemetry spans. Register pokes are cheap; firmware recovery
/// involves flash traffic.
fn action_cost(action: ResponseAction) -> u64 {
    match action {
        ResponseAction::IsolateMaster(_) => 6,
        ResponseAction::KillTask(_) | ResponseAction::RestartTask(_) => 4,
        ResponseAction::QuarantineNetwork | ResponseAction::RateLimitNetwork(_) => 3,
        ResponseAction::ZeroizeKeys => 10,
        ResponseAction::RollbackFirmware | ResponseAction::GoldenRecovery => 40,
        ResponseAction::RebootSystem => 20,
        ResponseAction::EnterDegradedMode => 5,
        ResponseAction::LockActuators | ResponseAction::DistrustSensor(_) => 3,
    }
}

/// The active response manager.
#[derive(Debug, Clone)]
pub struct ResponseManager {
    reboot_duration: SimDuration,
    executed: Vec<ExecutedAction>,
    degraded: bool,
    suspended_by_degrade: Vec<TaskId>,
    /// Tier posture in force (stays `Full` unless a policy engine drives
    /// [`ResponseManager::apply_tier`]).
    tier: DegradationTier,
    /// Tasks suspended by tier posture, awaiting a looser tier.
    policy_suspended: Vec<TaskId>,
    distrusted_sensors: HashSet<usize>,
    isolated: HashSet<MasterId>,
}

impl ResponseManager {
    /// Creates a manager whose system reboots take `reboot_duration`.
    pub fn new(reboot_duration: SimDuration) -> Self {
        ResponseManager {
            reboot_duration,
            executed: Vec::new(),
            degraded: false,
            suspended_by_degrade: Vec::new(),
            tier: DegradationTier::Full,
            policy_suspended: Vec::new(),
            distrusted_sensors: HashSet::new(),
            isolated: HashSet::new(),
        }
    }

    /// The configured reboot latency.
    pub fn reboot_duration(&self) -> SimDuration {
        self.reboot_duration
    }

    /// Everything executed so far.
    pub fn executed(&self) -> &[ExecutedAction] {
        &self.executed
    }

    /// True while in degraded mode — either the legacy boolean degrade
    /// (no policy engine) or any tier posture tighter than `Full`.
    pub fn is_degraded(&self) -> bool {
        self.degraded || self.tier > DegradationTier::Full
    }

    /// The tier posture currently applied to the SoC.
    pub fn tier(&self) -> DegradationTier {
        self.tier
    }

    /// True when sensor `idx` has been marked untrustworthy.
    pub fn is_distrusted(&self, idx: usize) -> bool {
        self.distrusted_sensors.contains(&idx)
    }

    /// Masters currently isolated by countermeasures.
    pub fn isolated_masters(&self) -> impl Iterator<Item = MasterId> + '_ {
        self.isolated.iter().copied()
    }

    /// Executes a full plan in order. Execution continues past failures —
    /// a failed rollback must not prevent network quarantine.
    pub fn execute_plan(
        &mut self,
        plan: &ResponsePlan,
        now: SimTime,
        soc: &mut Soc,
        backend: &mut dyn RecoveryBackend,
    ) -> Vec<ExecutedAction> {
        let mut sink = cres_sim::NullSink;
        self.execute_plan_traced(plan, now, soc, backend, &mut sink)
    }

    /// [`ResponseManager::execute_plan`] with telemetry: records one
    /// `respond` span per action (arg = 1 on success, cycles = the action's
    /// modelled execution cost).
    pub fn execute_plan_traced(
        &mut self,
        plan: &ResponsePlan,
        now: SimTime,
        soc: &mut Soc,
        backend: &mut dyn RecoveryBackend,
        sink: &mut dyn StageSink,
    ) -> Vec<ExecutedAction> {
        plan.actions
            .iter()
            .map(|action| {
                let record = self.execute(*action, now, soc, backend);
                sink.record_span(
                    now,
                    Stage::Respond,
                    u32::from(record.outcome.is_success()),
                    action_cost(*action),
                );
                record
            })
            .collect()
    }

    /// Records a command the interconnect fault plane dropped before it
    /// reached the backend. The action is *not* executed — the record keeps
    /// the forensic log complete so a post-incident audit can distinguish
    /// "never commanded" from "commanded but lost".
    pub fn record_dropped(&mut self, action: ResponseAction, now: SimTime) -> ExecutedAction {
        let record = ExecutedAction {
            at: now,
            action,
            outcome: ActionOutcome::Failed("command dropped by interconnect fault".into()),
        };
        self.executed.push(record.clone());
        record
    }

    /// Executes one countermeasure.
    pub fn execute(
        &mut self,
        action: ResponseAction,
        now: SimTime,
        soc: &mut Soc,
        backend: &mut dyn RecoveryBackend,
    ) -> ExecutedAction {
        let outcome = match action {
            ResponseAction::IsolateMaster(m) => {
                if m == MasterId::SSM {
                    ActionOutcome::Skipped("refusing to isolate the SSM".into())
                } else {
                    soc.bus.gate(m);
                    soc.mem.revoke_all(m);
                    if m.is_app_core() {
                        if let Some(core) = soc.cores.iter_mut().find(|c| c.master() == m) {
                            core.halt();
                        }
                    }
                    self.isolated.insert(m);
                    ActionOutcome::Success
                }
            }
            ResponseAction::KillTask(t) => match soc.task_mut(t) {
                Some(task) => {
                    task.kill();
                    ActionOutcome::Success
                }
                None => ActionOutcome::Skipped(format!("no such task {t}")),
            },
            ResponseAction::RestartTask(t) => match soc.task_mut(t) {
                Some(task) => {
                    task.restart();
                    ActionOutcome::Success
                }
                None => ActionOutcome::Skipped(format!("no such task {t}")),
            },
            ResponseAction::QuarantineNetwork => {
                soc.nic.quarantine();
                ActionOutcome::Success
            }
            ResponseAction::RateLimitNetwork(limit) => {
                soc.nic.set_rate_limit(limit);
                ActionOutcome::Success
            }
            ResponseAction::ZeroizeKeys => match backend.zeroize_keys() {
                Ok(()) => ActionOutcome::Success,
                Err(e) => ActionOutcome::Failed(e),
            },
            ResponseAction::RollbackFirmware => match backend.rollback_firmware() {
                Ok(()) => {
                    soc.reboot_all_cores(now, self.reboot_duration);
                    ActionOutcome::Success
                }
                Err(e) => ActionOutcome::Failed(e),
            },
            ResponseAction::GoldenRecovery => match backend.golden_recovery() {
                Ok(()) => {
                    soc.reboot_all_cores(now, self.reboot_duration);
                    ActionOutcome::Success
                }
                Err(e) => ActionOutcome::Failed(e),
            },
            ResponseAction::RebootSystem => {
                soc.reboot_all_cores(now, self.reboot_duration);
                ActionOutcome::Success
            }
            ResponseAction::EnterDegradedMode => {
                self.enter_degraded(soc);
                ActionOutcome::Success
            }
            ResponseAction::LockActuators => {
                for a in &mut soc.actuators {
                    a.lockout();
                }
                ActionOutcome::Success
            }
            ResponseAction::DistrustSensor(idx) => {
                if idx < soc.sensors.len() {
                    self.distrusted_sensors.insert(idx);
                    ActionOutcome::Success
                } else {
                    ActionOutcome::Skipped(format!("no sensor {idx}"))
                }
            }
        };
        let record = ExecutedAction {
            at: now,
            action,
            outcome,
        };
        self.executed.push(record.clone());
        record
    }

    fn enter_degraded(&mut self, soc: &mut Soc) {
        if self.degraded {
            return;
        }
        self.degraded = true;
        for id in soc.task_ids() {
            let Some(task) = soc.task_mut(id) else {
                continue;
            };
            if task.criticality() < Criticality::Critical && task.state() == TaskState::Running {
                task.suspend();
                self.suspended_by_degrade.push(id);
            }
        }
    }

    /// Leaves degraded mode, resuming the tasks it suspended. A task that
    /// is no longer suspended — killed by a later countermeasure, restarted
    /// elsewhere, or gone entirely — is skipped, never revived: leaving
    /// degraded mode must not undo a `KillTask`.
    pub fn exit_degraded(&mut self, soc: &mut Soc) {
        if !self.degraded {
            return;
        }
        self.degraded = false;
        for id in self.suspended_by_degrade.drain(..) {
            match soc.task_mut(id) {
                Some(task) if task.state() == TaskState::Suspended => task.resume(),
                _ => {}
            }
        }
    }

    /// Applies a degradation-tier posture change to the SoC. `from` is the
    /// posture previously in force; raising only tightens (never lifts a
    /// countermeasure already in place), lowering restores service for the
    /// new tier:
    ///
    /// | tier | tasks running | network | actuators |
    /// |------|---------------|---------|-----------|
    /// | `Full` | all | open | live |
    /// | `ShedNonCritical` | `Important`+ | rate-limited | live |
    /// | `CriticalOnly` | `Critical` only | quarantined | live |
    /// | `SafeHalt` | none | quarantined | locked out |
    ///
    /// Tasks suspended by posture are resumed when a looser tier re-admits
    /// their criticality class — unless they are no longer suspended
    /// (killed, restarted, or removed), in which case they are dropped from
    /// the posture set, not revived.
    pub fn apply_tier(&mut self, from: DegradationTier, to: DegradationTier, soc: &mut Soc) {
        self.tier = to;
        let admitted = |criticality: Criticality| match to {
            DegradationTier::Full => true,
            DegradationTier::ShedNonCritical => criticality > Criticality::BestEffort,
            DegradationTier::CriticalOnly => criticality >= Criticality::Critical,
            DegradationTier::SafeHalt => false,
        };
        // Shed: suspend running tasks the new posture no longer admits.
        for id in soc.task_ids() {
            let Some(task) = soc.task_mut(id) else {
                continue;
            };
            if !admitted(task.criticality()) && task.state() == TaskState::Running {
                task.suspend();
                if !self.policy_suspended.contains(&id) {
                    self.policy_suspended.push(id);
                }
            }
        }
        // Restore: resume posture-suspended tasks the new tier re-admits.
        self.policy_suspended.retain(|&id| match soc.task_mut(id) {
            Some(task) if task.state() != TaskState::Suspended => false,
            Some(task) if admitted(task.criticality()) => {
                task.resume();
                false
            }
            Some(_) => true,
            None => false,
        });
        let raising = to > from;
        match to {
            DegradationTier::Full => {
                soc.nic.release();
                soc.nic.clear_rate_limit();
            }
            DegradationTier::ShedNonCritical => {
                soc.nic.set_rate_limit(32);
                if !raising {
                    // lowering out of quarantine restores rate-limited flow;
                    // raising must not lift a quarantine already imposed
                    soc.nic.release();
                }
            }
            DegradationTier::CriticalOnly | DegradationTier::SafeHalt => {
                soc.nic.quarantine();
            }
        }
        if to == DegradationTier::SafeHalt {
            for a in &mut soc.actuators {
                a.lockout();
            }
        } else if from == DegradationTier::SafeHalt {
            for a in &mut soc.actuators {
                a.release();
            }
        }
    }

    /// Restores an isolated master (post-recovery, after reprovisioning its
    /// grants at the platform level).
    pub fn lift_isolation(&mut self, master: MasterId, soc: &mut Soc) {
        if self.isolated.remove(&master) {
            soc.bus.ungate(master);
            if master.is_app_core() {
                if let Some(core) = soc.cores.iter_mut().find(|c| c.master() == master) {
                    core.resume(SimTime::ZERO);
                }
            }
        }
    }

    /// Restores network service (lifts quarantine and rate limits).
    pub fn restore_network(&mut self, soc: &mut Soc) {
        soc.nic.release();
        soc.nic.clear_rate_limit();
    }

    /// Restores trust in a sensor after recalibration.
    pub fn restore_sensor_trust(&mut self, idx: usize) {
        self.distrusted_sensors.remove(&idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::NullRecoveryBackend;
    use cres_soc::addr::Addr;
    use cres_soc::periph::{Actuator, Sensor};
    use cres_soc::soc::{layout, SocBuilder};
    use cres_soc::task::{control_loop_program, Task};

    fn soc() -> Soc {
        let mut soc = SocBuilder::with_standard_layout(5)
            .sensor(Sensor::new("s0", 10.0, 1.0, 1000, 0.01))
            .actuator(Actuator::new("valve", 0.0, 100.0))
            .build();
        let critical = Task::new(
            TaskId(1),
            "relay",
            control_loop_program(layout::FLASH_A.0, layout::SRAM.0, layout::PERIPH.0),
            Criticality::Critical,
        );
        let best_effort = Task::new(
            TaskId(2),
            "telemetry",
            control_loop_program(
                layout::FLASH_A.0.offset(0x1000),
                layout::SRAM.0.offset(0x1000),
                layout::PERIPH.0.offset(0x100),
            ),
            Criticality::BestEffort,
        );
        soc.add_task(critical, 0);
        soc.add_task(best_effort, 1);
        soc
    }

    fn mgr() -> ResponseManager {
        ResponseManager::new(SimDuration::cycles(50_000))
    }

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    #[test]
    fn isolate_master_gates_revokes_and_halts() {
        let mut soc = soc();
        let mut m = mgr();
        let mut b = NullRecoveryBackend::new();
        let rec = m.execute(
            ResponseAction::IsolateMaster(MasterId::CPU1),
            t0(),
            &mut soc,
            &mut b,
        );
        assert!(rec.outcome.is_success());
        assert!(soc.bus.is_gated(MasterId::CPU1));
        assert!(!soc.cores[1].is_running(t0()));
        // memory fully revoked
        assert!(soc.mem.read(MasterId::CPU1, Addr(0x2000_0000), 4).is_err());
        assert_eq!(
            m.isolated_masters().collect::<Vec<_>>(),
            vec![MasterId::CPU1]
        );
    }

    #[test]
    fn ssm_isolation_refused() {
        let mut soc = soc();
        let mut m = mgr();
        let mut b = NullRecoveryBackend::new();
        let rec = m.execute(
            ResponseAction::IsolateMaster(MasterId::SSM),
            t0(),
            &mut soc,
            &mut b,
        );
        assert!(matches!(rec.outcome, ActionOutcome::Skipped(_)));
        assert!(!soc.bus.is_gated(MasterId::SSM));
    }

    #[test]
    fn kill_and_restart_task() {
        let mut soc = soc();
        let mut m = mgr();
        let mut b = NullRecoveryBackend::new();
        m.execute(ResponseAction::KillTask(TaskId(1)), t0(), &mut soc, &mut b);
        assert_eq!(soc.task(TaskId(1)).unwrap().state(), TaskState::Killed);
        m.execute(
            ResponseAction::RestartTask(TaskId(1)),
            t0(),
            &mut soc,
            &mut b,
        );
        assert_eq!(soc.task(TaskId(1)).unwrap().state(), TaskState::Running);
        // unknown task is skipped, not an error
        let rec = m.execute(ResponseAction::KillTask(TaskId(99)), t0(), &mut soc, &mut b);
        assert!(matches!(rec.outcome, ActionOutcome::Skipped(_)));
    }

    #[test]
    fn network_countermeasures() {
        let mut soc = soc();
        let mut m = mgr();
        let mut b = NullRecoveryBackend::new();
        m.execute(ResponseAction::QuarantineNetwork, t0(), &mut soc, &mut b);
        assert!(soc.nic.is_quarantined());
        m.execute(ResponseAction::RateLimitNetwork(8), t0(), &mut soc, &mut b);
        assert!(soc.nic.is_rate_limited());
        m.restore_network(&mut soc);
        assert!(!soc.nic.is_quarantined());
        assert!(!soc.nic.is_rate_limited());
    }

    #[test]
    fn degraded_mode_sheds_only_noncritical_tasks() {
        let mut soc = soc();
        let mut m = mgr();
        let mut b = NullRecoveryBackend::new();
        m.execute(ResponseAction::EnterDegradedMode, t0(), &mut soc, &mut b);
        assert!(m.is_degraded());
        assert_eq!(
            soc.task(TaskId(1)).unwrap().state(),
            TaskState::Running,
            "critical survives"
        );
        assert_eq!(
            soc.task(TaskId(2)).unwrap().state(),
            TaskState::Suspended,
            "best-effort shed"
        );
        m.exit_degraded(&mut soc);
        assert!(!m.is_degraded());
        assert_eq!(soc.task(TaskId(2)).unwrap().state(), TaskState::Running);
    }

    #[test]
    fn exit_degraded_does_not_revive_killed_tasks() {
        // regression: leaving degraded mode used to resume every task it had
        // suspended, even one a later KillTask had removed from service
        let mut soc = soc();
        let mut m = mgr();
        let mut b = NullRecoveryBackend::new();
        m.execute(ResponseAction::EnterDegradedMode, t0(), &mut soc, &mut b);
        assert_eq!(soc.task(TaskId(2)).unwrap().state(), TaskState::Suspended);
        // the suspended task is then killed by a countermeasure
        m.execute(ResponseAction::KillTask(TaskId(2)), t0(), &mut soc, &mut b);
        assert_eq!(soc.task(TaskId(2)).unwrap().state(), TaskState::Killed);
        m.exit_degraded(&mut soc);
        assert_eq!(
            soc.task(TaskId(2)).unwrap().state(),
            TaskState::Killed,
            "exit_degraded revived a killed task"
        );
        // a task restarted in the meantime is likewise left alone
        m.execute(ResponseAction::EnterDegradedMode, t0(), &mut soc, &mut b);
        m.execute(
            ResponseAction::RestartTask(TaskId(2)),
            t0(),
            &mut soc,
            &mut b,
        );
        assert_eq!(soc.task(TaskId(2)).unwrap().state(), TaskState::Running);
        m.exit_degraded(&mut soc);
        assert_eq!(soc.task(TaskId(2)).unwrap().state(), TaskState::Running);
    }

    #[test]
    fn tier_posture_sheds_and_restores_by_criticality() {
        let mut soc = soc();
        let mut m = mgr();
        use DegradationTier::*;
        m.apply_tier(Full, ShedNonCritical, &mut soc);
        assert_eq!(m.tier(), ShedNonCritical);
        assert!(m.is_degraded());
        assert_eq!(soc.task(TaskId(1)).unwrap().state(), TaskState::Running);
        assert_eq!(soc.task(TaskId(2)).unwrap().state(), TaskState::Suspended);
        assert!(soc.nic.is_rate_limited());
        assert!(!soc.nic.is_quarantined());

        m.apply_tier(ShedNonCritical, CriticalOnly, &mut soc);
        assert!(soc.nic.is_quarantined());
        assert_eq!(soc.task(TaskId(1)).unwrap().state(), TaskState::Running);

        m.apply_tier(CriticalOnly, SafeHalt, &mut soc);
        assert_eq!(soc.task(TaskId(1)).unwrap().state(), TaskState::Suspended);
        assert!(soc.actuators[0].is_locked_out());

        // recovery, one step at a time
        m.apply_tier(SafeHalt, CriticalOnly, &mut soc);
        assert_eq!(soc.task(TaskId(1)).unwrap().state(), TaskState::Running);
        assert!(!soc.actuators[0].is_locked_out());
        assert!(soc.nic.is_quarantined(), "critical-only keeps quarantine");
        m.apply_tier(CriticalOnly, ShedNonCritical, &mut soc);
        assert!(!soc.nic.is_quarantined());
        assert!(soc.nic.is_rate_limited());
        assert_eq!(soc.task(TaskId(2)).unwrap().state(), TaskState::Suspended);
        m.apply_tier(ShedNonCritical, Full, &mut soc);
        assert!(!m.is_degraded());
        assert_eq!(m.tier(), Full);
        assert_eq!(soc.task(TaskId(2)).unwrap().state(), TaskState::Running);
        assert!(!soc.nic.is_rate_limited());
    }

    #[test]
    fn tier_restore_skips_killed_tasks() {
        let mut soc = soc();
        let mut m = mgr();
        use DegradationTier::*;
        m.apply_tier(Full, CriticalOnly, &mut soc);
        assert_eq!(soc.task(TaskId(2)).unwrap().state(), TaskState::Suspended);
        soc.task_mut(TaskId(2)).unwrap().kill();
        m.apply_tier(CriticalOnly, Full, &mut soc);
        assert_eq!(
            soc.task(TaskId(2)).unwrap().state(),
            TaskState::Killed,
            "tier restore revived a killed task"
        );
    }

    #[test]
    fn raising_tier_does_not_lift_existing_quarantine() {
        let mut soc = soc();
        let mut m = mgr();
        let mut b = NullRecoveryBackend::new();
        m.execute(ResponseAction::QuarantineNetwork, t0(), &mut soc, &mut b);
        use DegradationTier::*;
        m.apply_tier(Full, ShedNonCritical, &mut soc);
        assert!(
            soc.nic.is_quarantined(),
            "raising to shed-non-critical lifted an active quarantine"
        );
    }

    #[test]
    fn degraded_mode_is_idempotent() {
        let mut soc = soc();
        let mut m = mgr();
        let mut b = NullRecoveryBackend::new();
        m.execute(ResponseAction::EnterDegradedMode, t0(), &mut soc, &mut b);
        m.execute(ResponseAction::EnterDegradedMode, t0(), &mut soc, &mut b);
        m.exit_degraded(&mut soc);
        assert_eq!(soc.task(TaskId(2)).unwrap().state(), TaskState::Running);
    }

    #[test]
    fn reboot_darkens_cores_for_duration() {
        let mut soc = soc();
        let mut m = mgr();
        let mut b = NullRecoveryBackend::new();
        m.execute(ResponseAction::RebootSystem, t0(), &mut soc, &mut b);
        assert!(!soc.cores[0].is_running(SimTime::at_cycle(1_000)));
        assert!(soc.cores[0].is_running(SimTime::at_cycle(50_000)));
    }

    #[test]
    fn recovery_actions_reach_backend_and_reboot() {
        let mut soc = soc();
        let mut m = mgr();
        let mut b = NullRecoveryBackend::new();
        m.execute(ResponseAction::RollbackFirmware, t0(), &mut soc, &mut b);
        m.execute(
            ResponseAction::GoldenRecovery,
            SimTime::at_cycle(100_000),
            &mut soc,
            &mut b,
        );
        m.execute(
            ResponseAction::ZeroizeKeys,
            SimTime::at_cycle(100_000),
            &mut soc,
            &mut b,
        );
        assert_eq!((b.rollbacks, b.golden, b.zeroized), (1, 1, 1));
        assert!(!soc.cores[0].is_running(SimTime::at_cycle(100_001)));
    }

    #[test]
    fn failed_backend_is_reported_not_panicked() {
        struct FailingBackend;
        impl RecoveryBackend for FailingBackend {
            fn rollback_firmware(&mut self) -> Result<(), String> {
                Err("no fallback slot".into())
            }
            fn golden_recovery(&mut self) -> Result<(), String> {
                Ok(())
            }
            fn zeroize_keys(&mut self) -> Result<(), String> {
                Ok(())
            }
        }
        let mut soc = soc();
        let mut m = mgr();
        let rec = m.execute(
            ResponseAction::RollbackFirmware,
            t0(),
            &mut soc,
            &mut FailingBackend,
        );
        assert!(matches!(rec.outcome, ActionOutcome::Failed(_)));
        // failed rollback must not reboot
        assert!(soc.cores[0].is_running(SimTime::at_cycle(1)));
    }

    #[test]
    fn actuator_lockout_and_sensor_distrust() {
        let mut soc = soc();
        let mut m = mgr();
        let mut b = NullRecoveryBackend::new();
        m.execute(ResponseAction::LockActuators, t0(), &mut soc, &mut b);
        assert!(soc.actuators[0].is_locked_out());
        m.execute(ResponseAction::DistrustSensor(0), t0(), &mut soc, &mut b);
        assert!(m.is_distrusted(0));
        let rec = m.execute(ResponseAction::DistrustSensor(9), t0(), &mut soc, &mut b);
        assert!(matches!(rec.outcome, ActionOutcome::Skipped(_)));
        m.restore_sensor_trust(0);
        assert!(!m.is_distrusted(0));
    }

    #[test]
    fn plan_execution_continues_past_failures() {
        struct FailingBackend;
        impl RecoveryBackend for FailingBackend {
            fn rollback_firmware(&mut self) -> Result<(), String> {
                Err("flash write error".into())
            }
            fn golden_recovery(&mut self) -> Result<(), String> {
                Ok(())
            }
            fn zeroize_keys(&mut self) -> Result<(), String> {
                Ok(())
            }
        }
        let mut soc = soc();
        let mut m = mgr();
        let plan = ResponsePlan {
            incident: 1,
            actions: vec![
                ResponseAction::RollbackFirmware,
                ResponseAction::QuarantineNetwork,
            ],
        };
        let results = m.execute_plan(&plan, t0(), &mut soc, &mut FailingBackend);
        assert_eq!(results.len(), 2);
        assert!(!results[0].outcome.is_success());
        assert!(results[1].outcome.is_success());
        assert!(soc.nic.is_quarantined());
        assert_eq!(m.executed().len(), 2);
    }

    #[test]
    fn lift_isolation_restores_master() {
        let mut soc = soc();
        let mut m = mgr();
        let mut b = NullRecoveryBackend::new();
        m.execute(
            ResponseAction::IsolateMaster(MasterId::CPU1),
            t0(),
            &mut soc,
            &mut b,
        );
        m.lift_isolation(MasterId::CPU1, &mut soc);
        assert!(!soc.bus.is_gated(MasterId::CPU1));
        assert!(soc.cores[1].is_running(t0()));
        assert_eq!(m.isolated_masters().count(), 0);
    }
}
